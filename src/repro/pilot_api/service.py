"""BigJob-style services over the RADICAL-Pilot core."""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional

from repro.core.description import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    DescriptionError,
)
from repro.core.pilot import ComputePilot
from repro.core.pilot_manager import PilotManager
from repro.core.session import Session
from repro.core.states import (
    COARSE_PILOT_STATES,
    COARSE_UNIT_STATES,
    PilotState,
    ServiceState,
)
from repro.core.unit import ComputeUnit
from repro.core.unit_manager import UnitManager


class _DeprecatedStateMeta(type):
    """Attribute access on the legacy ``State`` class warns and forwards
    to :class:`repro.core.states.ServiceState` (same string values)."""

    _CANONICAL = {
        "Unknown": ServiceState.UNKNOWN,
        "New": ServiceState.NEW,
        "Running": ServiceState.RUNNING,
        "Done": ServiceState.DONE,
        "Canceled": ServiceState.CANCELED,
        "Failed": ServiceState.FAILED,
    }

    def __getattr__(cls, name: str) -> str:
        value = _DeprecatedStateMeta._CANONICAL.get(name)
        if value is None:
            raise AttributeError(
                f"type object 'State' has no attribute {name!r}")
        warnings.warn(
            "repro.pilot_api.State is deprecated; use "
            "repro.core.states.ServiceState (same string values)",
            DeprecationWarning, stacklevel=2)
        return value


class State(metaclass=_DeprecatedStateMeta):
    """Deprecated alias for :class:`repro.core.states.ServiceState`.

    The BigJob facade and the core model each grew their own copy of the
    coarse state strings; ``ServiceState`` is now the single source of
    truth.  Accessing ``State.New`` etc. emits a ``DeprecationWarning``
    and returns the canonical value.
    """


class PilotCompute:
    """BigJob's pilot handle: dict-in, string-states-out."""

    def __init__(self, pilot: ComputePilot, pmgr: PilotManager):
        self._pilot = pilot
        self._pmgr = pmgr

    def get_state(self) -> str:
        return COARSE_PILOT_STATES[self._pilot.state]

    def get_details(self) -> Dict[str, Any]:
        return {
            "uid": self._pilot.uid,
            "description": self._pilot.description,
            "state": self.get_state(),
            "agent": dict(self._pilot.agent_info),
        }

    def wait_active(self):
        """Event firing when the pilot can accept work.

        A bare kernel event (no polling process): the handle's per-state
        events fire straight from the Pilot-Manager's DB watcher.
        """
        return self._pilot.wait(PilotState.ACTIVE)

    def cancel(self) -> None:
        self._pmgr.cancel_pilot(self._pilot.uid)

    @property
    def native(self) -> ComputePilot:
        """Escape hatch to the RADICAL-Pilot handle."""
        return self._pilot


def _typed(d: Dict[str, Any], key: str, default: Any, caster,
           kind: str) -> Any:
    """Fetch + coerce one description value, or raise DescriptionError."""
    if key not in d:
        return default
    value = d[key]
    try:
        return caster(value)
    except (TypeError, ValueError):
        raise DescriptionError(
            f"bad {kind} description value for {key!r}: {value!r} "
            f"is not a valid {caster.__name__}") from None


def _pilot_description_from_dict(d: Dict[str, Any]) -> ComputePilotDescription:
    """Translate a BigJob pilot_compute_description dict.

    Unknown keys and uncoercible values raise
    :class:`~repro.core.description.DescriptionError` (a ``ValueError``
    subclass, so pre-convention call sites keep working).
    """
    unknown = set(d) - {"service_url", "number_of_nodes",
                        "number_of_processes", "walltime", "queue",
                        "project", "affinity_datacenter_label",
                        "working_directory", "lrm"}
    if unknown:
        raise DescriptionError(
            f"unknown pilot description keys: {sorted(unknown)}")
    if "service_url" not in d:
        raise DescriptionError("pilot description needs 'service_url'")
    if not isinstance(d["service_url"], str):
        raise DescriptionError(
            f"bad pilot description value for 'service_url': "
            f"{d['service_url']!r} is not a str")
    nodes = _typed(d, "number_of_nodes", None, int, "pilot")
    if nodes is None:
        # BigJob sizes pilots in processes; map to nodes conservatively
        processes = _typed(d, "number_of_processes", 1, int, "pilot")
        nodes = max(1, (processes + 15) // 16)
    return ComputePilotDescription(
        resource=d["service_url"],
        nodes=nodes,
        runtime=_typed(d, "walltime", 60, float, "pilot"),
        queue=d.get("queue", "normal"),
        project=d.get("project"),
        agent_config=AgentConfig(lrm=d.get("lrm", "fork"))).validate()


def _unit_description_from_dict(d: Dict[str, Any]) -> ComputeUnitDescription:
    """Translate a BigJob compute_unit_description dict.

    Unknown keys and uncoercible values raise
    :class:`~repro.core.description.DescriptionError`.
    """
    unknown = set(d) - {"executable", "arguments", "number_of_processes",
                        "spmd_variation", "output", "error",
                        "input_staging", "output_staging",
                        "cpu_seconds", "input_bytes", "output_bytes",
                        "function", "args", "kwargs", "memory_mb"}
    if unknown:
        raise DescriptionError(
            f"unknown unit description keys: {sorted(unknown)}")
    spmd = d.get("spmd_variation", "single")
    launch = "mpiexec" if spmd == "mpi" else None
    memory_mb = d.get("memory_mb")
    if memory_mb is not None:
        memory_mb = _typed(d, "memory_mb", None, int, "unit")
    return ComputeUnitDescription(
        executable=d.get("executable", "/bin/true"),
        arguments=tuple(d.get("arguments", ())),
        cores=_typed(d, "number_of_processes", 1, int, "unit"),
        memory_mb=memory_mb,
        cpu_seconds=_typed(d, "cpu_seconds", 0.0, float, "unit"),
        input_bytes=_typed(d, "input_bytes", 0.0, float, "unit"),
        output_bytes=_typed(d, "output_bytes", 0.0, float, "unit"),
        function=d.get("function"),
        args=tuple(d.get("args", ())),
        kwargs=dict(d.get("kwargs", {})),
        input_staging=tuple(d.get("input_staging", ())),
        output_staging=tuple(d.get("output_staging", ())),
        launch_method=launch).validate()


class PilotComputeService:
    """BigJob's pilot factory."""

    def __init__(self, session: Session):
        self.session = session
        self._pmgr = PilotManager(session)
        self.pilots: List[PilotCompute] = []

    def create_pilot(self, description: Dict[str, Any]) -> PilotCompute:
        pilot = self._pmgr.submit_pilot(
            _pilot_description_from_dict(description))
        handle = PilotCompute(pilot, self._pmgr)
        self.pilots.append(handle)
        return handle

    def cancel(self) -> None:
        """Cancel all pilots created by this service."""
        for handle in self.pilots:
            if not handle.native.state.is_final:
                handle.cancel()


class ComputeUnitHandle:
    """BigJob's compute-unit handle."""

    def __init__(self, unit: ComputeUnit):
        self._unit = unit

    def get_state(self) -> str:
        return COARSE_UNIT_STATES[self._unit.state]

    def get_result(self) -> Any:
        return self._unit.result

    def wait(self):
        """Event firing when the unit reaches a final state."""
        return self._unit.wait()

    @property
    def native(self) -> ComputeUnit:
        return self._unit


class ComputeDataService:
    """BigJob's work dispatcher: submit dict-described units, wait().

    (BigJob's CDS also matched Data-Units; the richer data-affinity
    path lives in :class:`repro.core.data.ComputeDataService` — this
    facade covers the compute side of the classic API.)
    """

    def __init__(self, session: Session):
        self.session = session
        self._umgr = UnitManager(session)
        self.units: List[ComputeUnitHandle] = []

    def add_pilot_compute_service(self, pcs: PilotComputeService) -> None:
        self._umgr.add_pilots([h.native for h in pcs.pilots])

    def submit_compute_unit(self, description: Dict[str, Any]
                            ) -> ComputeUnitHandle:
        units = self._umgr.submit_units(
            _unit_description_from_dict(description))
        handle = ComputeUnitHandle(units[0])
        self.units.append(handle)
        return handle

    def wait(self):
        """Event firing when every submitted unit is final.

        One composite kernel event over the units' logical state events
        — no sleep-loop polling, so the cost is O(outstanding units),
        not O(wait time / poll interval).
        """
        return self._umgr.wait_units([h.native for h in self.units])
