"""BigJob-style services over the RADICAL-Pilot core."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.description import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
)
from repro.core.pilot import ComputePilot
from repro.core.pilot_manager import PilotManager
from repro.core.session import Session
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit
from repro.core.unit_manager import UnitManager


class State:
    """BigJob state constants (strings, as in the Pilot-API)."""

    Unknown = "Unknown"
    New = "New"
    Running = "Running"
    Done = "Done"
    Canceled = "Canceled"
    Failed = "Failed"


_PILOT_STATE_MAP = {
    PilotState.NEW: State.New,
    PilotState.PENDING_LAUNCH: State.New,
    PilotState.LAUNCHING: State.New,
    PilotState.PENDING_ACTIVE: State.New,
    PilotState.ACTIVE: State.Running,
    PilotState.DONE: State.Done,
    PilotState.CANCELED: State.Canceled,
    PilotState.FAILED: State.Failed,
}

_UNIT_STATE_MAP = {
    UnitState.NEW: State.New,
    UnitState.UMGR_SCHEDULING: State.New,
    UnitState.AGENT_STAGING_INPUT: State.New,
    UnitState.AGENT_SCHEDULING: State.New,
    UnitState.EXECUTING: State.Running,
    UnitState.AGENT_STAGING_OUTPUT: State.Running,
    UnitState.DONE: State.Done,
    UnitState.CANCELED: State.Canceled,
    UnitState.FAILED: State.Failed,
}


class PilotCompute:
    """BigJob's pilot handle: dict-in, string-states-out."""

    def __init__(self, pilot: ComputePilot, pmgr: PilotManager):
        self._pilot = pilot
        self._pmgr = pmgr

    def get_state(self) -> str:
        return _PILOT_STATE_MAP[self._pilot.state]

    def get_details(self) -> Dict[str, Any]:
        return {
            "uid": self._pilot.uid,
            "description": self._pilot.description,
            "state": self.get_state(),
            "agent": dict(self._pilot.agent_info),
        }

    def wait_active(self):
        """Event firing when the pilot can accept work."""
        return self._pilot.wait(PilotState.ACTIVE)

    def cancel(self) -> None:
        self._pmgr.cancel_pilot(self._pilot.uid)

    @property
    def native(self) -> ComputePilot:
        """Escape hatch to the RADICAL-Pilot handle."""
        return self._pilot


def _pilot_description_from_dict(d: Dict[str, Any]) -> ComputePilotDescription:
    """Translate a BigJob pilot_compute_description dict."""
    unknown = set(d) - {"service_url", "number_of_nodes",
                        "number_of_processes", "walltime", "queue",
                        "project", "affinity_datacenter_label",
                        "working_directory", "lrm"}
    if unknown:
        raise ValueError(f"unknown pilot description keys: {sorted(unknown)}")
    if "service_url" not in d:
        raise ValueError("pilot description needs 'service_url'")
    nodes = d.get("number_of_nodes")
    if nodes is None:
        # BigJob sizes pilots in processes; map to nodes conservatively
        processes = d.get("number_of_processes", 1)
        nodes = max(1, (processes + 15) // 16)
    return ComputePilotDescription(
        resource=d["service_url"],
        nodes=int(nodes),
        runtime=float(d.get("walltime", 60)),
        queue=d.get("queue", "normal"),
        project=d.get("project"),
        agent_config=AgentConfig(lrm=d.get("lrm", "fork")))


def _unit_description_from_dict(d: Dict[str, Any]) -> ComputeUnitDescription:
    """Translate a BigJob compute_unit_description dict."""
    unknown = set(d) - {"executable", "arguments", "number_of_processes",
                        "spmd_variation", "output", "error",
                        "input_staging", "output_staging",
                        "cpu_seconds", "input_bytes", "output_bytes",
                        "function", "args", "kwargs", "memory_mb"}
    if unknown:
        raise ValueError(f"unknown unit description keys: {sorted(unknown)}")
    spmd = d.get("spmd_variation", "single")
    launch = "mpiexec" if spmd == "mpi" else None
    return ComputeUnitDescription(
        executable=d.get("executable", "/bin/true"),
        arguments=tuple(d.get("arguments", ())),
        cores=int(d.get("number_of_processes", 1)),
        memory_mb=d.get("memory_mb"),
        cpu_seconds=float(d.get("cpu_seconds", 0.0)),
        input_bytes=float(d.get("input_bytes", 0.0)),
        output_bytes=float(d.get("output_bytes", 0.0)),
        function=d.get("function"),
        args=tuple(d.get("args", ())),
        kwargs=dict(d.get("kwargs", {})),
        input_staging=tuple(d.get("input_staging", ())),
        output_staging=tuple(d.get("output_staging", ())),
        launch_method=launch)


class PilotComputeService:
    """BigJob's pilot factory."""

    def __init__(self, session: Session):
        self.session = session
        self._pmgr = PilotManager(session)
        self.pilots: List[PilotCompute] = []

    def create_pilot(self, description: Dict[str, Any]) -> PilotCompute:
        pilot = self._pmgr.submit_pilot(
            _pilot_description_from_dict(description))
        handle = PilotCompute(pilot, self._pmgr)
        self.pilots.append(handle)
        return handle

    def cancel(self) -> None:
        """Cancel all pilots created by this service."""
        for handle in self.pilots:
            if not handle.native.state.is_final:
                handle.cancel()


class ComputeUnitHandle:
    """BigJob's compute-unit handle."""

    def __init__(self, unit: ComputeUnit):
        self._unit = unit

    def get_state(self) -> str:
        return _UNIT_STATE_MAP[self._unit.state]

    def get_result(self) -> Any:
        return self._unit.result

    def wait(self):
        """Event firing when the unit reaches a final state."""
        return self._unit.wait()

    @property
    def native(self) -> ComputeUnit:
        return self._unit


class ComputeDataService:
    """BigJob's work dispatcher: submit dict-described units, wait().

    (BigJob's CDS also matched Data-Units; the richer data-affinity
    path lives in :class:`repro.core.data.ComputeDataService` — this
    facade covers the compute side of the classic API.)
    """

    def __init__(self, session: Session):
        self.session = session
        self._umgr = UnitManager(session)
        self.units: List[ComputeUnitHandle] = []

    def add_pilot_compute_service(self, pcs: PilotComputeService) -> None:
        self._umgr.add_pilots([h.native for h in pcs.pilots])

    def submit_compute_unit(self, description: Dict[str, Any]
                            ) -> ComputeUnitHandle:
        units = self._umgr.submit_units(
            _unit_description_from_dict(description))
        handle = ComputeUnitHandle(units[0])
        self.units.append(handle)
        return handle

    def wait(self):
        """Event firing when every submitted unit is final."""
        return self._umgr.wait_units([h.native for h in self.units])
