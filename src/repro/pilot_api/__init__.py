"""The BigJob-flavoured Pilot-API (dict descriptions, service objects).

The paper (§II) notes the Pilot-Abstraction "has been implemented
within BigJob [14], [33] and its second generation prototype
RADICAL-Pilot [34]".  This package provides the *first generation's*
API shape — ``PilotComputeService`` / ``PilotDataService`` /
``ComputeDataService`` with plain-dict descriptions, as in BigJob —
as a thin facade over the same :mod:`repro.core` machinery, so
applications written against either API run on one implementation
(the interoperability story, demonstrated rather than claimed).

Usage (inside a simulation process)::

    pcs = PilotComputeService(session)
    pilot = pcs.create_pilot({
        "service_url": "slurm://stampede",
        "number_of_nodes": 2,
        "walltime": 60,
    })
    cds = ComputeDataService(session)
    cds.add_pilot_compute_service(pcs)
    yield pilot.wait_active()
    cu = cds.submit_compute_unit({
        "executable": "/bin/date",
        "number_of_processes": 1,
    })
    yield cds.wait()
"""

from repro.core.states import ServiceState
from repro.pilot_api.service import (
    ComputeDataService,
    PilotComputeService,
    State,
)

__all__ = ["ComputeDataService", "PilotComputeService", "ServiceState",
           "State"]
