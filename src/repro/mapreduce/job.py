"""The MapReduce job engine."""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.hashing import stable_hash
from repro.hdfs.cluster import HdfsCluster
from repro.sim.engine import Environment
from repro.yarn.cluster import YarnCluster
from repro.yarn.records import (
    AppSpec,
    ApplicationState,
    ContainerState,
    YarnResource,
)

#: Type aliases for readability.
Mapper = Callable[[Any], Iterable[Tuple[Any, Any]]]
Reducer = Callable[[Any, List[Any]], Iterable[Any]]


@dataclass
class MRJobSpec:
    """Everything that defines one MapReduce job.

    ``mapper(record)`` yields (key, value) pairs; ``reducer(key,
    values)`` yields output records; the optional ``combiner(key,
    values)`` runs on map output before the spill and yields the
    *combined values* for that key (they are re-paired with the key).

    The compute-cost model is explicit: ``map_cpu_per_record`` /
    ``reduce_cpu_per_record`` are *abstract reference-CPU seconds*
    (scaled by node speed at runtime), and ``bytes_per_pair`` sizes the
    shuffle traffic generated per emitted (key, value) pair.
    """

    name: str
    input_path: str
    output_path: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Reducer] = None
    num_reducers: int = 1
    map_cpu_per_record: float = 0.0
    reduce_cpu_per_record: float = 0.0
    bytes_per_pair: float = 64.0
    map_memory_mb: int = 1024
    reduce_memory_mb: int = 1024
    am_memory_mb: int = 512
    #: Default partitioner uses :func:`repro.hashing.stable_hash`, not
    #: builtin ``hash`` — the builtin is salted per process for string
    #: keys, which would shuffle the same job differently across pool
    #: workers and break sweep determinism.
    partitioner: Callable[[Any, int], int] = field(
        default=lambda key, n: stable_hash(key) % n)
    #: Task attempts before the job fails (MR's
    #: ``mapreduce.map.maxattempts``); failed tasks are re-run in fresh
    #: containers, as the MRAppMaster does.
    max_task_attempts: int = 2
    #: Shuffle transport (paper §II/§V related work):
    #: * "local"  — the Hadoop default: spill to the map node's local
    #:   disk, reducers fetch over the network;
    #: * "lustre" — the Intel Hadoop-Lustre adaptor: map output goes to
    #:   the shared filesystem, reducers read it back from there (no
    #:   network fetch, but the shared pipe is contended);
    #: * "rdma"   — Panda et al.'s RDMA shuffle: map output streams
    #:   directly reducer-ward over the high-performance interconnect,
    #:   bypassing the disk on both sides.
    shuffle_transport: str = "local"
    #: Batch the reduce-side fetch into one disk read + one fabric
    #: transfer per (map node -> reduce node) pair instead of one pair
    #: of events per map task.  Byte counts and job output are
    #: identical either way (the per-pair path exists for the
    #: equivalence tests); coalescing cuts the simulated event count by
    #: the maps-per-node factor and charges one transfer latency per
    #: node, as a real batched fetch would.
    coalesce_shuffle: bool = True

    def validate(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.map_cpu_per_record < 0 or self.reduce_cpu_per_record < 0:
            raise ValueError("cpu costs must be non-negative")
        if self.shuffle_transport not in ("local", "lustre", "rdma"):
            raise ValueError(
                f"unknown shuffle transport {self.shuffle_transport!r}")


@dataclass
class JobCounters:
    """The familiar MR counter block."""

    maps_launched: int = 0
    reduces_launched: int = 0
    map_input_records: int = 0
    map_output_records: int = 0
    combine_output_records: int = 0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    shuffle_bytes: float = 0.0
    data_local_maps: int = 0


class MapReduceJob:
    """Executes an :class:`MRJobSpec` over an HDFS cluster.

    ``run_on_yarn`` is the production path: an MRAppMaster drives map
    and reduce waves in YARN containers.  ``run_inline`` executes the
    identical dataflow directly (used to validate engine semantics and
    by unit tests).  Both return the job's output: a dict
    ``partition -> list of records``, also persisted to HDFS under
    ``spec.output_path/part-r-NNNNN``.
    """

    def __init__(self, env: Environment, spec: MRJobSpec,
                 hdfs: HdfsCluster):
        spec.validate()
        self.env = env
        self.spec = spec
        self.hdfs = hdfs
        self.counters = JobCounters()
        #: map task id -> (node_name, {partition: [(k, v), ...]})
        self._map_outputs: Dict[int, Tuple[str, Dict[int, list]]] = {}
        self.output: Dict[int, list] = {}

    # ------------------------------------------------------------ plumbing
    def _input_blocks(self):
        return self.hdfs.namenode.file_meta(self.spec.input_path).blocks

    def _records_of(self, payload: Any) -> list:
        if payload is None:
            return []
        return list(payload)

    def _run_map_task(self, map_id: int, block, node_name: str):
        """Map task body (generator): read, map, combine, spill."""
        spec = self.spec
        client = self.hdfs.client(node_name)
        if client.is_block_local(block, node_name):
            self.counters.data_local_maps += 1
        payload = yield from client.read_block(block)
        records = self._records_of(payload)
        self.counters.map_input_records += len(records)

        mapper = spec.mapper
        pairs: List[Tuple[Any, Any]] = [
            pair for record in records for pair in mapper(record)]
        self.counters.map_output_records += len(pairs)

        cpu = spec.map_cpu_per_record * len(records)
        if cpu > 0:
            node = self.hdfs.machine.node_by_name(node_name)
            yield self.env.timeout(node.compute_seconds(cpu))

        if spec.combiner is not None:
            grouped: Dict[Any, list] = defaultdict(list)
            for k, v in pairs:
                grouped[k].append(v)
            combiner = spec.combiner
            pairs = [(k, v) for k, values in grouped.items()
                     for v in combiner(k, values)]
            self.counters.combine_output_records += len(pairs)

        # Partition assignment is memoised per key: the partitioner runs
        # once per distinct key instead of once per pair.
        partitions: Dict[int, list] = defaultdict(list)
        partition_of: Dict[Any, int] = {}
        partitioner, n_reducers = spec.partitioner, spec.num_reducers
        for kv in pairs:
            key = kv[0]
            part = partition_of.get(key)
            if part is None:
                part = partition_of[key] = partitioner(key, n_reducers)
            partitions[part].append(kv)

        spill_bytes = len(pairs) * spec.bytes_per_pair
        if spill_bytes > 0:
            if spec.shuffle_transport == "local":
                node = self.hdfs.machine.node_by_name(node_name)
                yield node.local_disk.write(spill_bytes)
            elif spec.shuffle_transport == "lustre":
                yield self.hdfs.machine.shared_fs.write(spill_bytes)
            # rdma: no spill — map output streams directly at fetch time
        self._map_outputs[map_id] = (node_name, dict(partitions))

    def _fetch_coalesced(self, partition: int, node_name: str, fetched):
        """Batched shuffle fetch: one disk read + one fabric transfer
        per (map node -> reduce node) pair, regardless of how many map
        tasks ran on that node.  Generator; extends ``fetched`` in map-id
        order (identical pair order to the per-pair path)."""
        spec = self.spec
        machine = self.hdfs.machine
        #: map_node -> per-map-task chunk sizes, in first-seen (map id)
        #: order so the transfer schedule is deterministic.
        chunks_by_node: Dict[str, List[float]] = {}
        for _map_id, (map_node, partitions) in sorted(
                self._map_outputs.items()):
            pairs = partitions.get(partition, [])
            if pairs:
                chunks_by_node.setdefault(map_node, []).append(
                    len(pairs) * spec.bytes_per_pair)
            fetched.extend(pairs)

        for map_node, sizes in chunks_by_node.items():
            nbytes = sum(sizes)
            if spec.shuffle_transport == "local":
                src = machine.node_by_name(map_node)
                yield src.local_disk.read_many(sizes)
                yield machine.network.send_many(map_node, node_name, sizes)
            elif spec.shuffle_transport == "lustre":
                # read back from the shared filesystem; no explicit
                # node-to-node hop (the FS *is* the transport)
                yield machine.shared_fs.read_many(sizes)
                machine.shared_fs.delete(nbytes)
            else:  # rdma: direct memory-to-memory over the fabric
                yield machine.network.send_many(map_node, node_name, sizes)
            self.counters.shuffle_bytes += nbytes

    def _fetch_per_pair(self, partition: int, node_name: str, fetched):
        """Legacy shuffle fetch: one disk read + one transfer per
        (map task, reduce task) pair.  Kept for the coalescing
        equivalence tests.  Generator."""
        spec = self.spec
        machine = self.hdfs.machine
        for _map_id, (map_node, partitions) in sorted(
                self._map_outputs.items()):
            pairs = partitions.get(partition, [])
            nbytes = len(pairs) * spec.bytes_per_pair
            if nbytes > 0:
                if spec.shuffle_transport == "local":
                    src = machine.node_by_name(map_node)
                    yield src.local_disk.read(nbytes)
                    yield machine.network.send(map_node, node_name, nbytes)
                elif spec.shuffle_transport == "lustre":
                    yield machine.shared_fs.read(nbytes)
                    machine.shared_fs.delete(nbytes)
                else:  # rdma
                    yield machine.network.send(map_node, node_name, nbytes)
                self.counters.shuffle_bytes += nbytes
            fetched.extend(pairs)

    def _run_reduce_task(self, partition: int, node_name: str):
        """Reduce task body (generator): fetch, merge, reduce, write."""
        spec = self.spec
        machine = self.hdfs.machine
        fetched: List[Tuple[Any, Any]] = []
        if spec.coalesce_shuffle:
            yield from self._fetch_coalesced(partition, node_name, fetched)
        else:
            yield from self._fetch_per_pair(partition, node_name, fetched)

        # Insertion-order grouping: the fetch order (sorted map ids) is
        # deterministic, so no sort is needed — and the old
        # ``sorted(..., key=repr)`` was an O(n log n · cost(repr)) tax
        # on every reduce task.
        grouped: Dict[Any, list] = defaultdict(list)
        for k, v in fetched:
            grouped[k].append(v)
        self.counters.reduce_input_groups += len(grouped)

        cpu = spec.reduce_cpu_per_record * len(fetched)
        if cpu > 0:
            node = machine.node_by_name(node_name)
            yield self.env.timeout(node.compute_seconds(cpu))

        reducer = spec.reducer
        results = [out for k, values in grouped.items()
                   for out in reducer(k, values)]
        self.counters.reduce_output_records += len(results)
        self.output[partition] = results

        out_bytes = len(results) * spec.bytes_per_pair
        client = self.hdfs.client(node_name)
        yield self.env.process(client.put(
            f"{spec.output_path}/part-r-{partition:05d}",
            out_bytes, payload_slices=[results]))

    def _with_retries(self, factory, label: str):
        """Run ``factory()`` as a process, retrying on failure."""

        def runner():
            last = None
            for _ in range(self.spec.max_task_attempts):
                try:
                    result = yield self.env.process(factory())
                    return result
                except Exception as exc:
                    last = exc
            raise RuntimeError(
                f"{label} failed {self.spec.max_task_attempts} "
                f"times: {last!r}")

        return self.env.process(runner())

    # --------------------------------------------------------------- inline
    def run_inline(self, parallelism: Optional[int] = None):
        """Run the dataflow without YARN.  Generator returning output.

        ``parallelism`` caps concurrent tasks (None = all at once);
        tasks round-robin over the cluster's nodes.  Failed tasks are
        retried up to ``spec.max_task_attempts``, as on YARN.
        """
        blocks = self._input_blocks()
        nodes = [dn.name for dn in self.hdfs.datanodes]
        cycle = itertools.cycle(nodes)

        map_procs = []
        for map_id, block in enumerate(blocks):
            holders = self.hdfs.namenode.block_map.get(block.block_id, ())
            node_name = holders[0] if holders else next(cycle)
            self.counters.maps_launched += 1
            map_procs.append(self._with_retries(
                lambda _m=map_id, _b=block, _n=node_name:
                self._run_map_task(_m, _b, _n),
                label=f"map {map_id}"))
            if parallelism and len(map_procs) >= parallelism:
                yield self.env.all_of(map_procs)
                map_procs = []
        if map_procs:
            yield self.env.all_of(map_procs)

        reduce_procs = []
        for partition in range(self.spec.num_reducers):
            self.counters.reduces_launched += 1
            reduce_procs.append(self._with_retries(
                lambda _p=partition, _n=next(cycle):
                self._run_reduce_task(_p, _n),
                label=f"reduce {partition}"))
        yield self.env.all_of(reduce_procs)
        return self.output

    # ---------------------------------------------------------------- YARN
    def run_on_yarn(self, yarn: YarnCluster):
        """Run as a YARN application.  Generator returning output.

        Submits an MRAppMaster that requests one container per map task
        (block-local when possible), waits for the map wave, then runs
        the reduce wave, and finishes the application.
        """
        job = self

        def run_task_wave(ctx, tasks, resource, make_payload,
                          locality_of, count_launch):
            """Run a set of tasks in YARN containers with retries.

            ``tasks`` is a list of hashable task ids; ``make_payload``
            builds the container payload for a task; ``locality_of``
            returns its preferred nodes.  Tasks start as containers
            arrive (pipelining beyond cluster capacity); failed tasks
            are retried in fresh containers up to
            ``spec.max_task_attempts``.  Generator; raises on a task
            exhausting its attempts.
            """
            spec = job.spec
            for task in tasks:
                ctx.request_containers(1, resource,
                                       preferred_nodes=locality_of(task))
            pending = list(tasks)
            attempts = {task: 0 for task in tasks}
            running = {}
            while pending or running:
                granted, _ = yield from ctx.allocate()
                for container in granted:
                    if not pending:
                        ctx.release_container(container)
                        continue
                    # Prefer a task local to the granted node.
                    pick = next(
                        (i for i, t in enumerate(pending)
                         if container.node_name in locality_of(t)), 0)
                    task = pending.pop(pick)
                    attempts[task] += 1
                    count_launch()
                    done = ctx.start_container(container,
                                               make_payload(task))
                    running[done] = task
                for event in [e for e in list(running) if e.processed]:
                    task = running.pop(event)
                    container = event.value
                    if container.state is ContainerState.COMPLETED:
                        continue
                    if attempts[task] >= spec.max_task_attempts:
                        raise RuntimeError(
                            f"task {task!r} failed "
                            f"{attempts[task]} times: "
                            f"{container.diagnostics}")
                    # schedule a fresh attempt
                    pending.append(task)
                    ctx.request_containers(
                        1, resource, preferred_nodes=locality_of(task))

        def mr_app_master(ctx):
            spec = job.spec
            blocks = job._input_blocks()
            block_by_id = dict(enumerate(blocks))

            def map_locality(map_id):
                block = block_by_id[map_id]
                return tuple(
                    job.hdfs.namenode.block_map.get(block.block_id, ()))

            def make_map_payload(map_id):
                def payload(env, c, _mid=map_id):
                    yield from job._run_map_task(
                        _mid, block_by_id[_mid], c.node_name)
                return payload

            def count_map():
                job.counters.maps_launched += 1

            try:
                yield from run_task_wave(
                    ctx, list(block_by_id), YarnResource(
                        spec.map_memory_mb, 1),
                    make_map_payload, map_locality, count_map)

                def make_reduce_payload(partition):
                    def payload(env, c, _p=partition):
                        yield from job._run_reduce_task(_p, c.node_name)
                    return payload

                def count_reduce():
                    job.counters.reduces_launched += 1

                yield from run_task_wave(
                    ctx, list(range(spec.num_reducers)),
                    YarnResource(spec.reduce_memory_mb, 1),
                    make_reduce_payload, lambda _: (), count_reduce)
            except RuntimeError as exc:
                ctx.finish("FAILED", diagnostics=str(exc))
                return
            ctx.finish("SUCCEEDED")

        client = yarn.client()
        app = yield from client.submit(AppSpec(
            name=self.spec.name,
            am_resource=YarnResource(self.spec.am_memory_mb, 1),
            am_program=mr_app_master, app_type="MAPREDUCE"))
        report = yield from client.wait_for_completion(app)
        if report.state is not ApplicationState.FINISHED:
            raise RuntimeError(
                f"MR job {self.spec.name} failed: "
                f"{report.tracking_diagnostics}")
        return self.output
