"""MapReduce: a functional MR engine running on the YARN substrate.

The classic two-phase dataflow, executing *real Python* mappers and
reducers over HDFS block payloads while every byte moved is charged to
the storage/network models:

* one map task per input block, scheduled with block locality
  (``preferred_nodes`` = the block's replica holders);
* map output hash-partitioned to ``num_reducers`` partitions, spilled
  to the map node's **local disk** (the asset the paper credits for
  YARN's shuffle advantage);
* reducers fetch their partition from every map node over the network,
  merge-sort by key, apply the reduce function, and write results to
  HDFS.

``MapReduceJob.run_on_yarn`` drives the whole thing as a YARN
application (an MRAppMaster requesting task containers);
``run_inline`` executes the same dataflow without YARN for tests.
"""

from repro.mapreduce.job import JobCounters, MapReduceJob, MRJobSpec

__all__ = ["JobCounters", "MapReduceJob", "MRJobSpec"]
