"""Storage bandwidth and capacity models.

:class:`SharedBandwidthPipe` implements an exact processor-sharing
queue: ``aggregate_bw`` bytes/s are divided fairly among the transfers
in flight, optionally capped at ``per_stream_bw`` per transfer.  Every
time the set of active transfers changes, per-stream rates are
recomputed and the next completion re-scheduled — so a burst of
concurrent readers sees precisely the slowdown a contended Lustre OST
pool would impose, while a single stream gets the full per-stream rate.

The accounting runs on a *virtual service clock*: ``V(t)`` is the
cumulative fair-share work (bytes) a transfer that has been in the pipe
since the last idle period would have received.  Because every active
transfer progresses at the same rate, ``V`` is piecewise-linear between
state changes and a transfer entering with ``remaining`` bytes of work
finishes exactly when ``V`` reaches its *finish credit*
``V(entry) + remaining``.  A state change therefore costs one ``V``
advance plus a heap push/pop — O(log n) — instead of decrementing and
rescanning every active transfer (O(n) per change, O(n²) per burst).
The per-stream cap keeps rates piecewise-constant, so the credit
algebra reproduces the full-scan model's completion times; when the
environment's :class:`~repro.analysis.sanitizer.SimSanitizer` is
installed (``REPRO_SANITIZE=1`` / ``Session(sanitize=True)``) the
credits are cross-checked against a shadow full-scan ledger on every
state change (``debug=True`` is the deprecated per-instance alias).

:class:`StorageVolume` couples a pipe with a capacity counter and a
flat per-operation latency (metadata round-trip for Lustre, seek for
local disks).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from heapq import heappop as _heappop, heappush as _heappush
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.sanitizer import SimSanitizer
from repro.sim.engine import Environment, Event, SimulationError

#: Convenience byte-size constants.
KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3


@dataclass(frozen=True)
class StorageSpec:
    """Static description of a storage tier."""

    name: str
    aggregate_bw: float            # bytes/s shared across all streams
    per_stream_bw: Optional[float] = None  # bytes/s cap per stream
    latency: float = 0.0           # seconds per operation
    capacity: float = math.inf     # bytes


class SharedBandwidthPipe:
    """Processor-sharing bandwidth pipe (virtual-clock accounting).

    ``transfer(nbytes)`` returns an event that fires when the transfer
    completes under fair sharing.  Zero-byte transfers complete after
    the pipe's latency only.
    """

    def __init__(self, env: Environment, aggregate_bw: float,
                 per_stream_bw: Optional[float] = None,
                 latency: float = 0.0, name: str = "pipe",
                 debug: bool = False, lazy_wakes: bool = False):
        if aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        self.env = env
        self.name = name
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw) if per_stream_bw else None
        self.latency = float(latency)
        #: Min-heap of (finish_credit, tid, event) for in-flight
        #: transfers; a transfer completes when ``V`` reaches its credit.
        self._heap: List[Tuple[float, int, Event]] = []
        #: The virtual service clock ``V(t)``: cumulative fair-share
        #: work per stream (bytes) since the last idle period.
        self._virtual = 0.0
        self._next_id = 0
        self._last_update = env.now
        self._wake_generation = 0
        #: Lazy-wake mode: keep a pending wake alive across state
        #: changes instead of abandoning it, trading bit-exact replay
        #: of the historical completion timestamps (same math, different
        #: floating-point evaluation points) for an event queue free of
        #: stale wake timeouts under churn.  See README "Performance".
        self.lazy_wakes = bool(lazy_wakes)
        self._wake_serial = 0      # id of the latest *scheduled* wake
        self._wake_due = float("inf")  # fire time of the pending wake
        if debug:
            warnings.warn(
                "SharedBandwidthPipe(debug=True) is deprecated; install "
                "the SimSanitizer instead (REPRO_SANITIZE=1 or "
                "Session(sanitize=True))", DeprecationWarning,
                stacklevel=2)
        self.debug = bool(debug)
        self._own_sanitizer = SimSanitizer(env) if debug else None
        #: Shadow full-scan ledger (tid -> remaining), maintained while
        #: checking is active (sanitizer installed or debug=True).
        self._shadow: Dict[int, float] = {}
        #: Whether the shadow ledger covers every in-flight transfer.
        #: A sanitizer installed mid-flight starts unsynced; the ledger
        #: is then rebuilt exactly from the finish credits.
        self._shadow_synced = True
        self.bytes_moved = 0.0  # lifetime accounting, for benchmarks

    def _sync_shadow(self) -> None:
        """(Re)build the shadow ledger from the finish credits.

        ``credit - V`` *is* the exact full-scan remainder, so a checker
        that appears while transfers are in flight starts from a ledger
        identical to one maintained from the beginning.
        """
        self._shadow = {tid: credit - self._virtual
                        for credit, tid, _ in self._heap}
        self._shadow_synced = True

    # -- public API --------------------------------------------------------
    @property
    def active_streams(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._heap)

    def current_rate(self) -> float:
        """Per-stream rate (bytes/s) given current concurrency."""
        n = len(self._heap)
        rate = self.aggregate_bw / n if n > 1 else self.aggregate_bw
        if self.per_stream_bw is not None and rate > self.per_stream_bw:
            rate = self.per_stream_bw
        return rate

    def transfer(self, nbytes: float) -> Event:
        """Move ``nbytes`` through the pipe; event fires at completion."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        self.bytes_moved += nbytes
        event = Event(self.env)
        if nbytes == 0:
            if self.latency > 0:
                # Piggy-back on a timeout: fire after latency only.
                def _done(_):
                    event.succeed()
                self.env.timeout(self.latency).callbacks.append(_done)
            else:
                event.succeed()
            return event

        self._settle()
        tid = self._next_id
        self._next_id += 1
        # Latency is charged up-front by inflating the workload with an
        # equivalent byte count at the single-stream rate; this keeps the
        # whole pipe in one progress domain.
        work = float(nbytes) + self.latency * self._single_stream_rate()
        _heappush(self._heap, (self._virtual + work, tid, event))
        if self.env.sanitizer is not None or self._own_sanitizer is not None:
            if not self._shadow_synced:
                self._sync_shadow()
            self._shadow[tid] = work
        else:
            self._shadow_synced = False
        self._reschedule()
        return event

    def transfer_many(self, sizes: Iterable[float]) -> Event:
        """Move a batch of chunks as one coalesced stream.

        One transfer (one latency charge, one completion event) for the
        summed byte count — the data-plane batching primitive behind
        coalesced shuffle fetches and multi-block reads.
        """
        total = 0.0
        for size in sizes:
            if size < 0:
                raise SimulationError(f"negative transfer size {size}")
            total += size
        return self.transfer(total)

    def set_bandwidth(self, aggregate_bw: float,
                      per_stream_bw: Optional[float] = None) -> None:
        """Change the pipe's rates mid-flight (network fault injection).

        In-flight transfers keep their remaining bytes and proceed at
        the new fair-share rate.  Because finish credits are
        rate-independent byte counts, settling ``V`` at the old rate,
        swapping the rates and rescheduling the next wake reproduces
        the full-scan model exactly — the shadow-ledger sanitizer
        checks keep passing across the change.
        """
        if aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        self._settle()
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw) if per_stream_bw else None
        self._reschedule()

    def estimate_duration(self, nbytes: float, streams: int = 1) -> float:
        """Closed-form duration estimate at a fixed concurrency level.

        Benchmarks use this for sanity checks; the event-driven path is
        authoritative.
        """
        n = max(1, streams)
        rate = self.aggregate_bw / n
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return self.latency + nbytes / rate

    # -- internals -----------------------------------------------------------
    def _single_stream_rate(self) -> float:
        rate = self.aggregate_bw
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return rate

    def _settle(self) -> None:
        """Advance the virtual clock over the interval since the last
        state change.  O(1): no per-transfer bookkeeping."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._heap:
            return
        advanced = self.current_rate() * dt
        self._virtual += advanced
        checker = self.env.sanitizer or self._own_sanitizer
        if checker is not None:
            if self._shadow_synced:
                for tid in self._shadow:
                    self._shadow[tid] -= advanced
                checker.check_pipe(self)
            else:
                self._sync_shadow()
        else:
            # Checking off: the ledger no longer covers the in-flight
            # set; a later re-enable resyncs from the credits.
            if self._shadow:
                self._shadow.clear()
            self._shadow_synced = False

    def _debug_check(self) -> None:
        """Deprecated alias for the SimSanitizer pipe checker."""
        warnings.warn(
            "SharedBandwidthPipe._debug_check is deprecated; use "
            "SimSanitizer.check_pipe", DeprecationWarning, stacklevel=2)
        if not self._shadow_synced:
            self._sync_shadow()
        (self.env.sanitizer or SimSanitizer(self.env)).check_pipe(self)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._wake_generation += 1
        if not self._heap:
            # Idle: reset the virtual clock so credits never accumulate
            # floating-point headroom across busy periods.
            self._virtual = 0.0
            self._shadow.clear()
            self._shadow_synced = True
            self._wake_due = float("inf")
            return
        if self.lazy_wakes:
            self._reschedule_lazy()
            return
        generation = self._wake_generation
        rate = self.current_rate()
        min_remaining = self._heap[0][0] - self._virtual
        delay = max(0.0, min_remaining / rate)
        # Transfers whose credits sit within FP tolerance of the minimum
        # complete at this wake.  Because the generation guard ensures
        # no state change between scheduling and waking, these are
        # *exactly* done at the wake time — we complete them by fiat,
        # immune to floating-point residue that could otherwise stall
        # the clock (remaining/rate below the clock's ULP).
        threshold = self._virtual + min_remaining * (1 + 1e-12)
        timeout = self.env.timeout(delay)

        def _on_wake(_event):
            if generation != self._wake_generation:
                return  # superseded by a newer state change
            self._settle()
            floor = threshold
            settled = self._virtual + 1e-9
            if settled > floor:
                floor = settled
            heap = self._heap
            while heap and heap[0][0] <= floor:
                _, tid, event = _heappop(heap)
                self._shadow.pop(tid, None)
                event.succeed()
            self._reschedule()

        timeout.callbacks.append(_on_wake)

    def _reschedule_lazy(self) -> None:
        """Lazy-wake scheduling: reuse the pending wake when possible.

        The exact path abandons its pending wake on *every* state change
        (the generation guard), so under churn the event queue fills
        with stale timeouts — the measured pipe-churn falloff at 1k+
        streams.  Here a state change keeps the pending wake if it fires
        no later than the new earliest projected completion: an early
        wake settles, completes nothing, and reschedules itself at the
        then-correct time.  The fair-share *math* is unchanged (the
        sanitizer's shadow ledger still passes); only the floating-point
        evaluation points of completion timestamps move, which is why
        this mode is opt-in rather than the default (bit-exact replay of
        committed traces pins the exact path).
        """
        rate = self.current_rate()
        min_remaining = self._heap[0][0] - self._virtual
        delay = max(0.0, min_remaining / rate)
        due = self.env.now + delay
        if due >= self._wake_due:
            return  # the pending wake fires first and will resettle
        generation = self._wake_generation
        self._wake_serial += 1
        serial = self._wake_serial
        self._wake_due = due
        threshold = self._virtual + min_remaining * (1 + 1e-12)
        timeout = self.env.timeout(delay)

        def _on_wake(_event):
            if serial != self._wake_serial:
                return  # superseded by an earlier wake
            self._wake_due = float("inf")
            self._settle()
            if generation == self._wake_generation:
                # No state change since scheduling: the heap minimum is
                # exactly done at this instant; complete it by fiat as
                # the exact path does.
                floor = threshold
                settled = self._virtual + 1e-9
                if settled > floor:
                    floor = settled
            else:
                # State changed under the wake: only complete what the
                # settled virtual clock has actually caught up to.
                floor = self._virtual + 1e-9
            heap = self._heap
            while heap and heap[0][0] <= floor:
                _, tid, event = _heappop(heap)
                self._shadow.pop(tid, None)
                event.succeed()
            self._reschedule()

        timeout.callbacks.append(_on_wake)


class StorageVolume:
    """A storage tier: bandwidth pipe + capacity ledger.

    ``read``/``write`` return completion events; ``write`` additionally
    debits capacity (raising on overflow, like a full Lustre quota).
    ``read_many``/``write_many`` coalesce a batch of chunks into one
    pipe transfer (one latency charge, one event).
    """

    def __init__(self, env: Environment, spec: StorageSpec,
                 debug: bool = False, lazy_wakes: bool = False):
        self.env = env
        self.spec = spec
        self.pipe = SharedBandwidthPipe(
            env, spec.aggregate_bw, spec.per_stream_bw, spec.latency,
            name=spec.name, debug=debug, lazy_wakes=lazy_wakes)
        self.used = 0.0
        self.read_bytes = 0.0
        self.write_bytes = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def free(self) -> float:
        return self.spec.capacity - self.used

    def read(self, nbytes: float) -> Event:
        """Read ``nbytes``; completion under fair sharing."""
        self.read_bytes += nbytes
        return self.pipe.transfer(nbytes)

    def read_many(self, sizes: Iterable[float]) -> Event:
        """Read a batch of chunks as one coalesced stream."""
        sizes = list(sizes)
        self.read_bytes += sum(sizes)
        return self.pipe.transfer_many(sizes)

    def write(self, nbytes: float) -> Event:
        """Write ``nbytes``, debiting capacity."""
        if nbytes > self.free:
            raise SimulationError(
                f"storage {self.name!r} full: need {nbytes}, free {self.free}")
        self.used += nbytes
        self.write_bytes += nbytes
        return self.pipe.transfer(nbytes)

    def write_many(self, sizes: Iterable[float]) -> Event:
        """Write a batch of chunks as one coalesced stream."""
        sizes = list(sizes)
        total = sum(sizes)
        if total > self.free:
            raise SimulationError(
                f"storage {self.name!r} full: need {total}, free {self.free}")
        self.used += total
        self.write_bytes += total
        return self.pipe.transfer_many(sizes)

    def delete(self, nbytes: float) -> None:
        """Return ``nbytes`` of capacity (metadata-only, instantaneous)."""
        self.used = max(0.0, self.used - nbytes)
