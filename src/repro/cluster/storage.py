"""Storage bandwidth and capacity models.

:class:`SharedBandwidthPipe` implements an exact processor-sharing
queue: ``aggregate_bw`` bytes/s are divided fairly among the transfers
in flight, optionally capped at ``per_stream_bw`` per transfer.  Every
time the set of active transfers changes, per-stream rates are
recomputed and the next completion re-scheduled — so a burst of
concurrent readers sees precisely the slowdown a contended Lustre OST
pool would impose, while a single stream gets the full per-stream rate.

:class:`StorageVolume` couples a pipe with a capacity counter and a
flat per-operation latency (metadata round-trip for Lustre, seek for
local disks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.engine import Environment, Event, SimulationError

#: Convenience byte-size constants.
KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3


@dataclass(frozen=True)
class StorageSpec:
    """Static description of a storage tier."""

    name: str
    aggregate_bw: float            # bytes/s shared across all streams
    per_stream_bw: Optional[float] = None  # bytes/s cap per stream
    latency: float = 0.0           # seconds per operation
    capacity: float = math.inf     # bytes


class _Transfer:
    __slots__ = ("remaining", "event")

    def __init__(self, remaining: float, event: Event):
        self.remaining = remaining
        self.event = event


class SharedBandwidthPipe:
    """Processor-sharing bandwidth pipe.

    ``transfer(nbytes)`` returns an event that fires when the transfer
    completes under fair sharing.  Zero-byte transfers complete after
    the pipe's latency only.
    """

    def __init__(self, env: Environment, aggregate_bw: float,
                 per_stream_bw: Optional[float] = None,
                 latency: float = 0.0, name: str = "pipe"):
        if aggregate_bw <= 0:
            raise SimulationError("aggregate bandwidth must be positive")
        if per_stream_bw is not None and per_stream_bw <= 0:
            raise SimulationError("per-stream bandwidth must be positive")
        self.env = env
        self.name = name
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw) if per_stream_bw else None
        self.latency = float(latency)
        self._active: Dict[int, _Transfer] = {}
        self._next_id = 0
        self._last_update = env.now
        self._wake_generation = 0
        self.bytes_moved = 0.0  # lifetime accounting, for benchmarks

    # -- public API --------------------------------------------------------
    @property
    def active_streams(self) -> int:
        """Number of transfers currently in flight."""
        return len(self._active)

    def current_rate(self) -> float:
        """Per-stream rate (bytes/s) given current concurrency."""
        n = max(1, len(self._active))
        rate = self.aggregate_bw / n
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return rate

    def transfer(self, nbytes: float) -> Event:
        """Move ``nbytes`` through the pipe; event fires at completion."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        self.bytes_moved += nbytes
        event = Event(self.env)
        if nbytes == 0:
            if self.latency > 0:
                # Piggy-back on a timeout: fire after latency only.
                def _done(_):
                    event.succeed()
                self.env.timeout(self.latency).callbacks.append(_done)
            else:
                event.succeed()
            return event

        self._settle()
        tid = self._next_id
        self._next_id += 1
        # Latency is charged up-front by inflating the workload with an
        # equivalent byte count at the single-stream rate; this keeps the
        # whole pipe in one progress domain.
        latency_bytes = self.latency * self._single_stream_rate()
        self._active[tid] = _Transfer(float(nbytes) + latency_bytes, event)
        self._reschedule()
        return event

    def estimate_duration(self, nbytes: float, streams: int = 1) -> float:
        """Closed-form duration estimate at a fixed concurrency level.

        Benchmarks use this for sanity checks; the event-driven path is
        authoritative.
        """
        n = max(1, streams)
        rate = self.aggregate_bw / n
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return self.latency + nbytes / rate

    # -- internals -----------------------------------------------------------
    def _single_stream_rate(self) -> float:
        rate = self.aggregate_bw
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return rate

    def _settle(self) -> None:
        """Account progress made since the last state change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        rate = self.current_rate()
        for tr in self._active.values():
            tr.remaining -= rate * dt

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest projected completion."""
        self._wake_generation += 1
        if not self._active:
            return
        generation = self._wake_generation
        rate = self.current_rate()
        min_remaining = min(tr.remaining for tr in self._active.values())
        delay = max(0.0, min_remaining / rate)
        # Transfers projected to complete at this wake.  Because the
        # generation guard ensures no state change between scheduling
        # and waking, these are *exactly* done at the wake time — we
        # complete them by fiat, immune to floating-point residue that
        # could otherwise stall the clock (remaining/rate below the
        # clock's ULP).
        due = [tid for tid, tr in self._active.items()
               if tr.remaining <= min_remaining * (1 + 1e-12)]
        timeout = self.env.timeout(delay)

        def _on_wake(_event):
            if generation != self._wake_generation:
                return  # superseded by a newer state change
            self._settle()
            finished = set(due)
            finished.update(tid for tid, tr in self._active.items()
                            if tr.remaining <= 1e-9)
            for tid in finished:
                self._active.pop(tid).event.succeed()
            self._reschedule()

        timeout.callbacks.append(_on_wake)


class StorageVolume:
    """A storage tier: bandwidth pipe + capacity ledger.

    ``read``/``write`` return completion events; ``write`` additionally
    debits capacity (raising on overflow, like a full Lustre quota).
    """

    def __init__(self, env: Environment, spec: StorageSpec):
        self.env = env
        self.spec = spec
        self.pipe = SharedBandwidthPipe(
            env, spec.aggregate_bw, spec.per_stream_bw, spec.latency,
            name=spec.name)
        self.used = 0.0
        self.read_bytes = 0.0
        self.write_bytes = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def free(self) -> float:
        return self.spec.capacity - self.used

    def read(self, nbytes: float) -> Event:
        """Read ``nbytes``; completion under fair sharing."""
        self.read_bytes += nbytes
        return self.pipe.transfer(nbytes)

    def write(self, nbytes: float) -> Event:
        """Write ``nbytes``, debiting capacity."""
        if nbytes > self.free:
            raise SimulationError(
                f"storage {self.name!r} full: need {nbytes}, free {self.free}")
        self.used += nbytes
        self.write_bytes += nbytes
        return self.pipe.transfer(nbytes)

    def delete(self, nbytes: float) -> None:
        """Return ``nbytes`` of capacity (metadata-only, instantaneous)."""
        self.used = max(0.0, self.used - nbytes)
