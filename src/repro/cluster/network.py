"""Interconnect model.

A single fabric object models node-to-node transfers: per-link latency
plus a shared backbone pipe.  Intra-node transfers are free except for
a small memcpy cost.  This is sufficient for the paper's workloads —
the shuffle traffic of K-Means and the WAN hop of the rejected
Pilot-Manager-level YARN integration (ablation A1).

Fault injection (:mod:`repro.faults`) drives two degradations:

* :meth:`Interconnect.degrade` scales the backbone's aggregate and
  per-link bandwidth by a factor in (0, 1] — in-flight transfers slow
  down exactly as the processor-sharing model dictates;
* :meth:`Interconnect.partition` splits the node set into two halves:
  transfers crossing the cut are *held* (not dropped) until
  :meth:`heal` releases them, modelling a switch outage whose TCP
  flows stall and then resume.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.cluster.storage import SharedBandwidthPipe
from repro.sim.engine import Environment, Event


class Interconnect:
    """Shared-backbone network fabric between nodes."""

    #: Effective intra-node memory-copy bandwidth (bytes/s).
    MEMCPY_BW = 8.0 * 1024 ** 3

    def __init__(self, env: Environment, backbone_bw: float,
                 link_bw: float, latency: float,
                 wan_latency: float = 0.050):
        self.env = env
        self.latency = float(latency)
        self.wan_latency = float(wan_latency)
        self.backbone = SharedBandwidthPipe(
            env, aggregate_bw=backbone_bw, per_stream_bw=link_bw,
            latency=latency, name="interconnect")
        self._base_backbone_bw = float(backbone_bw)
        self._base_link_bw = float(link_bw)
        self.degrade_factor = 1.0
        #: One side of the active partition cut (node names), or None.
        self._partition: Optional[frozenset] = None
        #: Transfers held back by the partition: (nbytes, done event),
        #: in arrival order — healed in the same order, so partitions
        #: are deterministic.
        self._partition_waiters: List[Tuple[float, Event]] = []

    # -- fault hooks --------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Scale backbone and link bandwidth to ``factor`` of baseline."""
        if not 0 < factor <= 1:
            raise ValueError(
                f"degrade factor must be in (0, 1], got {factor}")
        self.degrade_factor = float(factor)
        self.backbone.set_bandwidth(self._base_backbone_bw * factor,
                                    self._base_link_bw * factor)

    def restore(self) -> None:
        """End a degradation episode: back to baseline bandwidth."""
        self.degrade_factor = 1.0
        self.backbone.set_bandwidth(self._base_backbone_bw,
                                    self._base_link_bw)

    def partition(self, group: Iterable[str]) -> None:
        """Partition the fabric: ``group`` on one side, the rest on the
        other.  Crossing transfers stall until :meth:`heal`."""
        self._partition = frozenset(group)

    def heal(self) -> None:
        """Heal the partition; stalled transfers enter the fabric now."""
        self._partition = None
        waiters, self._partition_waiters = self._partition_waiters, []
        for nbytes, done in waiters:
            transfer = self.backbone.transfer(nbytes)
            transfer.callbacks.append(
                lambda _event, _done=done: _done.succeed())

    def is_partitioned(self, src: str, dst: str) -> bool:
        """Whether ``src`` -> ``dst`` currently crosses a partition cut."""
        cut = self._partition
        return cut is not None and ((src in cut) != (dst in cut))

    def _held_transfer(self, nbytes: float) -> Event:
        done = Event(self.env)
        self._partition_waiters.append((nbytes, done))
        return done

    # -- transfers ----------------------------------------------------------
    def send(self, src: str, dst: str, nbytes: float) -> Event:
        """Transfer ``nbytes`` from node ``src`` to node ``dst``."""
        if src == dst:
            # Loopback: no fabric involvement, just a memcpy.
            done = Event(self.env)
            delay = nbytes / self.MEMCPY_BW

            def _fire(_):
                done.succeed()
            self.env.timeout(delay).callbacks.append(_fire)
            return done
        if self.is_partitioned(src, dst):
            return self._held_transfer(nbytes)
        return self.backbone.transfer(nbytes)

    def send_many(self, src: str, dst: str,
                  sizes: Iterable[float]) -> Event:
        """Transfer a batch of chunks ``src`` -> ``dst`` as one stream.

        Coalesces the per-chunk sizes into a single fabric transfer —
        one latency charge and one completion event instead of one per
        chunk.  This is the shuffle-fetch batching primitive: a reducer
        pulls everything a map node holds for it in one go.
        """
        total = 0.0
        for size in sizes:
            total += size
        if src == dst:
            done = Event(self.env)
            delay = total / self.MEMCPY_BW

            def _fire(_):
                done.succeed()
            self.env.timeout(delay).callbacks.append(_fire)
            return done
        if self.is_partitioned(src, dst):
            return self._held_transfer(total)
        return self.backbone.transfer(total)

    def wan_roundtrip(self) -> Event:
        """One client<->cluster WAN round-trip (used by ablation A1)."""
        done = Event(self.env)

        def _fire(_):
            done.succeed()
        self.env.timeout(2 * self.wan_latency).callbacks.append(_fire)
        return done
