"""Interconnect model.

A single fabric object models node-to-node transfers: per-link latency
plus a shared backbone pipe.  Intra-node transfers are free except for
a small memcpy cost.  This is sufficient for the paper's workloads —
the shuffle traffic of K-Means and the WAN hop of the rejected
Pilot-Manager-level YARN integration (ablation A1).
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster.storage import SharedBandwidthPipe
from repro.sim.engine import Environment, Event


class Interconnect:
    """Shared-backbone network fabric between nodes."""

    #: Effective intra-node memory-copy bandwidth (bytes/s).
    MEMCPY_BW = 8.0 * 1024 ** 3

    def __init__(self, env: Environment, backbone_bw: float,
                 link_bw: float, latency: float,
                 wan_latency: float = 0.050):
        self.env = env
        self.latency = float(latency)
        self.wan_latency = float(wan_latency)
        self.backbone = SharedBandwidthPipe(
            env, aggregate_bw=backbone_bw, per_stream_bw=link_bw,
            latency=latency, name="interconnect")

    def send(self, src: str, dst: str, nbytes: float) -> Event:
        """Transfer ``nbytes`` from node ``src`` to node ``dst``."""
        if src == dst:
            # Loopback: no fabric involvement, just a memcpy.
            done = Event(self.env)
            delay = nbytes / self.MEMCPY_BW

            def _fire(_):
                done.succeed()
            self.env.timeout(delay).callbacks.append(_fire)
            return done
        return self.backbone.transfer(nbytes)

    def send_many(self, src: str, dst: str,
                  sizes: Iterable[float]) -> Event:
        """Transfer a batch of chunks ``src`` -> ``dst`` as one stream.

        Coalesces the per-chunk sizes into a single fabric transfer —
        one latency charge and one completion event instead of one per
        chunk.  This is the shuffle-fetch batching primitive: a reducer
        pulls everything a map node holds for it in one go.
        """
        total = 0.0
        for size in sizes:
            total += size
        if src == dst:
            done = Event(self.env)
            delay = total / self.MEMCPY_BW

            def _fire(_):
                done.succeed()
            self.env.timeout(delay).callbacks.append(_fire)
            return done
        return self.backbone.transfer(total)

    def wan_roundtrip(self) -> Event:
        """One client<->cluster WAN round-trip (used by ablation A1)."""
        done = Event(self.env)

        def _fire(_):
            done.succeed()
        self.env.timeout(2 * self.wan_latency).callbacks.append(_fire)
        return done
