"""Machine templates: cluster-level hardware descriptions.

Factory functions reproduce the paper's testbeds plus two
leadership-class machines for the weak-scaling scenarios:

* :func:`stampede` — TACC Stampede: 16 cores / 32 GB per node, slow
  local spindles, Lustre `$SCRATCH`, reference-speed CPUs.
* :func:`wrangler` — TACC Wrangler: 48 cores / 128 GB per node, fast
  local flash, a larger Lustre allocation, ~1.6x faster cores, and a
  *dedicated Hadoop environment* (reachable via Mode II, as provided by
  Wrangler's data portal reservation mechanism).
* :func:`frontera` — TACC Frontera: 56 cores / 192 GB per node, the
  1k-10k-node weak-scaling workhorse.
* :func:`summit` — OLCF Summit: 42 cores / 512 GB per node with NVMe
  burst buffers; defaults to the full 4608-node machine.

All constants are centralized in :class:`MachineSpec` so the experiment
harness can sweep them (ablations, sensitivity runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.cluster.network import Interconnect
from repro.cluster.node import Node
from repro.cluster.storage import GB, MB, StorageSpec, StorageVolume
from repro.sim.engine import Environment, SimulationError


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a cluster."""

    name: str
    num_nodes: int
    cores_per_node: int
    memory_per_node: float          # bytes
    cpu_speed: float                # relative to the reference core
    local_disk: StorageSpec
    shared_fs: StorageSpec
    backbone_bw: float              # bytes/s
    link_bw: float                  # bytes/s
    net_latency: float              # seconds
    download_bw: float              # bytes/s from the outside world
    has_dedicated_hadoop: bool = False

    def with_nodes(self, num_nodes: int) -> "MachineSpec":
        """A copy of this spec with a different node count."""
        return replace(self, num_nodes=num_nodes)


class Machine:
    """Instantiated cluster hardware bound to a simulation environment."""

    def __init__(self, env: Environment, spec: MachineSpec):
        if spec.num_nodes <= 0:
            raise SimulationError("machine needs >=1 node")
        self.env = env
        self.spec = spec
        self.nodes: List[Node] = [
            Node(env, name=f"{spec.name}-n{i:04d}",
                 cores=spec.cores_per_node,
                 memory_bytes=spec.memory_per_node,
                 local_disk=spec.local_disk,
                 cpu_speed=spec.cpu_speed)
            for i in range(spec.num_nodes)
        ]
        self.shared_fs = StorageVolume(env, spec.shared_fs)
        self._node_index = {node.name: node for node in self.nodes}
        self.network = Interconnect(
            env, backbone_bw=spec.backbone_bw, link_bw=spec.link_bw,
            latency=spec.net_latency)
        faults = env.faults
        if faults is not None:
            faults.register_machine(self)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def total_cores(self) -> int:
        return self.spec.num_nodes * self.spec.cores_per_node

    def node_by_name(self, name: str) -> Node:
        """Look up a node; raises on unknown names.

        O(1): the YARN executor resolves the node of every container it
        launches, which made the old linear scan quadratic in machine
        size across a large run.
        """
        node = self._node_index.get(name)
        if node is None:
            raise KeyError(f"no node {name!r} on {self.name}")
        return node

    def download_seconds(self, nbytes: float) -> float:
        """Time to fetch ``nbytes`` from the outside world (Hadoop tarball)."""
        return nbytes / self.spec.download_bw

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Machine {self.name}: {self.spec.num_nodes} nodes x "
                f"{self.spec.cores_per_node} cores>")


def stampede(num_nodes: int = 4) -> MachineSpec:
    """TACC Stampede template (paper §IV): 16 cores / 32 GB per node.

    A compute-optimized Beowulf machine: bulk I/O goes through a shared
    Lustre scratch with visible contention; node-local disks are small
    and slow (they exist for the OS image); CPUs define the reference
    speed 1.0.
    """
    return MachineSpec(
        name="stampede",
        num_nodes=num_nodes,
        cores_per_node=16,
        memory_per_node=32 * GB,
        cpu_speed=1.0,
        local_disk=StorageSpec(
            name="stampede-localdisk", aggregate_bw=90 * MB,
            per_stream_bw=90 * MB, latency=0.008, capacity=80 * GB),
        shared_fs=StorageSpec(
            name="stampede-lustre", aggregate_bw=650 * MB,
            per_stream_bw=250 * MB, latency=0.030, capacity=400 * GB),
        backbone_bw=40 * GB,
        link_bw=5 * GB,
        net_latency=5e-6,
        download_bw=12 * MB,
        has_dedicated_hadoop=False,
    )


def frontera(num_nodes: int = 1024) -> MachineSpec:
    """TACC Frontera template: 56 cores / 192 GB per node.

    The leadership-class successor of Stampede (same center, same
    Lustre-centric design), used for the weak-scaling scenarios at
    1k-10k nodes: modest node-local SSDs, a wide scratch filesystem,
    and CPUs ~1.8x the Stampede reference speed.
    """
    return MachineSpec(
        name="frontera",
        num_nodes=num_nodes,
        cores_per_node=56,
        memory_per_node=192 * GB,
        cpu_speed=1.8,
        local_disk=StorageSpec(
            name="frontera-ssd", aggregate_bw=400 * MB,
            per_stream_bw=400 * MB, latency=0.0004, capacity=144 * GB),
        shared_fs=StorageSpec(
            name="frontera-lustre", aggregate_bw=120 * GB,
            per_stream_bw=3 * GB, latency=0.015, capacity=50_000 * GB),
        backbone_bw=200 * GB,
        link_bw=12 * GB,
        net_latency=2e-6,
        download_bw=100 * MB,
        has_dedicated_hadoop=False,
    )


def summit(num_nodes: int = 4608) -> MachineSpec:
    """OLCF Summit template: 42 cores / 512 GB per node.

    A leadership-class machine in the style arXiv:2103.00091
    characterizes pilots on: fat memory, fast node-local NVMe burst
    buffers, a center-wide GPFS, and ~2.2x-reference CPUs.  The default
    node count is the full machine.
    """
    return MachineSpec(
        name="summit",
        num_nodes=num_nodes,
        cores_per_node=42,
        memory_per_node=512 * GB,
        cpu_speed=2.2,
        local_disk=StorageSpec(
            name="summit-nvme", aggregate_bw=2100 * MB,
            per_stream_bw=2100 * MB, latency=0.0001, capacity=1600 * GB),
        shared_fs=StorageSpec(
            name="summit-gpfs", aggregate_bw=250 * GB,
            per_stream_bw=5 * GB, latency=0.010, capacity=250_000 * GB),
        backbone_bw=400 * GB,
        link_bw=25 * GB,
        net_latency=1.5e-6,
        download_bw=200 * MB,
        has_dedicated_hadoop=False,
    )


def wrangler(num_nodes: int = 4) -> MachineSpec:
    """TACC Wrangler template (paper §IV): 48 cores / 128 GB per node.

    A data-intensive machine: large memory, fast node-local flash, a
    beefier Lustre allocation, ~1.6x faster cores ("better hardware",
    §IV-B), and a dedicated Hadoop environment for Mode II.
    """
    return MachineSpec(
        name="wrangler",
        num_nodes=num_nodes,
        cores_per_node=48,
        memory_per_node=128 * GB,
        cpu_speed=1.6,
        local_disk=StorageSpec(
            name="wrangler-flash", aggregate_bw=500 * MB,
            per_stream_bw=500 * MB, latency=0.0002, capacity=500 * GB),
        shared_fs=StorageSpec(
            name="wrangler-lustre", aggregate_bw=1800 * MB,
            per_stream_bw=400 * MB, latency=0.020, capacity=2000 * GB),
        backbone_bw=120 * GB,
        link_bw=10 * GB,
        net_latency=3e-6,
        download_bw=25 * MB,
        has_dedicated_hadoop=True,
    )
