"""Hardware substrate: machines, nodes, storage and interconnect models.

This package stands in for the two XSEDE machines of the paper's
evaluation:

* **Stampede** — Beowulf-style: 16 cores / 32 GB per node, small local
  disks, all bulk I/O through a shared Lustre parallel filesystem.
* **Wrangler** — data-intensive: 48 cores / 128 GB per node, fast local
  SSDs, faster CPUs, plus a *dedicated Hadoop environment* reachable in
  Mode II.

The storage model is the load-bearing part: the parallel filesystem is a
processor-sharing pipe (aggregate bandwidth fairly divided among
concurrent streams, optionally capped per stream), while each node owns
a private local-disk pipe.  That asymmetry — shared contended Lustre vs.
per-node local disks that scale with the allocation — is exactly the
mechanism the paper credits for RADICAL-Pilot-YARN's ~13 % win in
Figure 6.
"""

from repro.cluster.machine import Machine, MachineSpec, stampede, wrangler
from repro.cluster.node import Node
from repro.cluster.network import Interconnect
from repro.cluster.storage import SharedBandwidthPipe, StorageSpec, StorageVolume

__all__ = [
    "Interconnect",
    "Machine",
    "MachineSpec",
    "Node",
    "SharedBandwidthPipe",
    "StorageSpec",
    "StorageVolume",
    "stampede",
    "wrangler",
]
