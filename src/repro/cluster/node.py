"""A compute node: cores, memory, local disk."""

from __future__ import annotations

from typing import Optional

from repro.cluster.storage import StorageSpec, StorageVolume
from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Level, Resource


class Node:
    """One compute node of a :class:`~repro.cluster.machine.Machine`.

    Cores are a counted :class:`Resource`; memory is a :class:`Level`
    drained by running tasks; the local disk is a private
    :class:`StorageVolume` (the asset YARN's shuffle exploits in the
    paper's Figure 6).
    """

    def __init__(self, env: Environment, name: str, cores: int,
                 memory_bytes: float, local_disk: StorageSpec,
                 cpu_speed: float = 1.0):
        if cores <= 0:
            raise SimulationError(f"node needs >=1 core, got {cores}")
        if memory_bytes <= 0:
            raise SimulationError("node memory must be positive")
        if cpu_speed <= 0:
            raise SimulationError("cpu speed factor must be positive")
        self.env = env
        self.name = name
        self.num_cores = cores
        self.memory_bytes = float(memory_bytes)
        self.cpu_speed = float(cpu_speed)
        self.cores = Resource(env, capacity=cores)
        self.memory = Level(env, capacity=memory_bytes, init=memory_bytes)
        self.local_disk = StorageVolume(env, local_disk)
        # In-memory storage tier (Tachyon/Alluxio-style): RAM-speed
        # reads/writes, capacity capped at a quarter of node memory.
        # Iterative workloads cache working sets here (paper §V).
        self.memory_fs = StorageVolume(env, StorageSpec(
            name=f"{name}-memfs",
            aggregate_bw=4 * 1024 ** 3,
            per_stream_bw=2 * 1024 ** 3,
            latency=1e-5,
            capacity=memory_bytes * 0.25))
        self.alive = True
        #: Failure timestamp of the most recent :meth:`fail` (MTTR base).
        self.failed_at: Optional[float] = None
        self._base_cpu_speed = self.cpu_speed
        self._failure: Optional[Event] = None

    @property
    def cores_in_use(self) -> int:
        """Cores currently held by tasks."""
        return self.cores.count

    @property
    def cores_free(self) -> int:
        return self.num_cores - self.cores.count

    @property
    def memory_free(self) -> float:
        """Unreserved memory in bytes."""
        return self.memory.level

    def compute_seconds(self, abstract_work: float) -> float:
        """Convert machine-neutral work units into node-local seconds.

        ``abstract_work`` is expressed in reference-CPU seconds; faster
        nodes (``cpu_speed`` > 1) finish sooner.
        """
        return abstract_work / self.cpu_speed

    def fail(self) -> None:
        """Mark the node dead (failure-injection hooks).

        Fires :meth:`failure_event` so executing tasks racing the
        compute timeout against node death observe the crash at the
        exact injection instant.
        """
        self.alive = False
        self.failed_at = self.env.now
        if self._failure is not None and not self._failure.triggered:
            self._failure.succeed(self)

    def recover(self) -> None:
        self.alive = True
        self._failure = None

    def failure_event(self) -> Event:
        """An event that fires when this node dies.

        Already-dead nodes return a freshly-triggered event, so waiters
        resume immediately.  After :meth:`recover` a new pending event
        is handed out for the next failure.
        """
        if not self.alive:
            return Event(self.env).succeed(self)
        if self._failure is None or self._failure.triggered:
            self._failure = Event(self.env)
        return self._failure

    def slow_down(self, factor: float) -> None:
        """Straggler injection: run ``factor``x slower than baseline.

        Only affects compute phases *starting* after the call — in-flight
        phases were priced at entry, matching a CPU that degrades between
        tasks (thermal throttling, noisy neighbour).
        """
        if factor < 1:
            raise SimulationError(
                f"straggler factor must be >= 1, got {factor}")
        self.cpu_speed = self._base_cpu_speed / factor

    def restore_speed(self) -> None:
        """End a straggler episode: back to the baseline speed."""
        self.cpu_speed = self._base_cpu_speed

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Node {self.name}: {self.cores_free}/{self.num_cores} cores "
                f"free, {self.memory_free / 2**30:.1f} GB free>")
