"""A compute node: cores, memory, local disk."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cluster.storage import StorageSpec, StorageVolume
from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Level, Resource


class Node:
    """One compute node of a :class:`~repro.cluster.machine.Machine`.

    Cores are a counted :class:`Resource`; memory is a :class:`Level`
    drained by running tasks; the local disk is a private
    :class:`StorageVolume` (the asset YARN's shuffle exploits in the
    paper's Figure 6).
    """

    def __init__(self, env: Environment, name: str, cores: int,
                 memory_bytes: float, local_disk: StorageSpec,
                 cpu_speed: float = 1.0):
        if cores <= 0:
            raise SimulationError(f"node needs >=1 core, got {cores}")
        if memory_bytes <= 0:
            raise SimulationError("node memory must be positive")
        if cpu_speed <= 0:
            raise SimulationError("cpu speed factor must be positive")
        self.env = env
        self.name = name
        self.num_cores = cores
        self.memory_bytes = float(memory_bytes)
        self.cpu_speed = float(cpu_speed)
        # The per-node sub-objects (core Resource, memory Level, disk
        # and memfs StorageVolumes) are built lazily on first access:
        # their constructors are passive (no events, no env mutation),
        # so laziness is observationally identical — and a 10k-node
        # machine no longer pays ~40k object constructions up front
        # when most nodes only ever serve core-count arithmetic.
        self._local_disk_spec = local_disk
        self._cores: Optional[Resource] = None
        self._memory: Optional[Level] = None
        self._local_disk: Optional[StorageVolume] = None
        self._memory_fs: Optional[StorageVolume] = None
        self.alive = True
        #: Failure timestamp of the most recent :meth:`fail` (MTTR base).
        self.failed_at: Optional[float] = None
        self._base_cpu_speed = self.cpu_speed
        self._failure: Optional[Event] = None
        #: Synchronous liveness observers (see :meth:`watch_liveness`);
        #: lets capacity ledgers track alive-flips incrementally instead
        #: of rescanning every node.
        self._liveness_watchers: List[Callable[["Node"], None]] = []

    @property
    def cores(self) -> Resource:
        """Counted core slots (lazily built)."""
        if self._cores is None:
            self._cores = Resource(self.env, capacity=self.num_cores)
        return self._cores

    @property
    def memory(self) -> Level:
        """Memory level drained by running tasks (lazily built)."""
        if self._memory is None:
            self._memory = Level(self.env, capacity=self.memory_bytes,
                                 init=self.memory_bytes)
        return self._memory

    @property
    def local_disk(self) -> StorageVolume:
        """Private node-local storage volume (lazily built)."""
        if self._local_disk is None:
            self._local_disk = StorageVolume(self.env,
                                             self._local_disk_spec)
        return self._local_disk

    @property
    def memory_fs(self) -> StorageVolume:
        """In-memory storage tier (Tachyon/Alluxio-style): RAM-speed
        reads/writes, capacity capped at a quarter of node memory.
        Iterative workloads cache working sets here (paper §V).
        Lazily built."""
        if self._memory_fs is None:
            self._memory_fs = StorageVolume(self.env, StorageSpec(
                name=f"{self.name}-memfs",
                aggregate_bw=4 * 1024 ** 3,
                per_stream_bw=2 * 1024 ** 3,
                latency=1e-5,
                capacity=self.memory_bytes * 0.25))
        return self._memory_fs

    @property
    def cores_in_use(self) -> int:
        """Cores currently held by tasks."""
        cores = self._cores
        return cores.count if cores is not None else 0

    @property
    def cores_free(self) -> int:
        return self.num_cores - self.cores_in_use

    @property
    def memory_free(self) -> float:
        """Unreserved memory in bytes."""
        memory = self._memory
        return memory.level if memory is not None else self.memory_bytes

    def compute_seconds(self, abstract_work: float) -> float:
        """Convert machine-neutral work units into node-local seconds.

        ``abstract_work`` is expressed in reference-CPU seconds; faster
        nodes (``cpu_speed`` > 1) finish sooner.
        """
        return abstract_work / self.cpu_speed

    def fail(self) -> None:
        """Mark the node dead (failure-injection hooks).

        Fires :meth:`failure_event` so executing tasks racing the
        compute timeout against node death observe the crash at the
        exact injection instant.
        """
        self.alive = False
        self.failed_at = self.env.now
        if self._failure is not None and not self._failure.triggered:
            self._failure.succeed(self)
        for watcher in self._liveness_watchers:
            watcher(self)

    def recover(self) -> None:
        self.alive = True
        self._failure = None
        for watcher in self._liveness_watchers:
            watcher(self)

    def watch_liveness(self, callback: Callable[["Node"], None]) -> None:
        """Call ``callback(node)`` synchronously after every
        :meth:`fail` / :meth:`recover` alive-flip."""
        self._liveness_watchers.append(callback)

    def failure_event(self) -> Event:
        """An event that fires when this node dies.

        Already-dead nodes return a freshly-triggered event, so waiters
        resume immediately.  After :meth:`recover` a new pending event
        is handed out for the next failure.
        """
        if not self.alive:
            return Event(self.env).succeed(self)
        if self._failure is None or self._failure.triggered:
            self._failure = Event(self.env)
        return self._failure

    def slow_down(self, factor: float) -> None:
        """Straggler injection: run ``factor``x slower than baseline.

        Only affects compute phases *starting* after the call — in-flight
        phases were priced at entry, matching a CPU that degrades between
        tasks (thermal throttling, noisy neighbour).
        """
        if factor < 1:
            raise SimulationError(
                f"straggler factor must be >= 1, got {factor}")
        self.cpu_speed = self._base_cpu_speed / factor

    def restore_speed(self) -> None:
        """End a straggler episode: back to the baseline speed."""
        self.cpu_speed = self._base_cpu_speed

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Node {self.name}: {self.cores_free}/{self.num_cores} cores "
                f"free, {self.memory_free / 2**30:.1f} GB free>")
