"""SAGA-Hadoop: light-weight Hadoop/Spark deployment on HPC (paper §III-A).

:class:`SagaHadoop` reproduces the standalone tool (paper Figure 2):
it submits a placeholder job through SAGA to an HPC scheduler; a
*framework plugin* (YARN or Spark — extensible, e.g. Flink would slot
in the same way) bootstraps the cluster inside the allocation; the
user then submits framework applications through a simple API and
finally stops the cluster.

:func:`provision_dedicated_hadoop` models the other deployment flavour
the paper uses on Wrangler: a persistent, system-operated Hadoop
environment that Mode II pilots connect to.
"""

from repro.hadoop_deploy.dedicated import provision_dedicated_hadoop
from repro.hadoop_deploy.plugins import (
    FrameworkPlugin,
    SparkPlugin,
    YarnPlugin,
    register_plugin,
)
from repro.hadoop_deploy.saga_hadoop import SagaHadoop
from repro.hadoop_deploy.templates import HadoopTemplate, tune_for_machine

__all__ = [
    "FrameworkPlugin",
    "HadoopTemplate",
    "SagaHadoop",
    "SparkPlugin",
    "YarnPlugin",
    "provision_dedicated_hadoop",
    "register_plugin",
    "tune_for_machine",
]
