"""Dedicated Hadoop environments (the Wrangler data-portal model).

Machines flagged ``has_dedicated_hadoop`` (Wrangler) offer a
system-operated, persistent YARN+HDFS deployment via a reservation
mechanism (paper §III: "Wrangler supports dedicated Hadoop
environments (based on Cloudera Hadoop 5.3) via a reservation
mechanism").  Mode II pilots connect to it instead of booting their
own.
"""

from __future__ import annotations

from typing import Optional

from repro.hdfs.cluster import HdfsCluster
from repro.saga.registry import Site
from repro.sim.engine import SimulationError
from repro.yarn.cluster import YarnCluster
from repro.yarn.config import YarnConfig


def provision_dedicated_hadoop(site: Site,
                               yarn_config: Optional[YarnConfig] = None):
    """Boot the machine's persistent Hadoop environment.  Generator.

    Attaches ``site.dedicated_yarn`` and ``site.dedicated_hdfs``; the
    Mode II LRM (:class:`~repro.core.agent.lrm.YarnConnectLrm`) finds
    them there.  Raises if the machine does not advertise a dedicated
    Hadoop environment.
    """
    if not site.machine.spec.has_dedicated_hadoop:
        raise SimulationError(
            f"{site.hostname} does not offer a dedicated Hadoop "
            "environment")
    env = site.env
    hdfs = HdfsCluster(env, site.machine, site.machine.nodes,
                       replication=3)
    yield env.process(hdfs.start())
    yarn = YarnCluster(env, site.machine, site.machine.nodes,
                       config=yarn_config or YarnConfig())
    yield env.process(yarn.start())
    site.dedicated_hdfs = hdfs
    site.dedicated_yarn = yarn
    return yarn
