"""The SAGA-Hadoop tool (paper §III-A, Figure 2)."""

from __future__ import annotations

from typing import Optional

from repro.hadoop_deploy.plugins import FrameworkPlugin, make_plugin
from repro.saga.job import Description as SagaDescription
from repro.saga.job import Service
from repro.saga.registry import Registry
from repro.sim.engine import Environment, Event, Interrupt


class SagaHadoop:
    """Deploy and drive a Hadoop/Spark cluster on an HPC allocation.

    Usage (inside a simulation process)::

        tool = SagaHadoop(env, registry, resource="slurm://stampede",
                          framework="yarn", nodes=2, walltime=60)
        yield from tool.start()          # 1. Start Cluster
        client = tool.yarn.client()      # 2. Submit Hadoop Application
        ...                              # 3. Get Application Status
        tool.stop()                      # 4. Stop Cluster
        yield tool.stopped
    """

    def __init__(self, env: Environment, registry: Registry, resource: str,
                 framework: str = "yarn", nodes: int = 1,
                 walltime: float = 60.0, queue: str = "normal"):
        self.env = env
        self.service = Service(resource, registry)
        self.framework = framework
        self.nodes = nodes
        self.walltime = walltime
        self.queue = queue
        self.plugin: Optional[FrameworkPlugin] = None
        self.ready: Event = Event(env)
        self.stopped: Event = Event(env)
        self._stop_requested: Event = Event(env)
        self._saga_job = None

    # ---------------------------------------------------------------- start
    def start(self):
        """Submit the placeholder job and wait for the cluster.  Generator."""
        self.plugin = make_plugin(self.framework, self.env,
                                  self.service.site)
        tool = self

        def payload(env, batch_job):
            from repro.core.agent.lrm import nodes_from_environment
            nodes = nodes_from_environment(tool.service.site,
                                           batch_job.env_vars)
            try:
                yield from tool.plugin.bootstrap(nodes)
                tool.ready.succeed()
                # Hold the allocation until stop (or walltime).
                yield tool._stop_requested
            except Interrupt:
                pass
            finally:
                tool.plugin.stop()
                if not tool.stopped.triggered:
                    tool.stopped.succeed()

        self._saga_job = self.service.create_job(SagaDescription(
            executable="saga-hadoop",
            arguments=(self.framework,),
            number_of_nodes=self.nodes,
            wall_time_limit=self.walltime,
            queue=self.queue,
            payload=payload))
        self._saga_job.run()
        yield self.ready

    # --------------------------------------------------------------- access
    @property
    def yarn(self):
        """The running YarnCluster (YARN framework only)."""
        cluster = getattr(self.plugin, "yarn", None)
        if cluster is None:
            raise RuntimeError("no YARN cluster (framework or not started)")
        return cluster

    @property
    def hdfs(self):
        cluster = getattr(self.plugin, "hdfs", None)
        if cluster is None:
            raise RuntimeError("no HDFS cluster (framework or not started)")
        return cluster

    @property
    def spark(self):
        """The running SparkStandaloneCluster (Spark framework only)."""
        cluster = getattr(self.plugin, "spark", None)
        if cluster is None:
            raise RuntimeError("no Spark cluster (framework or not started)")
        return cluster

    # ----------------------------------------------------------------- stop
    def stop(self) -> None:
        """Request cluster shutdown (step 4)."""
        if not self._stop_requested.triggered:
            self._stop_requested.succeed()
