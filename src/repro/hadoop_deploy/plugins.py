"""Framework plugins: the extensibility point of SAGA-Hadoop.

A plugin encapsulates "download, configure and start" for one
framework (paper §III-A): YARN (+HDFS) and Spark are provided; new
frameworks register via :func:`register_plugin`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.cluster.node import Node
from repro.core.agent.lrm import render_hadoop_configs
from repro.hdfs.cluster import HdfsCluster
from repro.saga.registry import Site
from repro.sim.engine import Environment
from repro.spark.cluster import SparkStandaloneCluster
from repro.yarn.cluster import YarnCluster
from repro.yarn.config import YarnConfig


class FrameworkPlugin:
    """Base plugin: download + configure + start + stop one framework."""

    name = "abstract"
    dist_bytes: float = 250 * 1024 ** 2
    configure_seconds: float = 5.0

    def __init__(self, env: Environment, site: Site):
        self.env = env
        self.site = site
        self.rendered_configs: Dict[str, str] = {}

    def bootstrap(self, nodes: List[Node]):
        """Download, render configs, start daemons.  Generator."""
        yield self.env.timeout(
            self.site.machine.download_seconds(self.dist_bytes))
        self.rendered_configs = self.render_configs(nodes)
        yield self.env.timeout(self.configure_seconds)
        yield from self.start_daemons(nodes)

    def render_configs(self, nodes: List[Node]) -> Dict[str, str]:
        return {}

    def start_daemons(self, nodes: List[Node]):
        raise NotImplementedError
        yield  # pragma: no cover

    def stop(self) -> None:
        raise NotImplementedError


class YarnPlugin(FrameworkPlugin):
    """YARN + HDFS on the allocation."""

    name = "yarn"

    def __init__(self, env: Environment, site: Site,
                 yarn_config: Optional[YarnConfig] = None):
        super().__init__(env, site)
        self.yarn_config = yarn_config or YarnConfig()
        self.hdfs: Optional[HdfsCluster] = None
        self.yarn: Optional[YarnCluster] = None

    def render_configs(self, nodes: List[Node]) -> Dict[str, str]:
        return render_hadoop_configs([n.name for n in nodes],
                                     self.yarn_config)

    def start_daemons(self, nodes: List[Node]):
        self.hdfs = HdfsCluster(self.env, self.site.machine, nodes,
                                replication=min(2, len(nodes)))
        yield self.env.process(self.hdfs.start())
        self.yarn = YarnCluster(self.env, self.site.machine, nodes,
                                config=self.yarn_config)
        yield self.env.process(self.yarn.start())

    def stop(self) -> None:
        if self.yarn is not None:
            self.yarn.stop()
        if self.hdfs is not None:
            self.hdfs.stop()


class SparkPlugin(FrameworkPlugin):
    """Standalone Spark on the allocation."""

    name = "spark"
    dist_bytes = 230 * 1024 ** 2

    def __init__(self, env: Environment, site: Site):
        super().__init__(env, site)
        self.spark: Optional[SparkStandaloneCluster] = None

    def render_configs(self, nodes: List[Node]) -> Dict[str, str]:
        names = [n.name for n in nodes]
        return {
            "spark-env.sh": f"SPARK_MASTER_HOST={names[0]}\n",
            "masters": names[0] + "\n",
            "slaves": "\n".join(names) + "\n",
        }

    def start_daemons(self, nodes: List[Node]):
        self.spark = SparkStandaloneCluster(self.env, self.site.machine,
                                            nodes)
        yield self.env.process(self.spark.start())

    def stop(self) -> None:
        if self.spark is not None:
            self.spark.stop()


_PLUGINS: Dict[str, Type[FrameworkPlugin]] = {
    "yarn": YarnPlugin,
    "spark": SparkPlugin,
}


def register_plugin(name: str, cls: Type[FrameworkPlugin]) -> None:
    """Add a new framework plugin (e.g. Flink)."""
    _PLUGINS[name] = cls


def make_plugin(name: str, env: Environment, site: Site) -> FrameworkPlugin:
    try:
        cls = _PLUGINS[name]
    except KeyError:
        raise ValueError(
            f"unknown framework {name!r}; known: {sorted(_PLUGINS)}"
        ) from None
    return cls(env, site)
