"""Hardware-aware Hadoop configuration templates (paper §V).

"In the future, we will provide configuration templates so that
resource specific hardware can be exploited, e.g. available SSDs can
significantly enhance the shuffle performance."  This module
implements that: given a machine's hardware description it derives a
tuned YARN configuration and the shuffle placement:

* fast node-local storage (flash)  -> shuffle on local disks;
* slow local disks + capable Lustre -> shuffle through the parallel
  filesystem (the Intel Hadoop-Lustre adaptor pattern, §II);
* NodeManager memory sized from node RAM, vcores from core count;
* larger sort buffers on large-memory machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.cluster.machine import MachineSpec
from repro.yarn.config import YarnConfig

#: Local-disk bandwidth above which we call the storage "flash" and
#: prefer it for the shuffle (bytes/s).
FLASH_THRESHOLD_BW = 300e6


@dataclass(frozen=True)
class HadoopTemplate:
    """A tuned deployment recipe for one machine."""

    machine: str
    yarn_config: YarnConfig
    shuffle_transport: str          # "local" | "lustre"
    io_sort_mb: int
    rendered: Dict[str, str]


def tune_for_machine(spec: MachineSpec,
                     base: YarnConfig = YarnConfig()) -> HadoopTemplate:
    """Derive the hardware-tuned template for ``spec``."""
    local_is_flash = spec.local_disk.aggregate_bw >= FLASH_THRESHOLD_BW
    lustre_faster = (spec.shared_fs.aggregate_bw
                     > spec.local_disk.aggregate_bw * spec.num_nodes)
    shuffle = "local" if (local_is_flash or not lustre_faster) else "lustre"

    # large-memory nodes can afford bigger NM shares and sort buffers
    memory_gb = spec.memory_per_node / 1024 ** 3
    nm_fraction = 0.85 if memory_gb >= 96 else 0.8
    io_sort_mb = 1024 if memory_gb >= 96 else 256

    yarn_config = replace(base,
                          nm_memory_fraction=nm_fraction,
                          nm_vcore_ratio=2.0 if spec.cores_per_node >= 32
                          else 1.0)

    rendered = {
        "mapred-site.xml.tuning": (
            f"<property><name>mapreduce.task.io.sort.mb</name>"
            f"<value>{io_sort_mb}</value></property>\n"
            f"<property><name>mapreduce.job.shuffle.transport</name>"
            f"<value>{shuffle}</value></property>\n"),
        "yarn-site.xml.tuning": (
            f"<property><name>yarn.nodemanager.resource.memory-mb</name>"
            f"<value>{yarn_config.nm_memory_mb(spec.memory_per_node)}"
            f"</value></property>\n"),
    }
    return HadoopTemplate(machine=spec.name, yarn_config=yarn_config,
                          shuffle_transport=shuffle,
                          io_sort_mb=io_sort_mb, rendered=rendered)
