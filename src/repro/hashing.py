"""Process-stable hashing for data placement.

Python's builtin ``hash`` is salted per process for ``str``/``bytes``
(``PYTHONHASHSEED``), so any data placement derived from it — MR
partitioners, Spark shuffle bucketing — lands string keys on different
partitions from one process to the next.  That breaks the sweeps'
``jobs=N == jobs=1`` byte-identical guarantee: a worker in a process
pool would shuffle the same job differently than the sequential
reference run.  :func:`stable_hash` is the deterministic replacement.
"""

from __future__ import annotations

import zlib
from typing import Any


def stable_hash(key: Any) -> int:
    """Deterministic 32-bit hash of ``key``, stable across processes.

    Hashes the canonical ``repr``: equal keys of the same type have
    equal reprs for every type that flows through MR/Spark shuffles
    (str, bytes, int, float, bool, and tuples thereof).  Unlike builtin
    ``hash``, numerically-equal keys of *different* types (``1`` vs
    ``1.0``) hash differently — irrelevant for partitioning, which only
    needs determinism and spread, not cross-type equality.
    """
    return zlib.crc32(repr(key).encode("utf-8", "surrogatepass"))
