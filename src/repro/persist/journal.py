"""Crash-safe sweep journal: spec + append-only per-cell completion log.

A resumable sweep run directory holds exactly two files:

* ``spec.json`` — the sweep's identity (grid, root seed, quick flag and
  the full cell list with keys + seeds), written atomically before any
  cell starts.  Resuming validates the identity byte-for-byte, so a
  journal can never be replayed against a different grid.
* ``cells.jsonl`` — one line per *completed* cell, appended with
  ``flush()`` + ``fsync()`` so a SIGKILL between cells loses at most
  the cell that was in flight.  Every line carries its own integrity
  digest; a torn tail (the classic crash artifact of an append) is
  detected and dropped on recovery instead of poisoning the resume.

Worker parallelism needs no locking: only the parent process appends,
recording results as the pool hands them back.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.persist.store import PersistError, atomic_write, canonical_json

#: Journal layout version.
JOURNAL_FORMAT = 1


class JournalError(PersistError):
    """Raised for journal/spec mismatches and corrupt run directories."""


def _line_digest(payload: Dict[str, Any]) -> str:
    """Integrity digest for one journal line (body without ``check``)."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


class SweepJournal:
    """One resumable sweep run directory."""

    SPEC = "spec.json"
    CELLS = "cells.jsonl"

    def __init__(self, run_dir: Path | str):
        self.run_dir = Path(run_dir)
        self.spec_path = self.run_dir / self.SPEC
        self.cells_path = self.run_dir / self.CELLS
        self._fh = None

    # ------------------------------------------------------------- the spec
    def write_spec(self, spec: Dict[str, Any]) -> None:
        """Commit the sweep identity (atomic; refuses to change it)."""
        existing = self.read_spec()
        payload = {"format": JOURNAL_FORMAT, **spec}
        if existing is not None:
            if existing != payload:
                raise JournalError(
                    f"run dir {self.run_dir} already journals a "
                    f"different sweep (grid {existing.get('grid')!r}, "
                    f"root_seed {existing.get('root_seed')}); use a "
                    f"fresh --run-dir or matching parameters")
            return
        self.run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write(self.spec_path, canonical_json(payload) + "\n")

    def read_spec(self) -> Optional[Dict[str, Any]]:
        if not self.spec_path.exists():
            return None
        try:
            spec = json.loads(self.spec_path.read_text())
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"corrupt sweep spec {self.spec_path}: {exc}") from exc
        if spec.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"sweep journal format {spec.get('format')!r} in "
                f"{self.run_dir}; this build reads format "
                f"{JOURNAL_FORMAT}")
        return spec

    # ------------------------------------------------------------ the cells
    def _repair_torn_tail(self) -> None:
        """Truncate a crash's torn final line *on disk* before appending.

        :meth:`completed` drops a torn tail in memory, but the fragment
        is still in the file — appending straight after it would merge
        the fragment and the new record into one corrupt line that is
        no longer at the tail, turning a recoverable crash artifact
        into a permanently unresumable journal.  Validates lines with
        the same digest check as recovery and truncates to the end of
        the last durable one; a valid final line that merely lost its
        newline gets the newline restored instead of being dropped.
        """
        if not self.cells_path.exists():
            return
        raw = self.cells_path.read_bytes()
        good_end = 0   # byte offset just past the last durable line
        pos = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            end = len(raw) if newline < 0 else newline + 1
            line = raw[pos:end].decode("utf-8", "replace").strip()
            ok = not line   # blank lines are skipped by completed()
            if line:
                try:
                    entry = json.loads(line)
                    ok = entry.pop("check") == _line_digest(entry)
                except (json.JSONDecodeError, KeyError, TypeError):
                    ok = False
            if not ok:
                if end < len(raw):
                    raise JournalError(
                        f"corrupt journal line in {self.cells_path} "
                        f"(not the final line, so not a crash artifact)")
                break
            good_end = end
            pos = end
        if good_end < len(raw):
            with open(self.cells_path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        elif raw and not raw.endswith(b"\n"):
            with open(self.cells_path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())

    def record(self, key: str, result: Dict[str, Any]) -> None:
        """Append one completed cell; durable before return."""
        body = {"key": key, "result": result}
        line = canonical_json({**body, "check": _line_digest(body)})
        if self._fh is None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            self._repair_torn_tail()
            self._fh = open(self.cells_path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Recover ``{cell key: result}`` from the journal.

        Tolerates exactly the corruption a crash can produce — a torn
        final line — and rejects anything else (a mangled digest in the
        middle of the log means the file was edited, not crashed on).
        """
        if not self.cells_path.exists():
            return {}
        results: Dict[str, Dict[str, Any]] = {}
        lines = self.cells_path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                check = entry.pop("check")
                ok = check == _line_digest(entry)
            except (json.JSONDecodeError, KeyError, TypeError):
                ok = False
            if not ok:
                if lineno == len(lines):
                    break  # torn tail from a crash mid-append: drop it
                raise JournalError(
                    f"corrupt journal line {lineno} in {self.cells_path} "
                    f"(not the final line, so not a crash artifact)")
            results[entry["key"]] = entry["result"]
        return results

    def pending(self, keys: Iterable[str]) -> List[str]:
        """The subset of ``keys`` not yet journaled, in given order."""
        done = self.completed()
        return [key for key in keys if key not in done]
