"""repro.persist — crash-safe checkpoint/restore and resumable sweeps.

The persistence layer the paper's MongoDB coordination store implies
but never details: durable state that survives a killed process.

Three pieces:

* :class:`~repro.persist.store.SnapshotStore` — content-addressed,
  atomic-rename snapshot records with named refs.
* :mod:`~repro.persist.checkpoint` — replay-based session checkpoints:
  record (scenario, seed, params) + the engine's replay barrier + a
  state digest; :func:`restore` rebuilds the session in a fresh
  process and proves byte-identical state.
* :class:`~repro.persist.journal.SweepJournal` — per-cell completion
  journal that makes ``python -m repro sweep --resume`` re-run only
  unfinished cells after a crash.

Quick start::

    from repro.persist import launch, restore

    session = launch("bag", seed=7, fault_rate=0.25)
    session.env.run(until=120.0)
    session.checkpoint("ckpt-store")      # survives kill -9 from here
    ...
    session = restore("ckpt-store")       # fresh process, same state
"""

from repro.persist.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointInfo,
    Provenance,
    RestoreMismatch,
    SchemaDrift,
    checkpoint_session,
    fingerprint_diff,
    launch,
    manifest_digest,
    restore,
    scenario,
    scenario_names,
    state_digest,
    state_fingerprint,
)
from repro.persist.journal import JournalError, SweepJournal
from repro.persist.store import (
    STORE_FORMAT,
    PersistError,
    SnapshotStore,
    StoreError,
    atomic_write,
    canonical_json,
    payload_digest,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "STORE_FORMAT",
    "CheckpointInfo",
    "JournalError",
    "PersistError",
    "Provenance",
    "RestoreMismatch",
    "SchemaDrift",
    "SnapshotStore",
    "StoreError",
    "SweepJournal",
    "atomic_write",
    "canonical_json",
    "checkpoint_session",
    "fingerprint_diff",
    "launch",
    "manifest_digest",
    "payload_digest",
    "restore",
    "scenario",
    "scenario_names",
    "state_digest",
    "state_fingerprint",
]
