"""Crash-safe session checkpoints: record the recipe, replay the state.

A live session cannot be pickled — its processes are suspended Python
generator frames (exactly the SIM112 hazard the snapshot auditor
flags).  Instead of serializing frames, a checkpoint records how to
*rebuild* them:

* the **provenance** — which registered :func:`scenario` built the
  session, with which seed and parameters;
* the **replay barrier** — the engine's deterministic step counter at
  the moment of the checkpoint (plus ``now`` and the event sequence
  counter as cross-checks);
* the **state digest** — a sha256 over the canonical fingerprint of
  every snapshot-safe piece of state (event-queue shape, RNG
  bit-generator states, DB documents, scheduler ledgers, telemetry
  rows, fault ledger, registered components).

:func:`restore` re-runs the scenario in a fresh process and drives the
engine forward with :meth:`~repro.sim.engine.Environment.replay_to`
until the barrier, then recomputes the fingerprint.  Because the whole
stack is a deterministic function of (scenario, seed, params), the
digests match byte-for-byte — and when they do not, the restore fails
loudly with :class:`RestoreMismatch` instead of continuing from a
silently divergent world.

The committed ``state-manifest.json`` (maintained by ``python -m repro
audit-state``) doubles as the checkpoint schema: its digest is embedded
in every snapshot, so restoring with a drifted manifest raises
:class:`SchemaDrift` before any replay happens.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.persist.store import (
    PersistError,
    SnapshotStore,
    canonical_json,
)

#: Snapshot payload format; bumped on incompatible fingerprint changes.
CHECKPOINT_FORMAT = 1

#: Where the checkpoint workflow is documented (error-message pointer).
DOCS_POINTER = "README.md 'Crash-safe state & resume'"


class SchemaDrift(PersistError):
    """The snapshot's state-manifest digest does not match this tree's."""


class RestoreMismatch(PersistError):
    """Replay reached the barrier but the state fingerprint diverged."""


# --------------------------------------------------------------- scenarios
_SCENARIOS: Dict[str, Callable] = {}


def scenario(name: str) -> Callable:
    """Register a session-builder under ``name``.

    A scenario is a plain function ``fn(session_seed, **params) ->
    Session`` that deterministically constructs a session and advances
    it to some interesting point.  Registration is what makes sessions
    *checkpointable*: the snapshot stores the scenario name + module,
    and :func:`restore` imports that module to rebuild the world.
    """
    def register(fn: Callable) -> Callable:
        existing = _SCENARIOS.get(name)
        if existing is not None and existing is not fn:
            raise PersistError(f"scenario {name!r} already registered "
                               f"as {existing.__module__}.{existing.__qualname__}")
        _SCENARIOS[name] = fn
        return fn
    return register


def scenario_names() -> list:
    """Registered scenario names, sorted (CLI listing)."""
    import repro.persist.scenarios  # noqa: F401  (register built-ins)
    return sorted(_SCENARIOS)


@dataclass(frozen=True)
class Provenance:
    """How a session can be rebuilt in a fresh process."""

    name: str
    module: str
    qualname: str
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        return {"name": self.name, "module": self.module,
                "qualname": self.qualname, "seed": self.seed,
                "params": dict(sorted(self.params.items()))}


def launch(name: str, seed: int = 42, **params):
    """Build a checkpointable session from a registered scenario.

    The returned session carries a :class:`Provenance`; between
    ``launch`` and ``checkpoint`` callers may only *advance time*
    (``env.run``) — any other mutation diverges the replay and is
    caught by the post-restore digest check.
    """
    import repro.persist.scenarios  # noqa: F401  (register built-ins)
    if name not in _SCENARIOS:
        raise PersistError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(sorted(_SCENARIOS)) or '(none)'}")
    fn = _SCENARIOS[name]
    session = fn(seed, **params)
    session.provenance = Provenance(
        name=name, module=fn.__module__, qualname=fn.__qualname__,
        seed=seed, params=dict(params))
    return session


# ----------------------------------------------------------- schema gate
def manifest_digest(path: Optional[str] = None) -> Optional[str]:
    """sha256 of the committed ``state-manifest.json`` (the schema gate).

    ``None`` when no manifest is found — snapshots then record no gate
    and restores skip the check (useful outside a repo checkout).
    """
    from repro.analysis.simlint import resolve_cli_path
    candidate = Path(resolve_cli_path(path or "state-manifest.json",
                                      must_exist=False))
    if not candidate.exists():
        return None
    return hashlib.sha256(candidate.read_bytes()).hexdigest()


# ------------------------------------------------------- the fingerprint
def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-able, order-stable form.

    Anything the fingerprint walk may encounter becomes deterministic
    plain data; object identities (memory addresses) never leak in, so
    the digest is stable across processes.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): canonical(v)
                for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(v) for v in value)
    if is_dataclass(value) and not isinstance(value, type):
        # NOT dataclasses.asdict: that deep-copies field values, and a
        # description field may hold a callable bound to a live object
        # graph (suspended generators included).  A shallow field walk
        # routes every value back through this canonicalizer instead.
        from dataclasses import fields
        return {f.name: canonical(getattr(value, f.name))
                for f in fields(value)}
    if callable(value):
        name = getattr(value, "__qualname__",
                       getattr(value, "__name__", type(value).__name__))
        return f"<callable:{name}>"
    uid = getattr(value, "uid", None)
    if isinstance(uid, str):
        return f"<{type(value).__name__}:{uid}>"
    return f"<{type(value).__name__}>"


def state_fingerprint(session) -> Dict[str, Any]:
    """The canonical walk over every snapshot-safe piece of state."""
    env = session.env
    fp: Dict[str, Any] = {
        "engine": env.snapshot_state(),
        "session": session.snapshot_state(),
        "rng": session.rng.snapshot_state(),
        "db": session.db.snapshot_state(),
    }
    if env.faults is not None:
        fp["faults"] = env.faults.snapshot_state()
    if env.telemetry is not None:
        fp["telemetry"] = env.telemetry.metrics.snapshot_state()
    fp["components"] = [comp.snapshot_state()
                        for comp in session.components
                        if hasattr(comp, "snapshot_state")]
    return canonical(fp)


def state_digest(session) -> str:
    """sha256 over the canonical JSON form of the fingerprint."""
    return hashlib.sha256(
        canonical_json(state_fingerprint(session)).encode()).hexdigest()


# ------------------------------------------------------------ checkpoint
@dataclass(frozen=True)
class CheckpointInfo:
    """What :func:`checkpoint_session` stored."""

    digest: str          #: content address of the snapshot record
    state_digest: str    #: fingerprint digest at the barrier
    now: float           #: simulation clock at the barrier
    steps: int           #: replay barrier (events processed)
    scenario: str        #: provenance name


def checkpoint_session(session, path, ref: str = "latest") -> CheckpointInfo:
    """Checkpoint ``session`` into the snapshot store at ``path``.

    Must be called at a quiescent barrier — i.e. *between* ``env.run``
    calls, never from inside a running process.  Atomic end to end: the
    record lands content-addressed via tmp+rename, then ``ref`` moves.
    """
    if session.provenance is None:
        raise PersistError(
            "session has no provenance; build it with repro.persist."
            "launch(scenario, seed=..., **params) to make it "
            "checkpointable")
    if session.env.active_process is not None:
        raise PersistError(
            "checkpoint_session() called from inside a running process; "
            "checkpoints must happen at a quiescent barrier between "
            "env.run() calls")
    engine = session.env.snapshot_state()
    payload = {
        "format": CHECKPOINT_FORMAT,
        "kind": "session_checkpoint",
        "provenance": session.provenance.payload(),
        "barrier": {"now": engine["now"], "steps": engine["steps"],
                    "seq": engine["seq"]},
        "state_digest": state_digest(session),
        "manifest_digest": manifest_digest(),
    }
    store = SnapshotStore(path)
    digest = store.put(payload)
    store.set_ref(ref, digest)
    return CheckpointInfo(digest=digest,
                          state_digest=payload["state_digest"],
                          now=engine["now"], steps=engine["steps"],
                          scenario=session.provenance.name)


def restore(path, ref: str = "latest"):
    """Rebuild a checkpointed session in this process.

    Loads the snapshot, re-runs its scenario with the recorded seed and
    parameters, replays the engine to the barrier and verifies the
    state digest.  Returns the restored session, byte-identical (by
    fingerprint) to the one that was checkpointed.
    """
    store = SnapshotStore(path, create=False)
    record = store.resolve(ref)
    if record.get("kind") != "session_checkpoint":
        raise PersistError(
            f"object {ref!r} in {path} is a {record.get('kind')!r}, "
            f"not a session checkpoint")
    if record.get("format") != CHECKPOINT_FORMAT:
        raise PersistError(
            f"checkpoint format {record.get('format')!r} unsupported; "
            f"this build reads format {CHECKPOINT_FORMAT}")
    recorded_schema = record.get("manifest_digest")
    current_schema = manifest_digest()
    if (recorded_schema is not None and current_schema is not None
            and recorded_schema != current_schema):
        raise SchemaDrift(
            "snapshot was taken under a different state-manifest.json "
            "(the checkpoint schema); run 'python -m repro audit-state "
            f"--check' and see {DOCS_POINTER}")
    prov = record["provenance"]
    # Import the defining module so out-of-tree scenarios register.
    importlib.import_module(prov["module"])
    session = launch(prov["name"], seed=prov["seed"], **prov["params"])
    barrier = record["barrier"]
    session.env.replay_to(barrier["steps"], now=barrier["now"])
    engine = session.env.snapshot_state()
    if engine["now"] != barrier["now"] or engine["seq"] != barrier["seq"]:
        raise RestoreMismatch(
            f"replay reached step {barrier['steps']} at "
            f"now={engine['now']} seq={engine['seq']}, but the snapshot "
            f"recorded now={barrier['now']} seq={barrier['seq']}; the "
            f"scenario is not deterministic")
    actual = state_digest(session)
    if actual != record["state_digest"]:
        raise RestoreMismatch(
            f"state digest after replay is {actual[:16]}…, snapshot "
            f"recorded {record['state_digest'][:16]}…; state outside "
            f"the scenario recipe mutated between launch and "
            f"checkpoint (see {DOCS_POINTER})")
    return session


def fingerprint_diff(a: Dict[str, Any], b: Dict[str, Any],
                     prefix: str = "") -> list:
    """Paths where two fingerprints differ (debugging aid for tests)."""
    diffs = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                diffs.append(f"{prefix}.{key} (only one side)")
            else:
                diffs.extend(fingerprint_diff(a[key], b[key],
                                              f"{prefix}.{key}"))
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(f"{prefix} (length {len(a)} vs {len(b)})")
        else:
            for i, (x, y) in enumerate(zip(a, b)):
                diffs.extend(fingerprint_diff(x, y, f"{prefix}[{i}]"))
    elif a != b:
        diffs.append(f"{prefix}: {a!r} != {b!r}")
    return diffs


__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointInfo",
    "Provenance",
    "RestoreMismatch",
    "SchemaDrift",
    "canonical",
    "checkpoint_session",
    "fingerprint_diff",
    "launch",
    "manifest_digest",
    "restore",
    "scenario",
    "scenario_names",
    "state_digest",
    "state_fingerprint",
]
