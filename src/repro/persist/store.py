"""Content-digested, versioned on-disk snapshot store.

The durable half of the checkpoint layer — the stand-in for the
paper's persistent MongoDB coordination store.  Records are canonical
JSON blobs addressed by their own sha256 digest (``objects/<digest>``),
so the store is append-only by construction: a record can never be
mutated in place, only superseded by a new digest.  Human-meaningful
names (``latest``, ``barrier-120``) live in a small ``refs.json`` map
that is replaced atomically.

Crash safety uses the classic write-ahead pattern throughout: every
file lands as ``<name>.tmp.<pid>`` first, is flushed and fsync'd, and
only then renamed over the final path (``os.replace`` is atomic on
POSIX).  A process killed at any instant leaves either the old state
or the new state on disk — never a torn file.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

try:
    import fcntl
except ImportError:              # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: On-disk format version; bumped on incompatible layout changes.
STORE_FORMAT = 1


class PersistError(RuntimeError):
    """Base class for persistence-layer failures."""


class StoreError(PersistError):
    """Raised for malformed or corrupt snapshot stores."""


def canonical_json(payload) -> str:
    """The byte-stable serialization every digest is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload) -> str:
    """sha256 of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a completed rename survives power loss."""
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(path, flags)
    except OSError:
        return   # platform cannot open directories (e.g. Windows)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: Path, data: str) -> None:
    """Write ``data`` to ``path`` via tmp-file + fsync + atomic rename.

    The parent directory is fsync'd after the rename, so the commit is
    durable against power failure, not just process death.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class SnapshotStore:
    """A directory of content-addressed snapshot records + named refs.

    ::

        store/
          store.json        # {"format": 1}
          refs.json         # {"latest": "<digest>", ...}
          objects/
            <sha256>.json   # canonical-JSON records

    ``put`` is idempotent (same payload -> same digest -> same file)
    and ``get`` re-digests what it reads, so silent on-disk corruption
    is always detected, never deserialized into a half-wrong restore.
    """

    def __init__(self, root: Path | str, create: bool = True):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self._meta_path = self.root / "store.json"
        self._refs_path = self.root / "refs.json"
        if self._meta_path.exists():
            meta = json.loads(self._meta_path.read_text())
            if meta.get("format") != STORE_FORMAT:
                raise StoreError(
                    f"snapshot store {self.root} has format "
                    f"{meta.get('format')!r}; this build reads format "
                    f"{STORE_FORMAT}")
        elif create:
            self.objects.mkdir(parents=True, exist_ok=True)
            atomic_write(self._meta_path,
                         canonical_json({"format": STORE_FORMAT}) + "\n")
        else:
            raise StoreError(f"no snapshot store at {self.root}")

    # -------------------------------------------------------------- objects
    def put(self, payload: Dict) -> str:
        """Store one record; returns its content digest."""
        digest = payload_digest(payload)
        path = self.objects / f"{digest}.json"
        if not path.exists():
            self.objects.mkdir(parents=True, exist_ok=True)
            atomic_write(path, canonical_json(payload) + "\n")
        return digest

    def get(self, digest: str) -> Dict:
        """Load one record, verifying content against its address."""
        path = self.objects / f"{digest}.json"
        if not path.exists():
            raise StoreError(f"no object {digest} in {self.root}")
        text = path.read_text()
        payload = json.loads(text)
        actual = payload_digest(payload)
        if actual != digest:
            raise StoreError(
                f"object {digest} in {self.root} is corrupt "
                f"(content digests to {actual})")
        return payload

    def __contains__(self, digest: str) -> bool:
        return (self.objects / f"{digest}.json").exists()

    def digests(self) -> list:
        """Every stored object digest, sorted."""
        if not self.objects.exists():
            return []
        return sorted(p.stem for p in self.objects.glob("*.json"))

    def verify(self) -> int:
        """Round-trip every object; returns the count verified.

        Raises :class:`StoreError` on the first corrupt record — used
        by CI to keep the store schema and the on-disk bytes honest.
        """
        count = 0
        for digest in self.digests():
            self.get(digest)
            count += 1
        return count

    # ----------------------------------------------------------------- refs
    def refs(self) -> Dict[str, str]:
        if not self._refs_path.exists():
            return {}
        return dict(json.loads(self._refs_path.read_text()))

    def ref(self, name: str) -> Optional[str]:
        return self.refs().get(name)

    @contextlib.contextmanager
    def _refs_lock(self):
        """Exclusive advisory lock serializing refs.json updates.

        Two processes checkpointing into one store both read-modify-
        write the refs map; without the lock the later writer would
        silently drop the earlier one's ref.
        """
        fd = os.open(self.root / "refs.lock",
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)   # closing the fd releases the flock

    def set_ref(self, name: str, digest: str) -> None:
        """Point ``name`` at ``digest`` (locked read-modify-write,
        atomic replace of refs.json)."""
        if digest not in self:
            raise StoreError(
                f"cannot ref unknown object {digest} as {name!r}")
        with self._refs_lock():
            refs = self.refs()
            refs[name] = digest
            atomic_write(self._refs_path, canonical_json(refs) + "\n")

    def resolve(self, name_or_digest: str) -> Dict:
        """Load a record by ref name or raw digest."""
        digest = self.refs().get(name_or_digest, name_or_digest)
        return self.get(digest)
