"""Built-in checkpoint scenarios.

A scenario deterministically constructs a session and advances it to an
interesting mid-flight point, then *returns without draining the
workload* — that is the whole point: the caller advances simulated time
in slices, checkpointing at the quiescent barriers in between, and a
restore replays the same recipe in a fresh process.

These built-ins mirror the experiment harness so checkpoints cover the
full stack the paper exercises: pilot + agent + scheduler state, an
in-flight bag of units under a restart policy, armed faults, and a
raptor master/worker overlay with a task stream.
"""

from __future__ import annotations

from repro.persist.checkpoint import scenario


@scenario("bag")
def bag(seed: int, flavor: str = "RP", fault_rate: float = 0.25,
        ntasks: int = 8, nodes: int = 2):
    """An in-flight bag of tasks with a poisoned fraction.

    The chaos-grid bag cell, stopped right after submission: the pilot
    is ACTIVE, ``ntasks`` units are queued/executing, ``fault_rate`` of
    them carry one transient executor error each, and the restart
    policy that will absorb those errors is armed.  Nothing has
    drained — the returned session is mid-workload by construction.
    """
    from repro.api import (ComputeUnitDescription, RestartPolicy,
                           UnitManager)
    from repro.experiments.calibration import agent_config
    from repro.experiments.chaos import _FLAVOR_LRM
    from repro.experiments.harness import Testbed

    testbed = Testbed("stampede", num_nodes=nodes, seed=seed)
    policy = RestartPolicy(max_restarts=3, backoff=0.5,
                           backoff_factor=2.0, backoff_cap=8.0)
    umgr = UnitManager(testbed.session, restart_policy=policy)
    testbed.umgr = umgr
    testbed.start_pilot(
        nodes=nodes, agent_config=agent_config(_FLAVOR_LRM[flavor]))
    units = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=30.0, memory_mb=1024,
                               name=f"bag-{i}")
        for i in range(ntasks)])
    npoison = round(fault_rate * ntasks)
    for i in range(npoison):
        testbed.session.faults.unit_error(
            units[(i * ntasks) // npoison].uid, times=1)
    session = testbed.session
    session.handles["units"] = units
    session.handles["umgr"] = umgr
    return session


@scenario("raptor-stream")
def raptor_stream(seed: int, workers: int = 2, ntasks: int = 12,
                  nodes: int = 2):
    """A raptor overlay mid-stream.

    The pilot is ACTIVE, the master and ``workers`` worker CUs are up,
    and ``ntasks`` function tasks are submitted but not yet drained.
    """
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed
    from repro.raptor.task import TaskDescription

    testbed = Testbed("stampede", num_nodes=nodes, seed=seed)
    pilot, _, _ = testbed.start_pilot(nodes=nodes,
                                      agent_config=agent_config("fork"))
    overlay = testbed.session.raptor(pilot, workers=workers)
    testbed.env.run(overlay.ready())
    overlay.submit_tasks([
        TaskDescription(cpu_seconds=5.0, name=f"stream-{i}")
        for i in range(ntasks)], futures=False)
    session = testbed.session
    session.handles["overlay"] = overlay
    return session
