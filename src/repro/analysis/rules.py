"""simlint rules: the determinism/correctness hazard catalogue.

Each rule encodes one bug class that has actually broken (or would
break) the reproducibility of the paper's figures:

=======  ==============================================================
SIM001   wall-clock call in simulation code (``time.time``,
         ``datetime.now``...) — simulated time must come from
         ``env.now``
SIM002   global / unseeded RNG (``random.*``, ``np.random.*`` module
         state) — randomness must come from seeded
         ``repro.sim.rng`` streams
SIM003   builtin ``hash()`` — salted per process by PYTHONHASHSEED;
         use ``repro.hashing.stable_hash``
SIM004   module-global mutable state or counter (the PR 2/3 bug
         class: module/class-level ``itertools.count``, lowercase
         module-level containers, ``global`` statements)
SIM005   iteration over an unordered ``set`` feeding ordered output —
         wrap in ``sorted(...)``
SIM006   swallowed broad exception (bare ``except:`` or
         ``except Exception/BaseException: pass``) — hides
         sim-engine errors
=======  ==============================================================

A rule's :meth:`~Rule.check` receives the parsed module and the raw
source and yields ``(line, col, message)`` triples; the engine in
:mod:`repro.analysis.simlint` attaches paths, applies inline
suppressions and compares against the baseline.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

RawFinding = Tuple[int, int, str]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: subclasses register themselves in :data:`RULES`."""

    code: str = ""
    summary: str = ""
    #: ``module`` rules run per file inside :func:`lint_source`;
    #: ``project`` rules need the whole import graph and are driven by
    #: :mod:`repro.analysis.simflow` / :mod:`repro.analysis.snapshot`.
    scope: str = "module"

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    RULES[cls.code] = cls()
    return cls


@register
class WallClockRule(Rule):
    """SIM001: host wall-clock reads inside simulation code.

    Simulated components must take time from ``env.now``; a
    ``time.time()`` or ``datetime.now()`` call couples results to the
    machine running them.  Host-side *measurement* code (benchmark
    timers) suppresses the rule inline, keeping the exception visible.
    """

    code = "SIM001"
    summary = "wall-clock call in simulation code (use env.now)"

    _CALLS = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.sleep",
    }
    #: (second-to-last, last) dotted segments for datetime-style calls,
    #: so both ``datetime.now()`` and ``datetime.datetime.now()`` match.
    _SUFFIXES = {("datetime", "now"), ("datetime", "utcnow"),
                 ("datetime", "today"), ("date", "today")}

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if name in self._CALLS or (
                    len(parts) >= 2 and tuple(parts[-2:]) in self._SUFFIXES):
                yield (node.lineno, node.col_offset,
                       f"wall-clock call {name}() in simulation code; "
                       "simulated time must come from env.now")


@register
class GlobalRngRule(Rule):
    """SIM002: draws from process-global RNG state.

    ``random.*`` and the legacy ``numpy.random.*`` module functions
    share hidden global state: any new caller perturbs every later
    draw, and unseeded use differs run to run.  Components must draw
    from named, seeded ``repro.sim.rng`` streams (or a local
    ``np.random.default_rng(seed)``).
    """

    code = "SIM002"
    summary = "global/unseeded RNG (use repro.sim.rng streams)"

    _RANDOM_FUNCS = {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "seed", "getrandbits", "randbytes", "gauss",
        "normalvariate", "expovariate", "betavariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate", "getstate",
        "setstate",
    }
    #: numpy.random attributes that construct *local* seeded generators
    #: rather than touching the module-global state.
    _NUMPY_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                 "Philox", "MT19937", "SFC64", "BitGenerator"}

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        # Names imported straight out of the stdlib random module
        # (``from random import shuffle``) are flagged at call sites.
        from_random: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    from_random.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random":
                if parts[1] in self._RANDOM_FUNCS:
                    yield (node.lineno, node.col_offset,
                           f"{name}() draws from the process-global "
                           "random module; use a seeded repro.sim.rng "
                           "stream")
                elif parts[1] in ("Random", "SystemRandom") and not node.args:
                    yield (node.lineno, node.col_offset,
                           f"unseeded {name}(); pass an explicit seed")
            elif (len(parts) >= 3 and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[-1] not in self._NUMPY_OK):
                yield (node.lineno, node.col_offset,
                       f"{name}() uses numpy's global RNG state; use "
                       "np.random.default_rng(seed) or a repro.sim.rng "
                       "stream")
            elif len(parts) == 1 and parts[0] in from_random:
                yield (node.lineno, node.col_offset,
                       f"{name}() imported from the random module draws "
                       "from process-global state; use a seeded "
                       "repro.sim.rng stream")


@register
class BuiltinHashRule(Rule):
    """SIM003: builtin ``hash()`` feeding partitioning or ordering.

    ``hash(str)`` is salted per process (PYTHONHASHSEED), so any
    partitioner, bucketing or ordering derived from it differs between
    processes — the exact bug fixed in the MR partitioner and Spark
    bucketing.  Use :func:`repro.hashing.stable_hash`.
    """

    code = "SIM003"
    summary = "builtin hash() is PYTHONHASHSEED-salted (use stable_hash)"

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                yield (node.lineno, node.col_offset,
                       "builtin hash() is salted per process; use "
                       "repro.hashing.stable_hash for partitioning "
                       "and ordering")


@register
class ModuleGlobalStateRule(Rule):
    """SIM004: module-global mutable state and counters.

    A module-level (or class-level) ``itertools.count`` numbers
    entities by *process history*, not by session — the RDD-id bug
    fixed in PR 3.  Lowercase module-level containers invite the same
    cross-cell leakage, and ``global`` rebinding is the general form.
    SCREAMING_CASE module constants (lookup tables, registries frozen
    after import) are accepted by convention.
    """

    code = "SIM004"
    summary = "module-global mutable state/counter (scope to the session)"

    _MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict",
                      "Counter", "OrderedDict", "bytearray"}

    @staticmethod
    def _is_counter(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        name = dotted_name(value.func)
        return name in ("itertools.count", "count")

    def _mutable(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            return name is not None and \
                name.split(".")[-1] in self._MUTABLE_CALLS
        return False

    @staticmethod
    def _assign_targets(stmt: ast.stmt) -> List[ast.expr]:
        if isinstance(stmt, ast.Assign):
            return stmt.targets
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return [stmt.target]
        return []

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        # Module-level assignments.
        for stmt in tree.body:
            for target in self._assign_targets(stmt):
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                value = stmt.value  # type: ignore[union-attr]
                if self._is_counter(value):
                    yield (stmt.lineno, stmt.col_offset,
                           f"module-global counter {name!r}: numbering "
                           "follows process history; scope it to the "
                           "session (Session.next_uid)")
                elif (self._mutable(value)
                        and name != name.upper()
                        and not name.startswith("__")):
                    yield (stmt.lineno, stmt.col_offset,
                           f"module-level mutable state {name!r}: shared "
                           "across cells in one process; scope it to the "
                           "session or freeze it as a SCREAMING_CASE "
                           "constant")
        # Class-level counters (still process-global: shared by every
        # instance in the process, like the old Session._seq).
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    for target in self._assign_targets(stmt):
                        if isinstance(target, ast.Name) and \
                                self._is_counter(stmt.value):  # type: ignore[union-attr]
                            yield (stmt.lineno, stmt.col_offset,
                                   f"class-level counter "
                                   f"{node.name}.{target.id}: shared by "
                                   "every instance in the process; move "
                                   "it into __init__ or the session")
            elif isinstance(node, ast.Global):
                yield (node.lineno, node.col_offset,
                       "global statement rebinds module state at "
                       "runtime; pass state explicitly")


@register
class UnorderedIterationRule(Rule):
    """SIM005: iterating an unordered ``set`` into ordered output.

    Set iteration order depends on insertion history and hash salting;
    a ``for`` loop (or comprehension) over a set that feeds scheduling,
    placement or serialized output is a reproducibility hazard.  Wrap
    the set in ``sorted(...)``.  (Dict iteration is insertion-ordered
    and fine.)
    """

    code = "SIM005"
    summary = "iteration over an unordered set (wrap in sorted())"

    #: Order-preserving wrappers unwrapped one level before the test,
    #: so ``enumerate(set(...))`` is still caught.
    _TRANSPARENT = {"enumerate", "list", "tuple", "iter", "reversed"}

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
            if node.func.id in self._TRANSPARENT and node.args:
                return self._is_set_expr(node.args[0])
        return False

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        iters: List[ast.expr] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if self._is_set_expr(it):
                yield (it.lineno, it.col_offset,
                       "iterating an unordered set; wrap it in sorted() "
                       "before it feeds ordered output")


@register
class SwallowedExceptionRule(Rule):
    """SIM006: broad exception handlers that discard the error.

    A bare ``except:`` (any body) or an ``except Exception/
    BaseException: pass`` swallows :class:`SimulationError` and
    invariant violations along with whatever it meant to ignore,
    turning a loud kernel crash into silent state corruption.  Catch
    the specific exception, or record the cause.
    """

    code = "SIM006"
    summary = "bare/broad except swallowing sim-engine errors"

    _BROAD = {"Exception", "BaseException"}

    def _broad_names(self, etype: Optional[ast.expr]) -> bool:
        if isinstance(etype, ast.Name):
            return etype.id in self._BROAD
        if isinstance(etype, ast.Tuple):
            return any(self._broad_names(e) for e in etype.elts)
        return False

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (node.lineno, node.col_offset,
                       "bare except: catches SimulationError and "
                       "KeyboardInterrupt alike; name the exception")
                continue
            body_is_pass = all(isinstance(s, ast.Pass) for s in node.body)
            if body_is_pass and self._broad_names(node.type):
                yield (node.lineno, node.col_offset,
                       "except Exception: pass swallows sim-engine "
                       "errors; catch the specific exception or record "
                       "the cause")


# --------------------------------------------------------- project rules
class ProjectRule(Rule):
    """A rule that needs the whole import graph.

    The per-module :meth:`check` is a registered no-op: findings for
    these codes come from the cross-module passes
    (:func:`repro.analysis.simflow.analyze_paths` for SIM10x,
    :func:`repro.analysis.snapshot.audit_paths` for SIM11x), which
    attach to the same :data:`RULES` codes so suppressions, baselines
    and ``--list-rules`` treat both families uniformly.
    """

    scope = "project"

    def check(self, tree: ast.Module, source: str) -> Iterator[RawFinding]:
        return iter(())


@register
class TaintedScheduleRule(ProjectRule):
    """SIM101: a nondeterministic value reaches an event-schedule sink.

    Taint from wall-clock reads, global-RNG draws, salted ``hash()``,
    process-environment reads or materialized set ordering flowing —
    possibly across functions and modules — into ``env.timeout``
    delays, ``_schedule`` calls, or yielded schedule delays.
    """

    code = "SIM101"
    summary = "nondeterministic value reaches an event-schedule sink"


@register
class TaintedDigestRule(ProjectRule):
    """SIM102: a nondeterministic value reaches a digest input.

    Anything hashed by ``stable_hash``/``hashlib`` becomes part of the
    byte-identity contract; tainted inputs silently fork digests
    between runs and processes.
    """

    code = "SIM102"
    summary = "nondeterministic value reaches a digest input"


@register
class TaintedAggregateRule(ProjectRule):
    """SIM103: a nondeterministic value reaches a serialized aggregate.

    ``json.dumps`` payloads in sweep rows and reports must be
    seed-deterministic; host-side metadata stays out of digested
    aggregates (or is suppressed where it is deliberate reporting).
    """

    code = "SIM103"
    summary = "nondeterministic value reaches a serialized aggregate row"


@register
class TaintedTelemetryRule(ProjectRule):
    """SIM104: a nondeterministic value reaches a telemetry metric.

    Metric labels and observed samples are replay-compared across
    runs; tainted label values shard series nondeterministically.
    """

    code = "SIM104"
    summary = "nondeterministic value reaches a telemetry label/sample"


@register
class OpenHandleStateRule(ProjectRule):
    """SIM111: an open file handle stored as snapshot state."""

    code = "SIM111"
    summary = "open file handle stored as snapshot state"


@register
class GeneratorStateRule(ProjectRule):
    """SIM112: a live generator/coroutine stored as snapshot state.

    Suspended frames cannot be serialized; a checkpoint layer must
    replay them from journaled events instead.
    """

    code = "SIM112"
    summary = "generator/coroutine stored as snapshot state"


@register
class ExecutorStateRule(ProjectRule):
    """SIM113: a process/thread executor handle stored as state."""

    code = "SIM113"
    summary = "executor/thread handle stored as snapshot state"


@register
class CallableStateRule(ProjectRule):
    """SIM114: a lambda or bound method stored as snapshot state."""

    code = "SIM114"
    summary = "lambda/bound method stored as snapshot state"


@register
class GlobalBackrefStateRule(ProjectRule):
    """SIM115: a module-global backref stored as snapshot state.

    Serializing a reference to module-global mutable state forks it:
    the restored copy and the live global silently diverge.
    """

    code = "SIM115"
    summary = "module-global backref stored as snapshot state"
