"""simlint: an AST-based determinism linter for the simulation stack.

The paper's figures are reproducible only because every component of
the simulated pilot/YARN/HDFS stack is deterministic, and history shows
that property erodes one innocuous-looking line at a time: a
module-global counter here, a salted ``hash()`` there.  simlint makes
the property *checked* instead of reviewed: each hazard class is a
:class:`~repro.analysis.rules.Rule` with a stable ``SIM00x`` code, and
``python -m repro lint --check`` fails CI when a new finding appears.

Three layers:

* **rules** — registered in :data:`repro.analysis.rules.RULES`; each
  walks a parsed module and yields findings.
* **suppressions** — an inline ``# simlint: disable=SIM001`` comment on
  the flagged line silences specific codes (bare ``disable`` silences
  all); deliberate exceptions stay visible next to the code they excuse.
* **baseline** — a committed JSON file of known findings
  (``simlint-baseline.json``); ``--check`` fails on findings *not* in
  the baseline and on *stale* baseline entries that no longer
  reproduce, so the debt ledger can only shrink.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Matches an inline suppression comment.  ``disable=SIM001,SIM002``
#: silences the listed codes on that line; a bare ``disable`` silences
#: every rule on the line.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, int]:
        return (self.path, self.code, self.line)

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(path=str(data["path"]), line=int(data["line"]),
                   col=int(data["col"]), code=str(data["code"]),
                   message=str(data["message"]))

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Line -> suppressed codes (``None`` = all codes) for ``source``."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def module_rule_codes() -> List[str]:
    """Codes of the per-module (syntactic) rules, sorted."""
    from repro.analysis.rules import RULES
    return sorted(code for code, rule in RULES.items()
                  if rule.scope == "module")


def flow_rule_codes() -> List[str]:
    """Codes of the cross-module flow rules (SIM10x), sorted."""
    from repro.analysis.rules import RULES
    return sorted(code for code, rule in RULES.items()
                  if rule.scope == "project" and code < "SIM110")


def audit_rule_codes() -> List[str]:
    """Codes of the snapshot-safety rules (SIM11x), sorted."""
    from repro.analysis.rules import RULES
    return sorted(code for code, rule in RULES.items()
                  if rule.scope == "project" and code >= "SIM110")


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns sorted findings.

    ``rules`` restricts the run to the given codes (default: all
    registered per-module rules; project-scope rules need the import
    graph and are driven by :mod:`repro.analysis.simflow` /
    :mod:`repro.analysis.snapshot` instead).
    """
    from repro.analysis.rules import RULES

    tree = ast.parse(source, filename=path)
    suppressed = suppressions(source)
    selected = {code: rule for code, rule in RULES.items()
                if rule.scope == "module"} if rules is None else {
        code: RULES[code] for code in rules}
    findings: List[Finding] = []
    for code in sorted(selected):
        rule = selected[code]
        for raw in rule.check(tree, source):
            line, col, message = raw
            codes = suppressed.get(line, False)
            if codes is None or (codes and code in codes):
                continue
            findings.append(Finding(path=path, line=line, col=col,
                                    code=code, message=message))
    return sorted(findings)


def lint_file(path: Path | str,
              rules: Optional[Sequence[str]] = None,
              relative_to: Optional[Path] = None) -> List[Finding]:
    """Lint one file; finding paths are repo-root-relative POSIX style.

    The default base is the nearest repo root above the file
    (``pyproject.toml``/``.git`` marker; the file's directory when no
    marker exists), *not* the cwd — so the committed baseline's keys
    (``src/repro/...``) match no matter where the CLI runs from.
    """
    from repro.analysis.project import display_base

    path = Path(path)
    shown = path
    base = relative_to if relative_to is not None else display_base(path)
    if base is not None:
        try:
            shown = path.resolve().relative_to(Path(base).resolve())
        except ValueError:
            pass
    return lint_source(path.read_text(), path=shown.as_posix(),
                       rules=rules)


def iter_py_files(paths: Iterable[Path | str]) -> List[Path]:
    """All ``.py`` files under the given files/directories, sorted."""
    out: Set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py")
                       if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(out)


def lint_paths(paths: Iterable[Path | str],
               rules: Optional[Sequence[str]] = None,
               relative_to: Optional[Path] = None) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; sorted findings."""
    findings: List[Finding] = []
    for path in iter_py_files(paths):
        findings.extend(lint_file(path, rules=rules,
                                  relative_to=relative_to))
    return sorted(findings)


# --------------------------------------------------------------- baseline
@dataclass(frozen=True)
class BaselineEntry:
    """One accepted legacy finding, with its written-down excuse."""

    path: str
    code: str
    line: int
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.path, self.code, self.line)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"path": self.path, "code": self.code,
                                  "line": self.line}
        if self.justification:
            out["justification"] = self.justification
        return out


@dataclass
class Baseline:
    """The committed ledger of known findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(entries=[
            BaselineEntry(path=str(e["path"]), code=str(e["code"]),
                          line=int(e["line"]),
                          justification=str(e.get("justification", "")))
            for e in data.get("entries", [])])

    def save(self, path: Path | str) -> None:
        payload = {"version": 1,
                   "entries": [e.to_dict() for e in sorted(
                       self.entries, key=lambda e: e.key)]}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries=[
            BaselineEntry(path=f.path, code=f.code, line=f.line)
            for f in findings])

    def split(self, findings: Sequence[Finding],
              codes: Optional[Sequence[str]] = None
              ) -> Tuple[List[Finding], List[BaselineEntry]]:
        """Partition a scan against the baseline.

        Returns ``(new, stale)``: findings absent from the baseline,
        and baseline entries no fresh finding matched (so the ledger
        can never hold entries that silently stopped reproducing).

        The ledger is shared by the module-rule, flow and audit passes;
        ``codes`` names the rule codes *this* run executed, so entries
        for families that did not run are never reported stale.
        """
        known = {e.key for e in self.entries}
        seen = {f.baseline_key for f in findings}
        new = [f for f in findings if f.baseline_key not in known]
        ran = None if codes is None else set(codes)
        stale = [e for e in self.entries if e.key not in seen
                 and (ran is None or e.code in ran)]
        return new, stale


# ----------------------------------------------------------------- output
def format_text(findings: Sequence[Finding],
                stale: Sequence[BaselineEntry] = ()) -> str:
    lines = [f.render() for f in findings]
    for entry in stale:
        lines.append(f"{entry.path}:{entry.line}: {entry.code} "
                     "[stale baseline entry: no longer reproduced]")
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    summary = ", ".join(f"{code}={n}" for code, n in sorted(counts.items()))
    lines.append(f"{len(findings)} finding(s), {len(stale)} stale "
                 f"baseline entr(y/ies)" + (f" [{summary}]" if summary else ""))
    return "\n".join(lines)


def format_json(findings: Sequence[Finding],
                stale: Sequence[BaselineEntry] = ()) -> str:
    from repro.analysis.rules import RULES
    payload = {
        "version": 1,
        "rules": {code: rule.summary for code, rule in sorted(RULES.items())},
        "findings": [f.to_dict() for f in findings],
        "stale_baseline_entries": [e.to_dict() for e in stale],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# -------------------------------------------------------------------- CLI
def resolve_cli_path(path: str, must_exist: bool = True) -> str:
    """Resolve a relative CLI path against the repo root as a fallback.

    Running ``python -m repro lint --check`` from a subdirectory must
    behave exactly as from the root: a relative path (scan target or
    baseline file) that does not exist under the cwd but does exist
    under the nearest repo root resolves there.
    """
    from repro.analysis.project import repo_root_of

    candidate = Path(path)
    if candidate.is_absolute() or candidate.exists():
        return path
    root = repo_root_of(Path.cwd())
    if root is not None:
        rooted = root / candidate
        if rooted.exists() or not must_exist:
            return str(rooted)
    return path


def lint_command(paths: Sequence[str], output: str = "text",
                 check: bool = False, baseline_path: str = "simlint-baseline.json",
                 update_baseline: bool = False,
                 list_rules: bool = False,
                 flow: bool = False,
                 graph_cache: Optional[str] = None) -> int:
    """Drive one lint run; returns the process exit code.

    Without ``--check`` the scan is report-only (exit 0).  With
    ``--check``, exit 1 when the scan disagrees with the baseline in
    either direction (new findings, or stale entries).  ``flow`` adds
    the cross-module SIM10x taint pass (``graph_cache`` reuses the
    import-graph build across CI steps); the baseline ledger is shared,
    with staleness judged only against the rule families that ran.
    """
    from repro.analysis.rules import RULES

    if list_rules:
        width = max(len(code) for code in RULES)
        for code, rule in sorted(RULES.items()):
            print(f"{code.ljust(width)}  {rule.summary}")
        return 0

    paths = [resolve_cli_path(p) for p in paths]
    baseline_path = resolve_cli_path(baseline_path, must_exist=False)
    findings = lint_paths(paths)
    codes_run = module_rule_codes()
    if flow:
        from repro.analysis.simflow import analyze_paths
        findings = sorted(findings + analyze_paths(
            paths, cache_path=graph_cache))
        codes_run += flow_rule_codes()
    if update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} entr(y/ies) to {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, stale = baseline.split(findings, codes=codes_run)
    shown = new if check else findings
    if output == "json":
        print(format_json(shown, stale if check else ()))
    else:
        print(format_text(shown, stale if check else ()))
    if check and (new or stale):
        return 1
    return 0
