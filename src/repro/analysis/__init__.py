"""Static and runtime correctness tooling for the reproduction.

Two complementary layers make reproducibility a *checked* property
instead of a reviewed one:

* :mod:`repro.analysis.simlint` — an AST-based determinism linter with
  a rule registry (:data:`repro.analysis.rules.RULES`, codes
  ``SIM001``-``SIM006``), inline suppressions and a committed
  baseline.  Run it with ``python -m repro lint [--check]``.
* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, composable
  runtime invariant checkers over the scheduler, bandwidth pipes,
  YARN and HDFS, switched on with ``REPRO_SANITIZE=1`` or
  ``Session(sanitize=True)`` and reported through
  :mod:`repro.telemetry`.
"""

from repro.analysis.rules import RULES, Rule
from repro.analysis.sanitizer import (
    InvariantViolation,
    SimSanitizer,
    sanitize_enabled,
)
from repro.analysis.simlint import (
    Baseline,
    BaselineEntry,
    Finding,
    format_json,
    format_text,
    lint_command,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "InvariantViolation",
    "RULES",
    "Rule",
    "SimSanitizer",
    "format_json",
    "format_text",
    "lint_command",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
]
