"""Static and runtime correctness tooling for the reproduction.

Three complementary layers make reproducibility a *checked* property
instead of a reviewed one:

* :mod:`repro.analysis.simlint` — an AST-based determinism linter with
  a rule registry (:data:`repro.analysis.rules.RULES`, codes
  ``SIM001``-``SIM006``), inline suppressions and a committed
  baseline.  Run it with ``python -m repro lint [--check]``.
* :mod:`repro.analysis.simflow` / :mod:`repro.analysis.snapshot` —
  project-wide, import-graph-aware passes over the
  :class:`~repro.analysis.project.Project` model: cross-module
  determinism *taint* tracking (``SIM10x``, ``python -m repro lint
  --flow``) and the snapshot-safety *audit* of everything reachable
  from ``Session``/``Environment``/``PilotService`` (``SIM11x``,
  ``python -m repro audit-state``, committed ``state-manifest.json``).
  Both share simlint's suppression and baseline machinery.
* :mod:`repro.analysis.sanitizer` — :class:`SimSanitizer`, composable
  runtime invariant checkers over the scheduler, bandwidth pipes,
  YARN and HDFS, switched on with ``REPRO_SANITIZE=1`` or
  ``Session(sanitize=True)`` and reported through
  :mod:`repro.telemetry`.
"""

from repro.analysis.project import AnalysisCache, Project
from repro.analysis.rules import RULES, Rule
from repro.analysis.sanitizer import (
    InvariantViolation,
    SimSanitizer,
    sanitize_enabled,
)
from repro.analysis.simflow import analyze_paths, analyze_project
from repro.analysis.simlint import (
    Baseline,
    BaselineEntry,
    Finding,
    format_json,
    format_text,
    lint_command,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.snapshot import (
    ManifestEntry,
    audit_command,
    audit_paths,
)

__all__ = [
    "AnalysisCache",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "InvariantViolation",
    "ManifestEntry",
    "Project",
    "RULES",
    "Rule",
    "SimSanitizer",
    "analyze_paths",
    "analyze_project",
    "audit_command",
    "audit_paths",
    "format_json",
    "format_text",
    "lint_command",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
]
