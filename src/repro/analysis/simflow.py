"""simflow: cross-module, flow-sensitive determinism taint analysis.

simlint's SIM001-006 flag nondeterminism *at the expression that
produces it*.  That is the wrong place for two reasons: a wall-clock
read that never leaves host-side reporting is harmless (and gets an
inline suppression), while a wall-clock value that quietly crosses a
function or module boundary and lands in a digest, an event-schedule
delay or a canonical aggregate breaks byte-identical figures — and no
single-module rule can see it travel.  simflow closes that gap with a
classic taint analysis over the :class:`~repro.analysis.project.Project`
model:

**Sources** (taint enters):
  wall-clock reads (``time.time``/``datetime.now`` family), global-RNG
  draws (``random.*``, ``numpy.random`` module state), salted builtin
  ``hash()``, process-environment reads (``os.environ``, ``os.getenv``,
  ``os.urandom``, ``os.getpid``, ``uuid.uuid4``), and unordered
  ``set`` contents materialized into a sequence (``list(s)``,
  ``iter(s)``, ``s.pop()``).

**Propagation**: assignments (including tuple unpacking, ``self``
attributes and module globals), arithmetic/containers/f-strings,
returns, and calls — project-internal callees get *summaries*
(concrete tags returned, parameter passthrough, parameters that reach
sinks) computed to a fixed point, so taint follows values across
modules; ``sorted``/``sum``/``len``-style order-insensitive consumers
launder the ``unordered`` tag.

**Sinks** (a finding fires only here — that is what makes the family
high-signal):
  ======  =========================================================
  SIM101  event-schedule inputs: ``env.timeout(delay)``,
          ``_schedule(...)``, ``yield <tainted>``
  SIM102  digest inputs: ``stable_hash``/``hashlib`` constructors,
          ``<digest>.update``
  SIM103  serialized aggregate rows: ``json.dumps`` payloads
  SIM104  telemetry: metric labels and ``observe``/``inc``/``set``
          samples
  ======  =========================================================

Findings anchor at the sink's call site; the message names the taint
kind and its source location (possibly in another module).  Inline
``# simlint: disable=SIM10x`` suppressions and the committed baseline
apply exactly as for the syntactic rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.project import (
    AnalysisCache,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.rules import dotted_name
from repro.analysis.simlint import Finding, suppressions

# ------------------------------------------------------------------ sources
#: Wall-clock call names (mirrors SIM001, minus sleep: sleeping is not
#: a *value* that can flow anywhere).
WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
}
WALL_CLOCK_SUFFIXES = {("datetime", "now"), ("datetime", "utcnow"),
                       ("datetime", "today"), ("date", "today")}

#: random-module functions whose results carry global-RNG taint.
RNG_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "getrandbits", "randbytes", "gauss", "normalvariate",
    "expovariate", "betavariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate",
}

#: process-environment reads.
ENV_CALLS = {"os.getenv", "os.urandom", "os.getpid", "os.getppid",
             "uuid.uuid4", "uuid.uuid1", "socket.gethostname",
             "platform.node"}

#: Digest-construction callables (sink *and* producer of digest-kind
#: objects for ``.update`` tracking).
DIGEST_FUNCS = {"stable_hash", "sha256", "sha1", "sha384", "sha512",
                "md5", "blake2b", "blake2s", "crc32"}

#: Order-insensitive consumers: drop the ``unordered`` tag, keep others.
ORDER_LAUNDER = {"sorted", "sum", "len", "min", "max", "any", "all",
                 "frozenset", "set"}

#: Identity-ish builtins: result carries the argument's taint.
PASSTHROUGH_BUILTINS = {"int", "float", "str", "repr", "abs", "round",
                        "bool", "bytes", "format"}

#: Sequence builders that materialize unordered contents into order.
MATERIALIZERS = {"list", "tuple", "iter", "next", "enumerate"}

#: kind -> human description used in messages.
KIND_TEXT = {
    "wall-clock": "wall-clock value",
    "global-rng": "global-RNG value",
    "salted-hash": "salted hash() value",
    "process-env": "process-environment value",
    "unordered": "unordered-set ordering",
}

#: Taint tag keys are either a concrete kind (str) or ``("param", i)``.
Tag = object
Taint = Dict[Tag, str]


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    #: concrete tags (kind -> origin) every call returns.
    returns: Taint = field(default_factory=dict)
    #: parameter indices whose taint flows to the return value.
    passthrough: Set[int] = field(default_factory=set)
    #: (param index, rule code) -> sink description reached.
    sink_params: Dict[Tuple[int, str], str] = field(default_factory=dict)

    def signature(self) -> Tuple:
        return (tuple(sorted(self.returns)),
                tuple(sorted(self.passthrough)),
                tuple(sorted(self.sink_params)))


class FlowAnalysis:
    """One whole-project taint run (fixpoint + reporting pass)."""

    MAX_PASSES = 12

    def __init__(self, project: Project):
        self.project = project
        self.summaries: Dict[str, Summary] = {}
        #: class qualname -> attr -> concrete taint.
        self.class_attrs: Dict[str, Dict[str, Taint]] = {}
        #: module name -> module-level name -> concrete taint.
        self.module_globals: Dict[str, Dict[str, Taint]] = {}
        self.findings: List[Finding] = []
        self._seen: Set[Tuple] = set()
        self._collect = False

    # ------------------------------------------------------------- driving
    def run(self) -> List[Finding]:
        for _ in range(self.MAX_PASSES):
            before = self._state_signature()
            self._pass()
            if self._state_signature() == before:
                break
        self._collect = True
        self._pass()
        out: List[Finding] = []
        for finding in sorted(set(self.findings)):
            module = self._module_for(finding.path)
            if module is not None:
                codes = suppressions(module.source).get(finding.line, False)
                if codes is None or (codes and finding.code in codes):
                    continue
            out.append(finding)
        return out

    def _module_for(self, rel_path: str) -> Optional[ModuleInfo]:
        for module in self.project.modules.values():
            if module.rel_path == rel_path:
                return module
        return None

    def _state_signature(self) -> Tuple:
        return (
            tuple(sorted((q, s.signature())
                         for q, s in self.summaries.items())),
            tuple(sorted((c, a, tuple(sorted(t)))
                         for c, attrs in self.class_attrs.items()
                         for a, t in attrs.items())),
            tuple(sorted((m, n, tuple(sorted(t)))
                         for m, names in self.module_globals.items()
                         for n, t in names.items())),
        )

    def _pass(self) -> None:
        for name in sorted(self.project.modules):
            module = self.project.modules[name]
            # Module-level statements first: they seed module globals.
            mod_visitor = _FunctionFlow(self, module, None)
            mod_visitor.exec_body(module.tree.body)
            self.module_globals.setdefault(name, {}).update(
                {k: v for k, v in mod_visitor.locals.items() if v})
            for qual in sorted(module.functions):
                info = module.functions[qual]
                self._analyze_function(info)

    def _analyze_function(self, info: FunctionInfo) -> None:
        visitor = _FunctionFlow(self, info.module, info)
        visitor.exec_body(info.node.body)
        summary = self.summaries.setdefault(info.qualname, Summary())
        for tag, origin in visitor.returned.items():
            if isinstance(tag, tuple) and tag and tag[0] == "param":
                summary.passthrough.add(tag[1])
            else:
                summary.returns.setdefault(tag, origin)

    # ----------------------------------------------------------- reporting
    def report(self, module: ModuleInfo, node: ast.AST, code: str,
               kind: str, origin: str, sink: str) -> None:
        if not self._collect:
            return
        text = KIND_TEXT.get(kind, kind)
        message = (f"{text} (from {origin}) reaches {sink}; "
                   f"{_REMEDY[code]}")
        key = (module.rel_path, node.lineno, node.col_offset, code,
               message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            path=module.rel_path, line=node.lineno,
            col=node.col_offset, code=code, message=message))


_REMEDY = {
    "SIM101": "simulated schedules must derive from env.now and "
              "seeded streams",
    "SIM102": "digests must only hash seed-deterministic values",
    "SIM103": "aggregate rows must be seed-deterministic (keep host "
              "metadata out of digested payloads)",
    "SIM104": "metric labels/samples must be deterministic to keep "
              "telemetry replayable",
}


class _FunctionFlow:
    """Flow-sensitive walk of one function body (or module body)."""

    def __init__(self, analysis: FlowAnalysis, module: ModuleInfo,
                 info: Optional[FunctionInfo]):
        self.analysis = analysis
        self.project = analysis.project
        self.module = module
        self.info = info
        self.locals: Dict[str, Taint] = {}
        #: var -> semantic kind ("set" | "digest" | "metric")
        self.kinds: Dict[str, str] = {}
        self.returned: Taint = {}
        if info is not None:
            for i, name in enumerate(info.params):
                self.locals[name] = {("param", i): name}

    # ------------------------------------------------------------ helpers
    def _class_attr_taint(self) -> Taint:
        if self.info is None or self.info.class_name is None:
            return {}
        qual = f"{self.module.name}.{self.info.class_name}"
        return self.analysis.class_attrs.setdefault(qual, {})

    def _origin(self, node: ast.AST, what: str) -> str:
        return f"{what} at {self.module.rel_path}:{node.lineno}"

    @staticmethod
    def _concrete(taint: Taint) -> Taint:
        return {t: o for t, o in taint.items() if isinstance(t, str)}

    @staticmethod
    def _merge(into: Taint, *others: Taint) -> Taint:
        for other in others:
            for tag, origin in other.items():
                into.setdefault(tag, origin)
        return into

    # ------------------------------------------------------- statements
    def exec_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            if value is None:
                return
            taint = self.eval(value)
            kind = self._value_kind(value)
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            else:
                targets = [stmt.target]
            for target in targets:
                self._assign(target, taint, kind,
                             aug=isinstance(stmt, ast.AugAssign))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._merge(self.returned, self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter)
            self._assign(stmt.target, taint, None)
            # Two passes over loop bodies propagate loop-carried taint.
            self.exec_body(stmt.body)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, None)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.locals.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test)
        # ClassDef/FunctionDef/Import/Global/Pass...: no value flow here.

    def _assign(self, target: ast.expr, taint: Taint,
                kind: Optional[str], aug: bool = False) -> None:
        if isinstance(target, ast.Name):
            if aug:
                taint = self._merge(dict(self.locals.get(target.id, {})),
                                    taint)
            self.locals[target.id] = dict(taint)
            if kind is not None:
                self.kinds[target.id] = kind
            elif not aug:
                self.kinds.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, taint, None, aug=aug)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint, None, aug=aug)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and base.id == "self":
                attrs = self._class_attr_taint()
                merged = self._merge(dict(attrs.get(target.attr, {})),
                                     self._concrete(taint))
                if merged:
                    attrs[target.attr] = merged
            elif isinstance(base, ast.Name):
                # Storing into an object taints the holding variable.
                self._merge(self.locals.setdefault(base.id, {}),
                            self._concrete(taint))
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name):
                self._merge(self.locals.setdefault(target.value.id, {}),
                            self._concrete(taint))

    # ------------------------------------------------------ value kinds
    def _value_kind(self, node: ast.expr) -> Optional[str]:
        """Semantic kind of a value: set / digest / metric handles."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                return None
            last = name.split(".")[-1]
            if last in ("set", "frozenset"):
                return "set"
            if last in DIGEST_FUNCS and last != "stable_hash" \
                    and last != "crc32":
                return "digest"
            if isinstance(node.func, ast.Attribute) and \
                    last in ("counter", "gauge", "histogram"):
                return "metric"
        if isinstance(node, ast.Name):
            return self.kinds.get(node.id)
        return None

    def _is_set_expr(self, node: ast.expr) -> bool:
        return self._value_kind(node) == "set"

    # ------------------------------------------------------- expressions
    def eval(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Name):
            taint = self.locals.get(node.id)
            if taint is not None:
                return dict(taint)
            own = self.analysis.module_globals.get(self.module.name, {})
            if node.id in own:
                return dict(own[node.id])
            target = self.module.imports.get(node.id)
            if target is not None and "." in target:
                mod, _, sym = target.rpartition(".")
                other = self.analysis.module_globals.get(mod, {})
                if sym in other:
                    return dict(other[sym])
            return {}
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id == "self":
                attrs = self._class_attr_taint()
                return dict(attrs.get(node.attr, {}))
            name = dotted_name(node)
            if name in ("os.environ",):
                return {"process-env": self._origin(node, "os.environ")}
            return self.eval(base)
        if isinstance(node, ast.Subscript):
            return self._merge(self.eval(node.value),
                               self.eval(node.slice))
        if isinstance(node, ast.BinOp):
            return self._merge(self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Taint = {}
            for value in node.values:
                self._merge(out, self.eval(value))
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comp in node.comparators:
                self._merge(out, self.eval(comp))
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self._merge(self.eval(node.body),
                               self.eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = {}
            for elt in node.elts:
                self._merge(out, self.eval(elt))
            return out
        if isinstance(node, ast.Dict):
            out = {}
            for key in node.keys:
                if key is not None:
                    self._merge(out, self.eval(key))
            for value in node.values:
                self._merge(out, self.eval(value))
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self._eval_comp(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node, [node.key, node.value])
        if isinstance(node, ast.JoinedStr):
            out = {}
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._merge(out, self.eval(value.value))
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self._assign(node.target, taint, self._value_kind(node.value))
            return dict(taint)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                taint = self.eval(value)
                # ``yield 1.0`` schedules a timeout: a tainted yielded
                # *value* (not an event from a checked call) is a
                # schedule sink.
                if not isinstance(value, ast.Call):
                    self._sink(node, taint, "SIM101",
                               "a yielded schedule delay")
            return {}
        if isinstance(node, ast.Lambda):
            return {}
        return {}

    def _eval_comp(self, node: ast.expr, elements: List[ast.expr]) -> Taint:
        out: Taint = {}
        for gen in node.generators:
            taint = self.eval(gen.iter)
            self._assign(gen.target, taint, None)
            for cond in gen.ifs:
                self.eval(cond)
        for element in elements:
            self._merge(out, self.eval(element))
        return out

    # -------------------------------------------------------------- calls
    def _eval_call(self, node: ast.Call) -> Taint:
        name = dotted_name(node.func)
        arg_taints = [self.eval(arg) for arg in node.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        receiver: Taint = {}
        receiver_kind = None
        if isinstance(node.func, ast.Attribute):
            receiver = self.eval(node.func.value)
            if isinstance(node.func.value, ast.Name):
                receiver_kind = self.kinds.get(node.func.value.id)

        source = self._source_taint(node, name)
        if source is not None:
            return source

        self._check_sinks(node, name, arg_taints, kw_taints,
                          receiver_kind)

        # Project-internal callee: use its summary.
        info = self._resolve_callee(node, name)
        if info is not None:
            return self._apply_summary(node, info, arg_taints, kw_taints)

        last = name.split(".")[-1] if name else ""
        merged: Taint = dict(receiver)
        for taint in arg_taints:
            self._merge(merged, taint)
        for taint in kw_taints.values():
            self._merge(merged, taint)
        if last in ORDER_LAUNDER:
            merged.pop("unordered", None)
            return merged
        if last in MATERIALIZERS:
            # Materializing unordered contents into a sequence is where
            # set ordering becomes data.
            if any(self._is_set_expr(arg) for arg in node.args):
                merged["unordered"] = self._origin(
                    node, f"{last}() over a set")
            return merged
        if last == "pop" and receiver_kind == "set":
            merged["unordered"] = self._origin(node, "set.pop()")
        return merged

    def _source_taint(self, node: ast.Call,
                      name: Optional[str]) -> Optional[Taint]:
        if name is None:
            return None
        parts = name.split(".")
        if name in WALL_CLOCK_CALLS or (
                len(parts) >= 2 and
                tuple(parts[-2:]) in WALL_CLOCK_SUFFIXES):
            return {"wall-clock": self._origin(node, f"{name}()")}
        if len(parts) == 2 and parts[0] == "random" and \
                parts[1] in RNG_FUNCS:
            return {"global-rng": self._origin(node, f"{name}()")}
        if len(parts) >= 3 and parts[-2] == "random" and \
                parts[0] in ("np", "numpy"):
            return {"global-rng": self._origin(node, f"{name}()")}
        if name == "hash":
            taint = {"salted-hash": self._origin(node, "hash()")}
            for arg in node.args:
                self._merge(taint, self.eval(arg))
            return taint
        if name in ENV_CALLS or name in ("os.environ.get",):
            return {"process-env": self._origin(node, f"{name}()")}
        return None

    def _check_sinks(self, node: ast.Call, name: Optional[str],
                     arg_taints: List[Taint],
                     kw_taints: Dict[Optional[str], Taint],
                     receiver_kind: Optional[str]) -> None:
        last = name.split(".")[-1] if name else ""
        is_attr = isinstance(node.func, ast.Attribute)

        def fire(code: str, sink: str, taints: Iterable[Taint]) -> None:
            for taint in taints:
                self._sink(node, taint, code, sink)

        if is_attr and last == "timeout" and arg_taints:
            fire("SIM101", "an event-schedule delay (timeout)",
                 arg_taints[:1])
        elif last == "_schedule":
            fire("SIM101", "the event-schedule queue (_schedule)",
                 list(arg_taints) + list(kw_taints.values()))
        elif last in DIGEST_FUNCS:
            fire("SIM102", f"a digest input ({last})",
                 list(arg_taints) + list(kw_taints.values()))
        elif is_attr and last == "update" and receiver_kind == "digest":
            fire("SIM102", "a digest input (update)", arg_taints)
        elif name == "json.dumps" or last == "canonical_json":
            fire("SIM103", "a serialized aggregate row (json.dumps)",
                 list(arg_taints) + list(kw_taints.values()))
        elif is_attr and last in ("counter", "gauge", "histogram"):
            labelled = [t for key, t in kw_taints.items()
                        if key not in ("bounds", "window_seconds",
                                       "sample_resolution")]
            fire("SIM104", f"a telemetry metric label ({last})",
                 list(arg_taints) + labelled)
        elif is_attr and last == "observe":
            fire("SIM104", "a telemetry histogram sample (observe)",
                 arg_taints[:1])
        elif is_attr and last in ("inc", "set") and \
                receiver_kind == "metric":
            fire("SIM104", f"a telemetry metric sample ({last})",
                 arg_taints[:1])

    def _sink(self, node: ast.AST, taint: Taint, code: str,
              sink: str) -> None:
        for tag, origin in sorted(self._concrete(taint).items()):
            self.analysis.report(self.module, node, code, tag, origin,
                                 sink)
        if self.info is not None:
            summary = self.analysis.summaries.setdefault(
                self.info.qualname, Summary())
            for tag in taint:
                if isinstance(tag, tuple) and tag and tag[0] == "param":
                    summary.sink_params.setdefault((tag[1], code), sink)

    def _resolve_callee(self, node: ast.Call,
                        name: Optional[str]) -> Optional[FunctionInfo]:
        if name is None:
            return None
        if name.startswith("self.") and self.info is not None and \
                self.info.class_name is not None:
            cls = self.module.classes.get(self.info.class_name)
            if cls is not None:
                return self.project.method(cls, name[len("self."):])
            return None
        return self.project.resolve_function(self.module, name)

    def _apply_summary(self, node: ast.Call, info: FunctionInfo,
                       arg_taints: List[Taint],
                       kw_taints: Dict[Optional[str], Taint]) -> Taint:
        summary = self.analysis.summaries.setdefault(
            info.qualname, Summary())
        params = info.params

        def taint_of_param(i: int) -> Taint:
            if i < len(arg_taints):
                return arg_taints[i]
            if i < len(params) and params[i] in kw_taints:
                return kw_taints[params[i]]
            return {}

        # Tainted arguments feeding a parameter that reaches a sink
        # inside the callee: report at this call site (this is the
        # cross-module case SIM001-006 cannot see).
        own = self.analysis.summaries.setdefault(
            self.info.qualname, Summary()) if self.info else None
        short = info.qualname.rsplit(".", 1)[-1]
        for (i, code), sink in sorted(summary.sink_params.items()):
            taint = taint_of_param(i)
            for tag, origin in sorted(self._concrete(taint).items()):
                self.analysis.report(
                    self.module, node, code, tag, origin,
                    f"{sink} via {short}()")
            if own is not None:
                for tag in taint:
                    if isinstance(tag, tuple) and tag[0] == "param":
                        own.sink_params.setdefault(
                            (tag[1], code), f"{sink} via {short}()")

        result: Taint = dict(summary.returns)
        for i in summary.passthrough:
            self._merge(result, taint_of_param(i))
        return result


# ---------------------------------------------------------------- frontend
def analyze_project(project: Project) -> List[Finding]:
    """Run the flow analysis over a built project; sorted findings."""
    return FlowAnalysis(project).run()


def analyze_paths(paths: Iterable[Path | str],
                  cache_path: Optional[Path | str] = None
                  ) -> List[Finding]:
    """Flow-analyze every module under ``paths``.

    ``cache_path`` names an :class:`~repro.analysis.project.AnalysisCache`
    file: when the tree's content digest matches the cached one, the
    stored findings are returned without re-running the analysis.
    """
    project = Project.load(paths)
    digest = project.content_digest()
    cache = AnalysisCache(cache_path) if cache_path else None
    if cache is not None:
        payload = cache.get("flow", digest)
        if payload is not None:
            return sorted(Finding.from_dict(f) for f in payload)
    findings = analyze_project(project)
    if cache is not None:
        cache.put("flow", digest, [f.to_dict() for f in findings])
    return findings
