"""Project model: the import-graph-aware substrate for simflow.

simlint's SIM001-006 rules see one module at a time, so a wall-clock
value that crosses a function or module boundary before reaching a
digest is invisible to them.  The flow rules (SIM10x) and the
snapshot-safety audit (SIM11x) need the *whole* project: which modules
exist, what every local name resolves to, and where each function and
class is defined.  This module builds that model once:

* :class:`ModuleInfo` — one parsed module: AST, import table (local
  name -> fully-dotted target), functions and classes by local
  qualname, inline-suppression map.
* :class:`Project` — the module set plus cross-module resolution
  (:meth:`Project.resolve_function`, :meth:`Project.resolve_class`)
  that follows ``import``/``from``-import chains and one level of
  re-export.
* :func:`repo_root_of` — marker-based repo-root detection
  (``pyproject.toml``/``.git``), so finding paths are repo-root-relative
  POSIX strings and the baseline ledger is cwd-independent.
* :class:`AnalysisCache` — a content-hash-keyed cache of analysis
  results, so CI steps that share a tree (``lint --flow`` then
  ``audit-state``) build the import graph once.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: Files that mark a repository root, checked in order while walking up.
ROOT_MARKERS = ("pyproject.toml", ".git")


def repo_root_of(path: Path) -> Optional[Path]:
    """The nearest ancestor of ``path`` holding a repo-root marker."""
    path = path.resolve()
    for candidate in (path, *path.parents):
        for marker in ROOT_MARKERS:
            if (candidate / marker).exists():
                return candidate
    return None


def display_base(path: Path) -> Optional[Path]:
    """The directory finding paths are shown relative to.

    Repo-root-relative when a marker is found (the committed-baseline
    contract: ``src/repro/...`` regardless of cwd); ``None`` — show the
    path as given — for markerless trees (scratch fixtures).
    """
    return repo_root_of(path)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str                 # "repro.core.session.Session.close"
    node: ast.AST                 # FunctionDef | AsyncFunctionDef
    module: "ModuleInfo"
    class_name: Optional[str] = None

    @property
    def is_generator(self) -> bool:
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    @property
    def params(self) -> List[str]:
        """Positional parameter names, ``self``/``cls`` stripped."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.class_name and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names


@dataclass
class ClassInfo:
    """One class definition in the project."""

    qualname: str
    node: ast.ClassDef
    module: "ModuleInfo"


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol tables."""

    name: str                     # dotted module name
    path: Path
    rel_path: str                 # display path, POSIX, root-relative
    source: str
    tree: ast.Module
    #: local name -> fully-dotted target ("repro.core.session",
    #: "repro.core.session.Session", "os", ...).  Includes imports made
    #: inside function bodies (lazy imports are idiomatic here).
    imports: Dict[str, str] = field(default_factory=dict)
    #: local qualname ("f", "Cls.m") -> FunctionInfo
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local class name -> ClassInfo
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    def index(self) -> None:
        """Build the import/function/class tables from the AST."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}"
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = FunctionInfo(
                    qualname=f"{self.name}.{stmt.name}", node=stmt,
                    module=self)
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = ClassInfo(
                    qualname=f"{self.name}.{stmt.name}", node=stmt,
                    module=self)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        key = f"{stmt.name}.{sub.name}"
                        self.functions[key] = FunctionInfo(
                            qualname=f"{self.name}.{key}", node=sub,
                            module=self, class_name=stmt.name)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Dotted base module of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module
        parts = self.name.split(".")
        # ``from . import x`` in package module a.b.c: level 1 -> a.b
        if node.level > len(parts):
            return None
        base_parts = parts[:len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts) if base_parts else None


class Project:
    """The parsed module set plus cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: rel_path -> sha256 of the source, for the analysis cache.
        self.file_hashes: Dict[str, str] = {}

    # --------------------------------------------------------------- load
    @classmethod
    def load(cls, paths: Iterable[Path | str]) -> "Project":
        """Parse every ``.py`` file under ``paths`` into one project.

        Dotted module names are derived per scanned path: a directory
        ``src/repro`` yields ``repro.*`` modules, a bare directory of
        modules yields ``<dirname>.*``.
        """
        project = cls()
        for top in paths:
            top = Path(top)
            if top.is_dir():
                files = sorted(p for p in top.rglob("*.py")
                               if "__pycache__" not in p.parts)
                pkg_parent = top.resolve().parent
            elif top.suffix == ".py":
                files = [top]
                pkg_parent = top.resolve().parent
            else:
                raise FileNotFoundError(
                    f"not a python file or directory: {top}")
            base = display_base(top)
            for path in files:
                resolved = path.resolve()
                parts = resolved.relative_to(pkg_parent).with_suffix("")
                name = ".".join(parts.parts)
                if name.endswith(".__init__"):
                    name = name[:-len(".__init__")]
                try:
                    rel = resolved.relative_to(
                        base if base is not None else pkg_parent
                    ).as_posix()
                except ValueError:
                    rel = path.as_posix()
                project._add(name, path, rel)
        return project

    def _add(self, name: str, path: Path, rel_path: str) -> None:
        source = path.read_text()
        module = ModuleInfo(name=name, path=path, rel_path=rel_path,
                            source=source,
                            tree=ast.parse(source, filename=rel_path))
        module.index()
        self.modules[name] = module
        self.file_hashes[rel_path] = hashlib.sha256(
            source.encode()).hexdigest()

    def content_digest(self) -> str:
        """One hash over every module's content, for cache keys."""
        payload = json.dumps(sorted(self.file_hashes.items()))
        return hashlib.sha256(payload.encode()).hexdigest()

    # ---------------------------------------------------------- resolution
    def _resolve_dotted(self, module: ModuleInfo, dotted: str,
                        depth: int = 0) -> Optional[str]:
        """Fully-qualified project target for ``dotted`` used in
        ``module``, following the import table; ``None`` if the name
        does not resolve inside the project."""
        if depth > 8:
            return None
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            # A module-local definition referenced by bare name.
            if head in module.functions or head in module.classes:
                return f"{module.name}.{dotted}"
            return None
        return f"{target}.{rest}" if rest else target

    def _lookup(self, qualified: str, kind: str, depth: int = 0):
        """Find a function/class by fully-dotted name, following one
        level of re-export per recursion step."""
        if depth > 8:
            return None
        # Longest module prefix wins: "repro.core.session.Session.close"
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            module = self.modules.get(mod_name)
            if module is None:
                continue
            local = ".".join(parts[cut:])
            table = module.functions if kind == "function" \
                else module.classes
            if local in table:
                return table[local]
            # Re-export: ``from repro.x import f`` in a package
            # __init__ makes "repro.f" mean "repro.x.f".
            head = parts[cut]
            target = module.imports.get(head)
            if target is not None:
                rest = ".".join(parts[cut + 1:])
                full = f"{target}.{rest}" if rest else target
                found = self._lookup(full, kind, depth + 1)
                if found is not None:
                    return found
        return None

    def resolve_function(self, module: ModuleInfo,
                         dotted: str) -> Optional[FunctionInfo]:
        """The project function a dotted call name refers to."""
        if dotted in module.functions:
            return module.functions[dotted]
        qualified = self._resolve_dotted(module, dotted)
        if qualified is None:
            return None
        found = self._lookup(qualified, "function")
        return found if isinstance(found, FunctionInfo) else None

    def resolve_class(self, module: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        """The project class a dotted name refers to."""
        if dotted in module.classes:
            return module.classes[dotted]
        qualified = self._resolve_dotted(module, dotted)
        if qualified is None:
            return None
        found = self._lookup(qualified, "class")
        return found if isinstance(found, ClassInfo) else None

    def find_class(self, qualname: str) -> Optional[ClassInfo]:
        """A class by its fully-qualified dotted name."""
        found = self._lookup(qualname, "class")
        return found if isinstance(found, ClassInfo) else None

    def method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """A method on ``cls`` (same-module base classes included)."""
        seen = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            info = current.module.functions.get(
                f"{current.node.name}.{name}")
            if info is not None:
                return info
            for base in current.node.bases:
                from repro.analysis.rules import dotted_name
                base_name = dotted_name(base)
                if base_name is None:
                    continue
                base_cls = self.resolve_class(current.module, base_name)
                if base_cls is not None:
                    stack.append(base_cls)
        return None


# -------------------------------------------------------------------- cache
class AnalysisCache:
    """Content-hash-keyed store for analysis results.

    One JSON file holds independently-cached sections (``flow``,
    ``manifest``) keyed by a digest over every scanned file, so the
    ``lint --flow`` CI step and the ``audit-state`` step that follows
    it share one import-graph build: the second step sees matching
    hashes and reuses the stored result without re-walking the tree.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._data: Dict[str, object] = {}
        if self.path.exists():
            try:
                self._data = json.loads(self.path.read_text())
            except (ValueError, OSError):
                self._data = {}

    def get(self, section: str, digest: str):
        entry = self._data.get(section)
        if isinstance(entry, dict) and entry.get("digest") == digest:
            return entry.get("payload")
        return None

    def put(self, section: str, digest: str, payload) -> None:
        self._data[section] = {"digest": digest, "payload": payload}
        self.path.write_text(json.dumps(self._data, indent=2,
                                        sort_keys=True) + "\n")


def load_project(paths: Iterable[Path | str]) -> Tuple[Project, str]:
    """Build the project and its content digest in one call."""
    project = Project.load(paths)
    return project, project.content_digest()
