"""SimSanitizer: runtime invariant checking for the simulation stack.

simlint (:mod:`repro.analysis.simlint`) checks determinism hazards *by
construction*; this module checks the stack's accounting invariants
*in motion*.  It generalizes what used to be scattered opt-in
``debug=True`` branches (the continuous scheduler's counter
cross-check, the bandwidth pipe's dual-accounting ledger) into one
composable mechanism:

* each invariant is a checker method on :class:`SimSanitizer`
  (scheduler core-accounting, pipe byte conservation, YARN
  container/app-state tallies, HDFS block-replica consistency,
  monotone event-clock, no-leaked-processes at drain);
* instrumented components run their checker whenever
  ``env.sanitizer`` is installed — one attribute load and a branch
  when it is not, exactly like telemetry;
* one switch turns everything on: ``REPRO_SANITIZE=1`` in the
  environment (picked up by every :class:`~repro.sim.engine.Environment`
  at construction) or ``Session(sanitize=True)``;
* violations raise :class:`InvariantViolation` and, when telemetry is
  installed, are reported on the bus (``sanitizer``/``violation``) and
  counted (``sanitizer.violations``) before the raise.

The sanitizer only *reads* simulation state — installing it never
changes an experiment's results, which is asserted by the sweep
byte-identity tests.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional


class InvariantViolation(AssertionError):
    """A SimSanitizer invariant check failed."""


def sanitize_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``REPRO_SANITIZE`` asks for the sanitizer (truthy value)."""
    env = os.environ if environ is None else environ
    return env.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")


class SimSanitizer:
    """One environment's invariant-checking hub.

    Install with :meth:`install` (idempotent); components find it via
    ``env.sanitizer`` the same way they find ``env.telemetry``.
    """

    def __init__(self, env):
        self.env = env
        #: checker name -> number of times it ran clean.
        self.checks_run: Dict[str, int] = {}
        self.violations = 0
        #: every process spawned while installed, for drain checks.
        self._spawned: List[object] = []

    # ------------------------------------------------------- installation
    @classmethod
    def install(cls, env) -> "SimSanitizer":
        """Attach (or return the existing) sanitizer on ``env``.

        Wraps ``env._schedule`` (monotone/finite event-clock check) and
        ``env.process`` (leak tracking).  The wrappers stay in place
        after :meth:`uninstall` but become pass-throughs, mirroring how
        telemetry hooks behave when disabled.
        """
        existing = getattr(env, "sanitizer", None)
        if existing is not None:
            return existing
        sanitizer = cls(env)
        env.sanitizer = sanitizer
        if not getattr(env, "_sanitizer_wrapped", False):
            cls._wrap_environment(env)
            env._sanitizer_wrapped = True
        return sanitizer

    @staticmethod
    def uninstall(env) -> None:
        """Detach the sanitizer (checks become no-ops)."""
        env.sanitizer = None

    @staticmethod
    def _wrap_environment(env) -> None:
        schedule = env._schedule
        spawn = env.process

        def checked_schedule(event, priority, delay=0.0):
            sanitizer = env.sanitizer
            if sanitizer is not None:
                sanitizer.check_clock(delay)
            schedule(event, priority, delay)

        def tracked_process(generator, name=None):
            proc = spawn(generator, name=name)
            sanitizer = env.sanitizer
            if sanitizer is not None:
                sanitizer._spawned.append(proc)
            return proc

        env._schedule = checked_schedule
        env.process = tracked_process

    # ---------------------------------------------------------- reporting
    def _passed(self, checker: str) -> None:
        self.checks_run[checker] = self.checks_run.get(checker, 0) + 1

    def fail(self, checker: str, message: str) -> None:
        """Record and raise one violation (telemetry first, then raise)."""
        self.violations += 1
        tel = getattr(self.env, "telemetry", None)
        if tel is not None:
            tel.counter("sanitizer.violations", checker=checker).inc()
            tel.emit("sanitizer", "violation", checker=checker,
                     detail=message)
        raise InvariantViolation(f"[{checker}] {message}")

    def report(self) -> Dict[str, object]:
        """Counts of checks run and violations raised so far."""
        return {"checks_run": dict(self.checks_run),
                "violations": self.violations}

    # ----------------------------------------------------------- checkers
    def check_clock(self, delay: float) -> None:
        """Monotone event-clock: every event lands at a finite time
        at or after ``now`` (negative/NaN/inf delays stall or reverse
        the virtual clock)."""
        if not (delay >= 0.0) or math.isinf(delay):
            self.fail("clock",
                      f"event scheduled with delay {delay!r} at "
                      f"t={self.env.now}; delays must be finite and "
                      ">= 0")
        self._passed("clock")

    def check_scheduler(self, scheduler) -> None:
        """Continuous-scheduler core accounting: the incremental
        free/total/queue-depth counters match a fresh re-summation."""
        free_map_total = sum(scheduler._free.values())
        if scheduler._free_cores != free_map_total:
            self.fail("scheduler",
                      f"free-core counter {scheduler._free_cores} != "
                      f"per-node map total {free_map_total}")
        node_total = sum(n.num_cores for n in scheduler.nodes)
        if scheduler._total_cores != node_total:
            self.fail("scheduler",
                      f"total_cores cache {scheduler._total_cores} "
                      f"diverged from the node set ({node_total})")
        if not 0 <= scheduler._free_cores <= scheduler._total_cores:
            self.fail("scheduler",
                      f"free cores {scheduler._free_cores} outside "
                      f"[0, {scheduler._total_cores}]")
        waiting = sum(1 for _, e in scheduler._queue if not e.triggered)
        if scheduler._waiting != waiting:
            self.fail("scheduler",
                      f"queue-depth counter {scheduler._waiting} != "
                      f"queue scan {waiting}")
        self._passed("scheduler")

    def check_yarn_agent_scheduler(self, scheduler) -> None:
        """YARN agent scheduler: in-flight reservations stay
        non-negative and the queue-depth counter matches the queue."""
        if scheduler._reserved_mb < 0 or scheduler._reserved_cores < 0:
            self.fail("yarn-agent-scheduler",
                      f"negative reservation ({scheduler._reserved_mb} "
                      f"MB, {scheduler._reserved_cores} vcores): "
                      "release() returned more than allocate() took")
        waiting = sum(1 for *_, e in scheduler._queue if not e.triggered)
        if scheduler._waiting != waiting:
            self.fail("yarn-agent-scheduler",
                      f"queue-depth counter {scheduler._waiting} != "
                      f"queue scan {waiting}")
        self._passed("yarn-agent-scheduler")

    def check_pipe(self, pipe) -> None:
        """Bandwidth-pipe byte conservation: the O(log n) virtual-clock
        credits agree with the shadow full-scan ledger, transfer for
        transfer."""
        if len(pipe._shadow) != len(pipe._heap):
            self.fail("pipe",
                      f"pipe {pipe.name!r}: shadow ledger holds "
                      f"{len(pipe._shadow)} transfers, heap "
                      f"{len(pipe._heap)}")
        for credit, tid, _ in pipe._heap:
            fast = credit - pipe._virtual
            slow = pipe._shadow.get(tid)
            if slow is None:
                self.fail("pipe",
                          f"pipe {pipe.name!r}: transfer {tid} missing "
                          "from the shadow ledger")
            if abs(fast - slow) > 1e-6 * max(1.0, abs(credit)):
                self.fail("pipe",
                          f"pipe {pipe.name!r}: transfer {tid} credit "
                          f"remainder {fast} diverged from full-scan "
                          f"ledger {slow}")
        self._passed("pipe")

    def check_resource_manager(self, rm) -> None:
        """YARN RM state tallies: incremental running/pending counters,
        the active-app index, per-app usage vs live containers, and
        per-NM used capacity vs its container set."""
        running = pending = 0
        for app in rm.apps.values():
            state = app.state.name
            if state == "RUNNING":
                running += 1
            elif state in ("SUBMITTED", "ACCEPTED"):
                pending += 1
        if rm._apps_running != running or rm._apps_pending != pending:
            self.fail("yarn-rm",
                      f"app-state tallies (running={rm._apps_running}, "
                      f"pending={rm._apps_pending}) != scan "
                      f"(running={running}, pending={pending})")
        active = {app_id for app_id, app in rm.apps.items()
                  if not app.state.is_final}
        if set(rm._active_apps) != active:
            self.fail("yarn-rm",
                      f"active-app index {sorted(rm._active_apps)} != "
                      f"non-final scan {sorted(active)}")
        for app in rm.apps.values():
            mem = sum(c.resource.memory_mb
                      for c in app.live_containers.values())
            vcores = sum(c.resource.vcores
                         for c in app.live_containers.values())
            if app.usage.memory_mb != mem or app.usage.vcores != vcores:
                self.fail("yarn-rm",
                          f"{app.app_id} usage ({app.usage.memory_mb} MB, "
                          f"{app.usage.vcores} vcores) != live containers "
                          f"({mem} MB, {vcores} vcores)")
        for nm in rm.node_managers.values():
            mem = sum(c.resource.memory_mb for c in nm.containers.values())
            vcores = sum(c.resource.vcores for c in nm.containers.values())
            if nm.used.memory_mb != mem or nm.used.vcores != vcores:
                self.fail("yarn-rm",
                          f"NM {nm.name} used ({nm.used.memory_mb} MB, "
                          f"{nm.used.vcores} vcores) != container set "
                          f"({mem} MB, {vcores} vcores)")
            if (nm.used.memory_mb > nm.capacity.memory_mb
                    or nm.used.vcores > nm.capacity.vcores):
                self.fail("yarn-rm",
                          f"NM {nm.name} over-allocated: used "
                          f"{nm.used.memory_mb} MB/{nm.used.vcores} vc "
                          f"of {nm.capacity.memory_mb} MB/"
                          f"{nm.capacity.vcores} vc")
        # The RM's O(1) live-capacity aggregates vs a full NM rescan:
        # every alive-flip and reserve/release must have been folded in.
        live = {name for name, nm in rm.node_managers.items() if nm.alive}
        if rm._counted != live:
            self.fail("yarn-rm",
                      f"live-NM index {sorted(rm._counted)} != alive scan "
                      f"{sorted(live)}")
        total_mb = sum(rm.node_managers[n].capacity.memory_mb for n in live)
        total_vc = sum(rm.node_managers[n].capacity.vcores for n in live)
        used_mb = sum(rm.node_managers[n].used.memory_mb for n in live)
        used_vc = sum(rm.node_managers[n].used.vcores for n in live)
        if (rm._agg_total_mb, rm._agg_total_vc,
                rm._agg_used_mb, rm._agg_used_vc) != (
                total_mb, total_vc, used_mb, used_vc):
            self.fail("yarn-rm",
                      f"capacity aggregates (total {rm._agg_total_mb} MB/"
                      f"{rm._agg_total_vc} vc, used {rm._agg_used_mb} MB/"
                      f"{rm._agg_used_vc} vc) != live-NM scan (total "
                      f"{total_mb} MB/{total_vc} vc, used {used_mb} MB/"
                      f"{used_vc} vc)")
        self._passed("yarn-rm")

    def check_namenode(self, namenode) -> None:
        """HDFS block-replica consistency: every mapped replica names a
        registered DataNode exactly once, and live DataNodes actually
        hold the blocks mapped to them."""
        for block_id, node_names in namenode.block_map.items():
            if len(node_names) != len(set(node_names)):
                self.fail("hdfs",
                          f"block {block_id} lists duplicate replica "
                          f"nodes {node_names}")
            for name in node_names:
                dn = namenode.datanodes.get(name)
                if dn is None:
                    self.fail("hdfs",
                              f"block {block_id} mapped to unregistered "
                              f"DataNode {name!r}")
                if dn.alive and not dn.holds(block_id):
                    self.fail("hdfs",
                              f"block {block_id} mapped to live DataNode "
                              f"{name!r} which does not hold it")
        self._passed("hdfs")

    def assert_drained(self) -> None:
        """End-of-run check: the event queue is empty and no spawned
        process is still alive (a live process after drain is blocked
        on an event nobody will ever fire — a leak)."""
        if self.env._queue:
            self.fail("drain",
                      f"event queue still holds {len(self.env._queue)} "
                      f"event(s) at t={self.env.now}")
        leaked = [p for p in self._spawned if p.is_alive]
        if leaked:
            names = ", ".join(getattr(p, "name", "?") for p in leaked[:10])
            self.fail("drain",
                      f"{len(leaked)} process(es) still alive after "
                      f"drain: {names}")
        self._passed("drain")
