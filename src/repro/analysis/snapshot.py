"""Snapshot-safety audit: which state can a checkpoint serialize?

The roadmap's crash-safe persistent state (resumable sweeps with
byte-identical replay) needs a *contract*: exactly which attributes of
the live object graph are snapshotable, and which are runtime-only
hazards a checkpoint layer must reconstruct instead of serialize.
This module derives that contract statically.  Starting from the root
classes (:class:`~repro.core.session.Session`,
:class:`~repro.sim.engine.Environment`,
:class:`~repro.service.service.PilotService`), it walks every project
class reachable through attribute assignments and classifies each
attribute:

  ======  ==========================================================
  SIM111  open file handle stored as state (``open(...)``/.open())
  SIM112  generator/coroutine stored as state (live frames cannot be
          serialized; a checkpoint must replay, not pickle, them)
  SIM113  process/thread executor handle stored as state
  SIM114  lambda or bound method stored as state (unpicklable and
          identity-coupled to the live process)
  SIM115  module-global backref stored as state (snapshotting it
          forks shared state)
  ======  ==========================================================

Everything else is ``safe`` (constants and project-class composites,
which recurse) or ``opaque`` (unresolvable statically — reviewed, not
failed).  The result is a committed, sorted ``state-manifest.json``:
the checked contract the checkpoint layer serializes against.
``python -m repro audit-state --check`` fails when the tree drifts
from the committed manifest or a new hazard appears that is neither
suppressed inline nor in the shared baseline ledger.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.project import (
    AnalysisCache,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.rules import dotted_name
from repro.analysis.simlint import Finding, suppressions

#: The state roots of the stack: everything a checkpoint would walk.
DEFAULT_ROOTS = (
    "repro.core.session.Session",
    "repro.sim.engine.Environment",
    "repro.service.service.PilotService",
)

#: Executor/thread handle type names (last dotted segment).
EXECUTOR_NAMES = {"ProcessPoolExecutor", "ThreadPoolExecutor",
                  "Executor", "Thread", "Timer", "Pool", "ThreadPool"}

#: Annotation names that mean "live frame stored as state".
GENERATOR_ANNOTATIONS = {"Generator", "Iterator", "AsyncGenerator",
                         "Coroutine", "AsyncIterator"}

#: Mutable-container constructors for the module-global heuristic.
MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict",
                 "Counter", "OrderedDict", "bytearray"}

#: Generic-container annotation heads whose element types are
#: reachability edges (``list[tuple[float, Event]]`` reaches ``Event``).
CONTAINER_ANNOTATIONS = {
    "list", "List", "dict", "Dict", "set", "Set", "tuple", "Tuple",
    "frozenset", "FrozenSet", "deque", "Deque", "Sequence", "Mapping",
    "MutableMapping", "MutableSequence", "DefaultDict", "OrderedDict",
}

_HAZARD = "hazard"
_SAFE = "safe"
_OPAQUE = "opaque"


@dataclass
class Classified:
    """Outcome of classifying one assigned value."""

    classification: str                  # safe | hazard | opaque
    rule: Optional[str] = None           # SIM11x when hazard
    type: Optional[str] = None           # resolved type, if any
    detail: str = ""
    edges: List[ClassInfo] = field(default_factory=list)


@dataclass(frozen=True)
class ManifestEntry:
    """One attribute's classification in the committed contract."""

    class_name: str
    attr: str
    classification: str
    rule: Optional[str]
    type: Optional[str]
    path: str

    def to_dict(self) -> Dict[str, object]:
        return {"class": self.class_name, "attr": self.attr,
                "classification": self.classification,
                "rule": self.rule, "type": self.type, "path": self.path}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ManifestEntry":
        return cls(class_name=str(data["class"]), attr=str(data["attr"]),
                   classification=str(data["classification"]),
                   rule=data.get("rule"), type=data.get("type"),
                   path=str(data.get("path", "")))


class SnapshotAuditor:
    """Walk the reachable class graph and classify every attribute."""

    def __init__(self, project: Project,
                 roots: Sequence[str] = DEFAULT_ROOTS):
        self.project = project
        self.roots = tuple(roots)
        self.entries: List[ManifestEntry] = []
        self.findings: List[Finding] = []

    # ------------------------------------------------------------- driving
    def run(self) -> Tuple[List[ManifestEntry], List[Finding]]:
        queue: List[ClassInfo] = []
        seen: set = set()
        for root in self.roots:
            cls = self.project.find_class(root)
            if cls is not None:
                queue.append(cls)
        while queue:
            cls = queue.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            for edge in self._audit_class(cls):
                if edge.qualname not in seen:
                    queue.append(edge)
            # Base classes hold part of the instance state too.
            for base in cls.node.bases:
                base_name = dotted_name(base)
                if base_name is None:
                    continue
                base_cls = self.project.resolve_class(cls.module,
                                                      base_name)
                if base_cls is not None and \
                        base_cls.qualname not in seen:
                    queue.append(base_cls)
        self.entries.sort(key=lambda e: (e.class_name, e.attr))
        self.findings = self._filter_suppressed(sorted(self.findings))
        return self.entries, self.findings

    def _filter_suppressed(self, findings: List[Finding]) -> List[Finding]:
        by_path = {m.rel_path: m for m in self.project.modules.values()}
        out = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None:
                codes = suppressions(module.source).get(
                    finding.line, False)
                if codes is None or (codes and finding.code in codes):
                    continue
            out.append(finding)
        return out

    # -------------------------------------------------------------- class
    def _audit_class(self, cls: ClassInfo) -> List[ClassInfo]:
        module = cls.module
        #: attr -> list of (Classified, lineno, col)
        sites: Dict[str, List[Tuple[Classified, int, int]]] = {}

        def record(attr: str, classified: Classified,
                   node: ast.AST) -> None:
            sites.setdefault(attr, []).append(
                (classified, node.lineno, node.col_offset))

        # Class-level assignments (shared, but still instance-visible
        # state a snapshot would see).
        for stmt in cls.node.body:
            targets, value = _assign_parts(stmt)
            for target in targets:
                if isinstance(target, ast.Name) and value is not None:
                    record(target.id,
                           self._classify(module, value, None), stmt)
        # ``self.x = ...`` in every method.
        prefix = f"{cls.node.name}."
        for qual in sorted(module.functions):
            if not qual.startswith(prefix):
                continue
            func = module.functions[qual]
            for node in ast.walk(func.node):
                targets, value = _assign_parts(node)
                annotation = node.annotation \
                    if isinstance(node, ast.AnnAssign) else None
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    classified = self._classify(module, value, func) \
                        if value is not None else None
                    if annotation is not None:
                        ann = self._classify_annotation(module,
                                                        annotation)
                        classified = _merge_value_annotation(classified,
                                                             ann)
                    if classified is None:
                        continue
                    record(target.attr, classified, node)

        edges: List[ClassInfo] = []
        for attr in sorted(sites):
            entry, attr_edges, finding = self._combine(
                cls, attr, sites[attr])
            self.entries.append(entry)
            edges.extend(attr_edges)
            if finding is not None:
                self.findings.append(finding)
        return edges

    def _combine(self, cls: ClassInfo, attr: str,
                 classified: List[Tuple[Classified, int, int]]
                 ) -> Tuple[ManifestEntry, List[ClassInfo],
                            Optional[Finding]]:
        edges: List[ClassInfo] = []
        hazard: Optional[Tuple[Classified, int, int]] = None
        typed: Optional[Classified] = None
        any_opaque = False
        for item in classified:
            c = item[0]
            edges.extend(c.edges)
            if c.classification == _HAZARD and hazard is None:
                hazard = item
            elif c.classification == _OPAQUE:
                any_opaque = True
            if c.type is not None and typed is None:
                typed = c
        finding = None
        if hazard is not None:
            c, line, col = hazard
            finding = Finding(
                path=cls.module.rel_path, line=line, col=col,
                code=c.rule or "SIM111",
                message=(f"{cls.qualname}.{attr}: {c.detail} — "
                         "hazardous snapshot state; reconstruct it on "
                         "restore instead of serializing it"))
            entry = ManifestEntry(
                class_name=cls.qualname, attr=attr,
                classification=_HAZARD, rule=c.rule, type=c.type,
                path=cls.module.rel_path)
        elif typed is not None:
            entry = ManifestEntry(
                class_name=cls.qualname, attr=attr,
                classification=_SAFE, rule=None, type=typed.type,
                path=cls.module.rel_path)
        elif any_opaque:
            entry = ManifestEntry(
                class_name=cls.qualname, attr=attr,
                classification=_OPAQUE, rule=None, type=None,
                path=cls.module.rel_path)
        else:
            entry = ManifestEntry(
                class_name=cls.qualname, attr=attr,
                classification=_SAFE, rule=None, type=None,
                path=cls.module.rel_path)
        return entry, edges, finding

    # ------------------------------------------------------ classification
    def _classify(self, module: ModuleInfo, value: ast.expr,
                  func: Optional[FunctionInfo]) -> Classified:
        if isinstance(value, ast.Constant):
            return Classified(_SAFE, type=type(value.value).__name__)
        if isinstance(value, ast.Lambda):
            return Classified(_HAZARD, rule="SIM114", type="lambda",
                              detail="lambda stored as state")
        if isinstance(value, ast.GeneratorExp):
            return Classified(_HAZARD, rule="SIM112", type="generator",
                              detail="generator expression stored as "
                                     "state")
        if isinstance(value, ast.Call):
            return self._classify_call(module, value, func)
        if isinstance(value, ast.Name):
            return self._classify_name(module, value, func)
        if isinstance(value, ast.Attribute):
            return self._classify_attribute(module, value, func)
        if isinstance(value, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            elements: List[ast.expr] = []
            if isinstance(value, ast.Dict):
                elements = [v for v in value.values if v is not None]
            else:
                elements = list(value.elts)
            merged = Classified(_SAFE, type=type(value).__name__.lower())
            for element in elements:
                sub = self._classify(module, element, func)
                merged.edges.extend(sub.edges)
                if sub.classification == _HAZARD:
                    return Classified(
                        _HAZARD, rule=sub.rule, type=sub.type,
                        detail=f"{sub.detail} in a persisted container",
                        edges=merged.edges)
            return merged
        if isinstance(value, ast.BoolOp):
            merged = Classified(_OPAQUE)
            for operand in value.values:
                sub = self._classify(module, operand, func)
                merged.edges.extend(sub.edges)
                if sub.classification == _HAZARD:
                    return Classified(_HAZARD, rule=sub.rule,
                                      type=sub.type, detail=sub.detail,
                                      edges=merged.edges)
                if sub.type is not None and merged.type is None:
                    merged.classification = _SAFE
                    merged.type = sub.type
            return merged
        if isinstance(value, ast.IfExp):
            a = self._classify(module, value.body, func)
            b = self._classify(module, value.orelse, func)
            for sub in (a, b):
                if sub.classification == _HAZARD:
                    sub.edges.extend(a.edges + b.edges)
                    return sub
            a.edges.extend(b.edges)
            return a
        return Classified(_OPAQUE)

    def _classify_call(self, module: ModuleInfo, value: ast.Call,
                       func: Optional[FunctionInfo]) -> Classified:
        name = dotted_name(value.func)
        if name is None:
            return Classified(_OPAQUE)
        last = name.split(".")[-1]
        # Project classes first: ``Process(...)`` in repro.sim.engine is
        # our own class, not multiprocessing's.
        cls = self._resolve_type(module, name, func)
        if cls is not None:
            return Classified(_SAFE, type=cls.qualname, edges=[cls])
        callee = self._resolve_callable(module, name, func)
        if callee is not None:
            if callee.is_generator:
                return Classified(
                    _HAZARD, rule="SIM112", type="generator",
                    detail=f"live generator from {last}() stored as "
                           "state")
            return Classified(_OPAQUE)
        if last == "open" or name == "open":
            return Classified(_HAZARD, rule="SIM111", type="file",
                              detail="open file handle stored as state")
        if last in EXECUTOR_NAMES:
            return Classified(_HAZARD, rule="SIM113", type=last,
                              detail=f"{last} handle stored as state")
        if last in MUTABLE_CALLS or last in ("OrderedDict",):
            return Classified(_SAFE, type=last)
        return Classified(_OPAQUE)

    def _classify_name(self, module: ModuleInfo, value: ast.Name,
                       func: Optional[FunctionInfo]) -> Classified:
        # A parameter: classify through its annotation.
        if func is not None:
            annotation = _param_annotation(func.node, value.id)
            if annotation is not None:
                return self._classify_annotation(module, annotation)
        # A module-level global: mutable ones are SIM115 backrefs.
        site = _module_level_value(module, value.id)
        if site is not None:
            if _is_mutable_value(site):
                return Classified(
                    _HAZARD, rule="SIM115",
                    type=f"{module.name}.{value.id}",
                    detail=f"module-global {value.id!r} stored as a "
                           "backref")
            return Classified(_SAFE,
                              type=f"{module.name}.{value.id}")
        return Classified(_OPAQUE)

    def _classify_attribute(self, module: ModuleInfo,
                            value: ast.Attribute,
                            func: Optional[FunctionInfo]) -> Classified:
        # ``self.method`` stored as state = a bound method.
        if isinstance(value.value, ast.Name) and \
                value.value.id == "self" and func is not None and \
                func.class_name is not None:
            cls = module.classes.get(func.class_name)
            if cls is not None and \
                    self.project.method(cls, value.attr) is not None:
                return Classified(
                    _HAZARD, rule="SIM114", type="method",
                    detail=f"bound method self.{value.attr} stored as "
                           "state")
            return Classified(_OPAQUE)
        name = dotted_name(value)
        if name is not None:
            cls = self._resolve_type(module, name, func)
            if cls is not None:
                return Classified(_SAFE, type=cls.qualname, edges=[cls])
        return Classified(_OPAQUE)

    def _classify_annotation(self, module: ModuleInfo,
                             annotation: ast.expr) -> Classified:
        annotation = _unwrap_annotation(annotation)
        if annotation is None:
            return Classified(_OPAQUE)
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value)
            last = base.split(".")[-1] if base else ""
            if last in CONTAINER_ANNOTATIONS:
                # ``list[tuple[float, Event]]``: the container is safe,
                # but its element types are reachability edges too.
                slc = annotation.slice
                elems = list(slc.elts) if isinstance(slc, ast.Tuple) \
                    else [slc]
                merged = Classified(_SAFE, type=last.lower())
                for elem in elems:
                    sub = self._classify_annotation(module, elem)
                    merged.edges.extend(sub.edges)
                    if sub.classification == _HAZARD:
                        return Classified(
                            _HAZARD, rule=sub.rule, type=sub.type,
                            detail=f"{sub.detail} in a persisted "
                                   "container",
                            edges=merged.edges)
                return merged
            # ``Generator[...]``/``Callable[...]``: classify the base.
            annotation = annotation.value
        name = dotted_name(annotation)
        if name is None:
            return Classified(_OPAQUE)
        last = name.split(".")[-1]
        if last in GENERATOR_ANNOTATIONS:
            return Classified(
                _HAZARD, rule="SIM112", type=last,
                detail=f"live {last.lower()} stored as state")
        if last in EXECUTOR_NAMES:
            return Classified(_HAZARD, rule="SIM113", type=last,
                              detail=f"{last} handle stored as state")
        cls = self.project.resolve_class(module, name)
        if cls is not None:
            return Classified(_SAFE, type=cls.qualname, edges=[cls])
        return Classified(_OPAQUE)

    def _resolve_type(self, module: ModuleInfo, name: str,
                      func: Optional[FunctionInfo]) -> Optional[ClassInfo]:
        if name.startswith("self.") or name == "self":
            return None
        return self.project.resolve_class(module, name)

    def _resolve_callable(self, module: ModuleInfo, name: str,
                          func: Optional[FunctionInfo]
                          ) -> Optional[FunctionInfo]:
        if name.startswith("self.") and func is not None and \
                func.class_name is not None:
            cls = module.classes.get(func.class_name)
            if cls is not None:
                return self.project.method(cls, name[len("self."):])
            return None
        return self.project.resolve_function(module, name)


# ----------------------------------------------------------- AST helpers
def _merge_value_annotation(classified: Optional[Classified],
                            ann: Classified) -> Classified:
    """Combine a value classification with its annotation's.

    ``self.x: Optional[Process] = None`` classifies the *value* as a
    safe ``NoneType`` — the annotation carries the real type, its
    reachability edges and any hazard.
    """
    if classified is None:
        return ann
    if ann.classification == _HAZARD and \
            classified.classification != _HAZARD:
        ann.edges.extend(classified.edges)
        return ann
    classified.edges.extend(ann.edges)
    if classified.classification == _OPAQUE and \
            ann.classification == _SAFE:
        classified.classification = _SAFE
        classified.type = ann.type
    elif ann.type is not None and \
            classified.type in (None, "NoneType"):
        classified.type = ann.type
    return classified


def _assign_parts(node: ast.AST
                  ) -> Tuple[List[ast.expr], Optional[ast.expr]]:
    if isinstance(node, ast.Assign):
        return node.targets, node.value
    if isinstance(node, ast.AnnAssign):
        return [node.target], node.value
    return [], None


def _param_annotation(node: ast.AST, name: str) -> Optional[ast.expr]:
    args = node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == name:
            return arg.annotation
    return None


def _unwrap_annotation(node: ast.expr) -> Optional[ast.expr]:
    """Strip Optional[...]/Union[...]/"quoted" layers down to a name."""
    for _ in range(6):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            continue
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base and base.split(".")[-1] in ("Optional", "Union"):
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    node = inner.elts[0]
                else:
                    node = inner
                continue
            return node
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # ``X | None``: prefer the non-None side.
            left = node.left
            if isinstance(left, ast.Constant) and left.value is None:
                node = node.right
            else:
                node = left
            continue
        return node
    return node


def _module_level_value(module: ModuleInfo,
                        name: str) -> Optional[ast.expr]:
    for stmt in module.tree.body:
        targets, value = _assign_parts(stmt)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return value
    return None


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name is not None and \
            name.split(".")[-1] in MUTABLE_CALLS
    return False


# -------------------------------------------------------------- manifest
def manifest_payload(roots: Sequence[str],
                     entries: Sequence[ManifestEntry]) -> Dict[str, object]:
    return {"version": 1, "roots": sorted(roots),
            "entries": [e.to_dict() for e in entries]}


def load_manifest(path: Path | str) -> Optional[Dict[str, object]]:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def save_manifest(path: Path | str, payload: Dict[str, object]) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def audit_paths(paths: Iterable[Path | str],
                roots: Sequence[str] = DEFAULT_ROOTS,
                cache_path: Optional[Path | str] = None
                ) -> Tuple[List[ManifestEntry], List[Finding]]:
    """Audit every class reachable from ``roots`` under ``paths``.

    Shares the :class:`~repro.analysis.project.AnalysisCache` with the
    flow pass, so ``lint --flow`` followed by ``audit-state`` builds
    the project model once per tree state.
    """
    project = Project.load(paths)
    digest = project.content_digest() + ":" + ",".join(sorted(roots))
    cache = AnalysisCache(cache_path) if cache_path else None
    if cache is not None:
        payload = cache.get("manifest", digest)
        if payload is not None:
            return ([ManifestEntry.from_dict(e)
                     for e in payload["entries"]],
                    sorted(Finding.from_dict(f)
                           for f in payload["findings"]))
    entries, findings = SnapshotAuditor(project, roots).run()
    if cache is not None:
        cache.put("manifest", digest, {
            "entries": [e.to_dict() for e in entries],
            "findings": [f.to_dict() for f in findings]})
    return entries, findings


# -------------------------------------------------------------------- CLI
def audit_command(paths: Sequence[str],
                  roots: Optional[Sequence[str]] = None,
                  manifest_path: str = "state-manifest.json",
                  baseline_path: str = "simlint-baseline.json",
                  output: str = "text",
                  check: bool = False, update: bool = False,
                  graph_cache: Optional[str] = None) -> int:
    """Drive one snapshot-safety audit; returns the process exit code.

    ``--update-manifest`` rewrites the committed manifest from this
    run (the old ``--update`` spelling is a deprecated alias).  With
    ``--check``, exit 1 when (a) the derived manifest differs from the
    committed one — the serialization contract drifted — or (b) an
    unsuppressed hazard finding is not covered by the shared baseline
    ledger (judged only against the SIM11x family), or a SIM11x ledger
    entry went stale.
    """
    from repro.analysis.simlint import (
        Baseline,
        audit_rule_codes,
        format_json,
        format_text,
        resolve_cli_path,
    )

    roots = tuple(roots) if roots else DEFAULT_ROOTS
    paths = [resolve_cli_path(p) for p in paths]
    manifest_path = resolve_cli_path(manifest_path, must_exist=False)
    baseline_path = resolve_cli_path(baseline_path, must_exist=False)
    entries, findings = audit_paths(paths, roots=roots,
                                    cache_path=graph_cache)
    payload = manifest_payload(roots, entries)
    if update:
        save_manifest(manifest_path, payload)
        hazards = sum(1 for e in entries
                      if e.classification == _HAZARD)
        print(f"wrote {len(entries)} attribute(s) "
              f"({hazards} hazard(s)) to {manifest_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, stale = baseline.split(findings, codes=audit_rule_codes())
    committed = load_manifest(manifest_path)
    canonical = json.dumps(payload, sort_keys=True)
    matches = committed is not None and \
        json.dumps(committed, sort_keys=True) == canonical

    shown = new if check else findings
    if output == "json":
        print(format_json(shown, stale if check else ()))
    else:
        counts: Dict[str, int] = {}
        for entry in entries:
            counts[entry.classification] = \
                counts.get(entry.classification, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"audited {len(entries)} attribute(s) across "
              f"{len({e.class_name for e in entries})} class(es) "
              f"[{summary}]")
        if shown or (check and stale):
            print(format_text(shown, stale if check else ()))
    if check and (not matches or new or stale):
        # One unified failure: manifest drift and new/stale hazard
        # findings are the same contract violation — the committed
        # manifest doubles as the checkpoint schema (repro.persist
        # embeds its digest in every snapshot), so either way a
        # Session-reachable class changed what a checkpoint must
        # serialize.
        causes = []
        if not matches:
            state = "missing" if committed is None else "out of date"
            causes.append(f"state manifest {manifest_path} is {state}")
        if new or stale:
            causes.append(f"{len(new)} new / {len(stale)} stale "
                          f"snapshot-hazard finding(s)")
        print(f"checkpoint-schema drift: {'; '.join(causes)}. "
              "Run `python -m repro audit-state --update-manifest`, "
              "review the diff, and see README.md 'Crash-safe state & "
              "resume' — existing snapshot stores will refuse to "
              "restore across this change (SchemaDrift).")
        return 1
    return 0
