"""Live observability for the pilot/YARN/HDFS stack.

The paper's evaluation harvests timestamped state transitions *after*
a run; real RADICAL-Pilot ships a profiling/analytics layer that
records them *live*.  This subsystem is our equivalent:

* :mod:`repro.telemetry.bus` — a sim-clock-aware event bus with typed
  events and subscriber filtering;
* :mod:`repro.telemetry.metrics` — counters, gauges and time-bucketed
  histograms keyed on simulation time;
* :mod:`repro.telemetry.tracing` — nested trace spans
  (pilot -> agent -> unit -> container) exporting JSONL and Chrome
  ``trace_event`` JSON (opens in chrome://tracing / Perfetto);
* :mod:`repro.telemetry.bridge` — feeds :mod:`repro.core.profiler`
  from the live event stream instead of handle histories.

Telemetry is **opt-in per environment** and off by default: call
:func:`install` on a :class:`~repro.sim.engine.Environment` before the
components you care about start.  Instrumented call sites fetch
``env.telemetry`` (``None`` unless installed), so a disabled run pays
one attribute load and a branch per hook — nothing else.

    from repro.sim import Environment
    from repro import telemetry

    env = Environment()
    tel = telemetry.install(env)
    ...  # build site/session/managers on env, run the workload
    open("trace.json", "w").write(json.dumps(tel.tracer.chrome_trace()))
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.bridge import (
    LivePilotView,
    LiveUnitView,
    ProfilerBridge,
)
from repro.telemetry.bus import EventBus, Subscription, TelemetryEvent
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import Span, Tracer, spans_from_jsonl


class Telemetry:
    """One environment's telemetry hub: bus + metrics + tracer."""

    def __init__(self, env, record_events: bool = True,
                 sample_resolution: Optional[float] = None):
        self.env = env
        self.bus = EventBus(env, record=record_events)
        self.metrics = MetricsRegistry(
            env, sample_resolution=sample_resolution)
        self.tracer = Tracer(env)

    # Convenience pass-throughs used by instrumented components.
    def emit(self, category: str, name: str, **payload) -> TelemetryEvent:
        return self.bus.emit(category, name, **payload)

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self.metrics.histogram(name, **kwargs)

    def profiler_bridge(self, replay: bool = True) -> ProfilerBridge:
        return ProfilerBridge(self.bus, replay=replay)


def install(env, record_events: bool = True,
            sample_resolution: Optional[float] = None) -> Telemetry:
    """Attach (or return the existing) telemetry hub to ``env``.

    ``sample_resolution`` (simulated seconds) opts counters and gauges
    into batched sampling: samples landing in the same window coalesce
    into one, so instrumentation stays near-zero-cost at 10k-node
    scale.  ``None`` (default) records every sample exactly.
    """
    existing = getattr(env, "telemetry", None)
    if existing is not None:
        return existing
    telemetry = Telemetry(env, record_events=record_events,
                          sample_resolution=sample_resolution)
    env.telemetry = telemetry
    return telemetry


def uninstall(env) -> None:
    """Detach telemetry from ``env`` (subsequent hooks become no-ops)."""
    env.telemetry = None


def telemetry_of(env) -> Optional[Telemetry]:
    """The environment's telemetry hub, or ``None`` when disabled."""
    return getattr(env, "telemetry", None)


__all__ = [
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "LivePilotView",
    "LiveUnitView",
    "MetricsRegistry",
    "ProfilerBridge",
    "Span",
    "Subscription",
    "Telemetry",
    "TelemetryEvent",
    "Tracer",
    "install",
    "spans_from_jsonl",
    "telemetry_of",
    "uninstall",
]
