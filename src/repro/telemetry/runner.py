"""The workload runner behind ``python -m repro trace``.

Runs a K-Means workload (the paper's Figure 6 application) on the
calibrated testbed with telemetry installed, then writes the run's
observability artifacts:

* ``trace.json``   — Chrome ``trace_event`` JSON; open in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``;
* ``spans.jsonl``  — the raw span records with explicit parent ids;
* ``events.jsonl`` — every bus event (state transitions, heartbeats,
  container lifecycle, HDFS commits...);
* ``metrics.jsonl``— counters/gauges/histograms keyed on sim time.

Flavors: ``RP`` (plain pilot, fork backend over Lustre) and
``RP-YARN`` (Mode I: the agent bootstraps HDFS+YARN on the
allocation, units run as YARN containers).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

FLAVORS = ("RP", "RP-YARN")


@dataclass
class TraceRun:
    """Everything one traced run produced."""

    machine: str
    flavor: str
    points: int
    clusters: int
    ntasks: int
    nodes: int
    runtime: float               # workload span, seconds (sim)
    lrm_setup: float
    centroids_ok: bool
    span_count: int
    event_count: int
    metric_names: List[str]
    phase_means: Dict[str, Optional[float]]
    peak_concurrency: int
    artifacts: Dict[str, str] = field(default_factory=dict)


def run_traced_kmeans(machine: str = "stampede",
                      flavor: str = "RP-YARN",
                      points: int = 10_000,
                      clusters: int = 8,
                      ntasks: int = 8,
                      iterations: int = 2,
                      seed: int = 42,
                      out_dir: Optional[str] = None) -> TraceRun:
    """Run one telemetry-enabled K-Means cell; optionally write artifacts.

    Raises ``ValueError`` for unknown machines/flavors (the CLI maps
    that to exit code 2).
    """
    # Imports are deferred so ``python -m repro trace --help`` stays fast.
    from repro import telemetry
    from repro.analytics import generate_points, kmeans_reference
    from repro.analytics.kmeans import run_kmeans_pilot
    from repro.core import profiler
    from repro.experiments.calibration import (
        CALIBRATED_KMEANS_COST,
        DIM,
        TASK_CONFIGS,
        agent_config,
    )
    from repro.experiments.harness import MACHINE_TEMPLATES, Testbed

    if machine not in MACHINE_TEMPLATES:
        raise ValueError(f"unknown machine {machine!r}; known: "
                         f"{sorted(MACHINE_TEMPLATES)}")
    if flavor not in FLAVORS:
        raise ValueError(f"unknown flavor {flavor!r}; known: "
                         f"{list(FLAVORS)}")
    if ntasks < 1 or points < clusters or clusters < 1:
        raise ValueError("need ntasks >= 1 and points >= clusters >= 1")

    nodes = TASK_CONFIGS.get(ntasks, max(1, (ntasks + 7) // 8))
    lrm = "yarn" if flavor == "RP-YARN" else "fork"

    testbed = Testbed(machine, num_nodes=nodes, seed=seed)
    tel = telemetry.install(testbed.env)
    bridge = tel.profiler_bridge()

    pilot, _, _ = testbed.start_pilot(
        nodes=nodes, agent_config=agent_config(lrm))

    data = generate_points(points, clusters, dim=DIM, seed=1234)
    holder: Dict[str, object] = {}

    def workload():
        centroids, units = yield from run_kmeans_pilot(
            testbed.umgr, data, clusters, ntasks=ntasks,
            iterations=iterations, cost=CALIBRATED_KMEANS_COST)
        holder["centroids"] = centroids

    t0 = testbed.env.now
    testbed.run(workload())
    runtime = testbed.env.now - t0

    expected = kmeans_reference(data, clusters, iterations=iterations)
    ok = bool(np.allclose(holder["centroids"], expected))

    run = TraceRun(
        machine=machine, flavor=flavor, points=points, clusters=clusters,
        ntasks=ntasks, nodes=nodes, runtime=runtime,
        lrm_setup=pilot.agent_info.get("lrm_setup_seconds", 0.0),
        centroids_ok=ok,
        span_count=len(tel.tracer.spans),
        event_count=len(tel.bus.events),
        metric_names=tel.metrics.names(),
        # The profiler fed from the live stream, not handle histories —
        # the bridge is exercised on every traced run.
        phase_means=profiler.phase_means(bridge.units()),
        peak_concurrency=profiler.peak_concurrency(bridge.units()),
    )
    if out_dir is not None:
        run.artifacts = write_artifacts(tel, out_dir)
    return run


def write_artifacts(tel, out_dir: str) -> Dict[str, str]:
    """Dump trace/spans/events/metrics files; returns name -> path."""
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "trace": os.path.join(out_dir, "trace.json"),
        "spans": os.path.join(out_dir, "spans.jsonl"),
        "events": os.path.join(out_dir, "events.jsonl"),
        "metrics": os.path.join(out_dir, "metrics.jsonl"),
    }
    with open(paths["trace"], "w") as fh:
        json.dump(tel.tracer.chrome_trace(instants=tel.bus.events), fh)
    with open(paths["spans"], "w") as fh:
        fh.write(tel.tracer.to_jsonl() + "\n")
    with open(paths["events"], "w") as fh:
        fh.write(tel.bus.to_jsonl() + "\n")
    with open(paths["metrics"], "w") as fh:
        fh.write(tel.metrics.to_jsonl() + "\n")
    return paths


def format_report(run: TraceRun) -> str:
    """Human-readable summary for the CLI."""
    lines = [
        f"trace: {run.flavor} K-Means on {run.machine} "
        f"({run.points} pts, {run.clusters} clusters, "
        f"{run.ntasks} tasks on {run.nodes} node(s))",
        f"  workload span      {run.runtime:9.1f} s"
        + (f"  (+ {run.lrm_setup:.1f} s Mode I LRM setup)"
           if run.lrm_setup else ""),
        f"  centroids valid    {run.centroids_ok}",
        f"  spans recorded     {run.span_count}",
        f"  events recorded    {run.event_count}",
        f"  peak concurrency   {run.peak_concurrency}",
        "  phase means (s, via live ProfilerBridge):",
    ]
    for label, value in run.phase_means.items():
        shown = "-" if value is None else f"{value:.2f}"
        lines.append(f"    {label:<10} {shown}")
    if run.metric_names:
        lines.append("  metrics: " + ", ".join(run.metric_names))
    for name, path in run.artifacts.items():
        lines.append(f"  wrote {name:<8} {path}")
    if run.artifacts:
        lines.append("  open trace.json in https://ui.perfetto.dev "
                     "or chrome://tracing")
    return "\n".join(lines)
