"""Metrics registry: counters, gauges and time-bucketed histograms.

All series are keyed on *simulated* time.  The registry is the numeric
side of the telemetry subsystem: components record queue depths,
allocation latencies, bytes moved and occupancy here, and the ``trace``
CLI dumps everything as JSONL for offline analysis.

Design notes:

* A :class:`Counter` is monotonic; it keeps both the running total and
  the ``(time, delta)`` increments so any windowed rate can be derived.
* A :class:`Gauge` records ``(time, value)`` samples (last write wins
  at equal timestamps, matching the kernel's deterministic ordering).
* A :class:`Histogram` buckets observations two ways at once: by value
  (configurable bounds) and by simulation-time window
  (``window_seconds``), so "allocation latency between t=120 and
  t=180" is a direct lookup.
"""

from __future__ import annotations

import bisect
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Default value-bucket upper bounds (seconds-ish scales), +inf implied.
DEFAULT_BOUNDS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Metric:
    """Shared bookkeeping for all metric kinds."""

    kind = "metric"

    def __init__(self, env, name: str, labels: Dict[str, str],
                 sample_resolution: Optional[float] = None):
        self.env = env
        self.name = name
        self.labels = dict(labels)
        #: Optional coalescing window (simulated seconds): samples
        #: landing in the same window merge into one, bounding series
        #: memory and append cost on hot paths at 10k-node scale.
        #: ``None`` (the default) keeps every sample.
        self.sample_resolution = sample_resolution

    def _base(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"metric": self.name, "type": self.kind}
        if self.labels:
            out["labels"] = self.labels
        return out

    def rows(self) -> Iterator[Dict[str, Any]]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing total with an increment series."""

    kind = "counter"

    def __init__(self, env, name: str, labels: Dict[str, str],
                 sample_resolution: Optional[float] = None):
        super().__init__(env, name, labels, sample_resolution)
        self.total = 0.0
        self.samples: List[Tuple[float, float]] = []   # (time, delta)

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.total += value
        now = self.env.now
        res = self.sample_resolution
        samples = self.samples
        if res and samples and now - samples[-1][0] < res:
            # Batched mode: merge increments landing inside one
            # resolution window (the running total stays exact).
            t, delta = samples[-1]
            samples[-1] = (t, delta + value)
        else:
            samples.append((now, value))

    def rows(self) -> Iterator[Dict[str, Any]]:
        running = 0.0
        for t, delta in self.samples:
            running += delta
            yield {**self._base(), "t": t, "delta": delta,
                   "total": running}


class Gauge(Metric):
    """Point-in-time value with full history."""

    kind = "gauge"

    def __init__(self, env, name: str, labels: Dict[str, str],
                 sample_resolution: Optional[float] = None):
        super().__init__(env, name, labels, sample_resolution)
        self.samples: List[Tuple[float, float]] = []   # (time, value)

    @property
    def value(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def set(self, value: float) -> None:
        now = self.env.now
        samples = self.samples
        if samples:
            last_t = samples[-1][0]
            res = self.sample_resolution
            if last_t == now or (res and now - last_t < res):
                # Same-instant overwrite keeps one sample per timestamp;
                # batched mode widens that to one per resolution window
                # (last write wins — the step function the samples trace
                # is exact to within the window).
                samples[-1] = (now, float(value))
                return
        samples.append((now, float(value)))

    def add(self, delta: float) -> None:
        self.set((self.value or 0.0) + delta)

    def max(self) -> Optional[float]:
        return max((v for _, v in self.samples), default=None)

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the step function traced by the samples."""
        if not self.samples:
            return 0.0
        end = self.env.now if until is None else until
        total = 0.0
        for (t0, v), (t1, _) in zip(self.samples, self.samples[1:], strict=False):
            total += v * (t1 - t0)
        last_t, last_v = self.samples[-1]
        total += last_v * max(0.0, end - last_t)
        span = end - self.samples[0][0]
        return total / span if span > 0 else self.samples[-1][1]

    def rows(self) -> Iterator[Dict[str, Any]]:
        for t, v in self.samples:
            yield {**self._base(), "t": t, "value": v}


class Histogram(Metric):
    """Value-bucketed observations, partitioned into sim-time windows."""

    kind = "histogram"

    def __init__(self, env, name: str, labels: Dict[str, str],
                 bounds: Sequence[float] = DEFAULT_BOUNDS,
                 window_seconds: float = 60.0):
        super().__init__(env, name, labels)
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.window_seconds = float(window_seconds)
        #: window index -> [per-bound counts..., +inf count]
        self.windows: Dict[int, List[int]] = {}
        self._sums: Dict[int, float] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        window = int(self.env.now // self.window_seconds)
        counts = self.windows.setdefault(
            window, [0] * (len(self.bounds) + 1))
        counts[bisect.bisect_left(self.bounds, value)] += 1
        self._sums[window] = self._sums.get(window, 0.0) + value
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> List[int]:
        """Aggregate value-bucket counts over all time windows."""
        total = [0] * (len(self.bounds) + 1)
        for counts in self.windows.values():
            for i, c in enumerate(counts):
                total[i] += c
        return total

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile from the aggregated buckets (upper bound)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for bound, c in zip(self.bounds, self.bucket_counts(), strict=False):
            seen += c
            # Empty buckets never satisfy a quantile: q=0 must report
            # the first *populated* bucket's bound, not bounds[0].
            if c > 0 and seen >= target:
                return bound
        return self.max

    def percentiles(self, ps: Sequence[float]) -> Dict[float, Optional[float]]:
        """Named percentiles (percent values, e.g. ``(50, 95, 99)``).

        Thin wrapper over :meth:`quantile`: returns ``{p: value}`` with
        the same bucket-upper-bound semantics, ``None`` values when the
        histogram is empty.  The benchmark harness consumes this to emit
        ``*_p50``/``*_p95``/``*_p99`` baseline keys.
        """
        return {p: self.quantile(p / 100.0) for p in ps}

    def rows(self) -> Iterator[Dict[str, Any]]:
        for window in sorted(self.windows):
            counts = self.windows[window]
            yield {**self._base(),
                   "t0": window * self.window_seconds,
                   "t1": (window + 1) * self.window_seconds,
                   "bounds": list(self.bounds),
                   "counts": counts,
                   "count": sum(counts),
                   "sum": self._sums[window]}


class MetricsRegistry:
    """Creates-or-returns metrics by (name, labels); dumps them as JSONL."""

    def __init__(self, env, sample_resolution: Optional[float] = None):
        self.env = env
        if sample_resolution is not None and sample_resolution <= 0:
            raise ValueError("sample_resolution must be positive")
        #: Coalescing window inherited by new counters/gauges (see
        #: :class:`Metric`); ``None`` keeps the exact per-instant
        #: default behaviour.
        self.sample_resolution = sample_resolution
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                            Metric] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(self.env, name, labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels,
                         sample_resolution=self.sample_resolution)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels,
                         sample_resolution=self.sample_resolution)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS,
                  window_seconds: float = 60.0,
                  **labels: str) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds,
                         window_seconds=window_seconds)

    # ----------------------------------------------------------- queries
    def all(self) -> List[Metric]:
        return list(self._metrics.values())

    def find(self, name: str) -> List[Metric]:
        return [m for m in self._metrics.values() if m.name == name]

    def names(self) -> List[str]:
        return sorted({m.name for m in self._metrics.values()})

    # ------------------------------------------------------------ export
    def rows(self) -> Iterator[Dict[str, Any]]:
        for metric in self._metrics.values():
            yield from metric.rows()

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(row, default=str)
                         for row in self.rows())

    def snapshot_state(self) -> list:
        """Checkpoint fingerprint: every metric row, canonically sorted.

        Registration order is deterministic in a replayed run, but
        sorting by the serialized row makes the fingerprint independent
        of it — metric *values* are what must match after restore.
        """
        return sorted((dict(row) for row in self.rows()),
                      key=lambda row: json.dumps(row, sort_keys=True,
                                                 default=str))
