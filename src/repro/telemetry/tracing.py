"""Trace spans: nested timing intervals with Chrome trace_event export.

Spans model the pilot -> agent -> unit -> container nesting of a run.
Because the simulation interleaves many generator processes, there is
no usable call stack to infer parents from — parents are passed
explicitly at :meth:`Tracer.begin` time, and each span lives on a
*track* (one row in the trace viewer; by convention one track per
pilot and one per unit, so phase and container spans nest by time
containment inside their unit's row).

Exports:

* :meth:`Tracer.to_jsonl` — one JSON object per span, with explicit
  ``parent`` ids (lossless; the round-trip format).
* :meth:`Tracer.chrome_trace` — the Chrome ``trace_event`` JSON dict
  (``{"traceEvents": [...]}``) that loads directly in
  ``chrome://tracing`` and Perfetto, using complete ("X") events plus
  thread-name metadata, with timestamps in microseconds.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Optional

from repro.telemetry.bus import TelemetryEvent

#: Simulated seconds -> trace microseconds.
_US = 1_000_000.0


class Span:
    """One timed interval; ``end`` is None while the span is open."""

    __slots__ = ("sid", "name", "cat", "start", "end", "args",
                 "parent_id", "track")

    def __init__(self, sid: int, name: str, cat: str, start: float,
                 track: str, parent_id: Optional[int],
                 args: Dict[str, Any]):
        self.sid = sid
        self.name = name
        self.cat = cat
        self.start = start
        self.end: Optional[float] = None
        self.track = track
        self.parent_id = parent_id
        self.args = args

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"sid": self.sid, "name": self.name, "cat": self.cat,
                "start": self.start, "end": self.end,
                "track": self.track, "parent": self.parent_id,
                "args": self.args}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.duration:.3f}s"
        return f"<Span {self.cat}:{self.name} {state}>"


class Tracer:
    """Creates, finishes and exports spans."""

    def __init__(self, env):
        self.env = env
        self.spans: List[Span] = []
        self._sid = itertools.count(1)
        self._tracks: Dict[str, int] = {}    # track name -> chrome tid

    # ---------------------------------------------------------- recording
    def begin(self, name: str, cat: str = "span",
              parent: Optional[Span] = None,
              track: Optional[str] = None, **args: Any) -> Span:
        """Open a span now.  ``track`` defaults to the parent's track."""
        if track is None:
            track = parent.track if parent is not None else name
        span = Span(sid=next(self._sid), name=name, cat=cat,
                    start=self.env.now, track=track,
                    parent_id=parent.sid if parent is not None else None,
                    args=args)
        self.spans.append(span)
        return span

    def end(self, span: Span, **args: Any) -> Span:
        """Close a span now (idempotent — re-closing keeps the first end)."""
        if span.end is None:
            span.end = self.env.now
        if args:
            span.args.update(args)
        return span

    def span(self, name: str, **kwargs):
        """Context manager for spans that do not cross a sim yield."""
        return _SpanContext(self, name, kwargs)

    # ------------------------------------------------------------ queries
    def find(self, cat: Optional[str] = None,
             name: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans
                if (cat is None or s.cat == cat)
                and (name is None or s.name == name)]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.sid]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.open]

    # ------------------------------------------------------------- export
    def to_jsonl(self) -> str:
        """Lossless span dump, one JSON object per line."""
        return "\n".join(json.dumps(s.to_dict(), default=str)
                         for s in self.spans)

    def _tid(self, track: str) -> int:
        tid = self._tracks.get(track)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[track] = tid
        return tid

    def chrome_trace(self, instants: Optional[List[TelemetryEvent]] = None
                     ) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON for chrome://tracing / Perfetto.

        Spans become complete ("X") events; open spans are clipped to
        the current simulated time.  ``instants`` (e.g. recorded bus
        events) become instant ("i") events on their own track.
        """
        events: List[Dict[str, Any]] = []
        now = self.env.now
        for span in self.spans:
            end = span.end if span.end is not None else now
            events.append({
                "name": span.name, "cat": span.cat, "ph": "X",
                "ts": span.start * _US,
                "dur": max(0.0, (end - span.start) * _US),
                "pid": 1, "tid": self._tid(span.track),
                "args": dict(span.args, sid=span.sid,
                             parent=span.parent_id),
            })
        for event in instants or ():
            events.append({
                "name": f"{event.category}.{event.name}",
                "cat": event.category, "ph": "i", "s": "g",
                "ts": event.time * _US, "pid": 1,
                "tid": self._tid("events"),
                "args": dict(event.payload),
            })
        # Parents first at equal timestamps so viewers nest X events
        # deterministically; instants sort with dur 0 after any parent.
        events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
        meta: List[Dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "repro simulation"}}]
        for track, tid in sorted(self._tracks.items(), key=lambda kv: kv[1]):
            meta.append({"name": "thread_name", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"name": track}})
            meta.append({"name": "thread_sort_index", "ph": "M", "pid": 1,
                         "tid": tid, "args": {"sort_index": tid}})
        return {"traceEvents": meta + events,
                "displayTimeUnit": "ms",
                "otherData": {"clock": "simulated seconds x 1e6"}}


class _SpanContext:
    """``with tracer.span("name"): ...`` for non-yielding sections."""

    def __init__(self, tracer: Tracer, name: str, kwargs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.kwargs = kwargs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self.tracer.begin(self.name, **self.kwargs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.end(self.span,
                        **({"error": repr(exc)} if exc else {}))


def spans_from_jsonl(text: str) -> List[Span]:
    """Rebuild spans from a :meth:`Tracer.to_jsonl` dump (round-trip)."""
    spans: List[Span] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        data = json.loads(line)
        span = Span(sid=data["sid"], name=data["name"], cat=data["cat"],
                    start=data["start"], track=data["track"],
                    parent_id=data["parent"], args=data["args"])
        span.end = data["end"]
        spans.append(span)
    return spans
