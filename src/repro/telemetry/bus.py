"""The telemetry event bus: typed events with subscriber filtering.

Every component of the stack (agent, YARN daemons, HDFS, batch
schedulers) emits :class:`TelemetryEvent` records through one
:class:`EventBus` attached to the simulation environment.  Delivery is
synchronous — an emit reaches every matching subscriber before the
emitter continues — so subscribers observe events in a deterministic
total order even when many components act at the same simulated time:
the bus stamps each event with a monotonically increasing sequence
number, mirroring the kernel's ``(time, priority, sequence)`` ordering.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Well-known event categories (components are free to add their own).
CATEGORIES = ("pilot", "unit", "agent", "yarn", "hdfs", "rms", "metric")


@dataclass(frozen=True)
class TelemetryEvent:
    """One emitted fact: who (category), what (name), when, and payload."""

    time: float
    seq: int
    category: str
    name: str
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.category, self.name)

    def to_dict(self) -> Dict[str, Any]:
        return {"t": self.time, "seq": self.seq, "cat": self.category,
                "name": self.name, **self.payload}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=True)


class Subscription:
    """One subscriber: a callback plus its event filter.

    ``categories``/``names`` restrict delivery to matching events
    (``None`` = no restriction); ``predicate`` is an arbitrary final
    filter on the event object.  Detach with :meth:`cancel`.
    """

    def __init__(self, bus: "EventBus",
                 callback: Callable[[TelemetryEvent], None],
                 categories: Optional[Iterable[str]] = None,
                 names: Optional[Iterable[str]] = None,
                 predicate: Optional[Callable[[TelemetryEvent], bool]]
                 = None):
        self.bus = bus
        self.callback = callback
        self.categories = frozenset(categories) if categories else None
        self.names = frozenset(names) if names else None
        self.predicate = predicate
        self.active = True
        self.delivered = 0

    def matches(self, event: TelemetryEvent) -> bool:
        if self.categories is not None and \
                event.category not in self.categories:
            return False
        if self.names is not None and event.name not in self.names:
            return False
        if self.predicate is not None and not self.predicate(event):
            return False
        return True

    def cancel(self) -> None:
        self.active = False
        self.bus._unsubscribe(self)


class EventBus:
    """Synchronous pub/sub hub for telemetry events.

    ``record=True`` (the default) keeps every emitted event in
    :attr:`events`, which is what the JSONL export and the profiler
    bridge replay from; pass ``record=False`` for a pure fan-out bus.
    """

    def __init__(self, env, record: bool = True):
        self.env = env
        self.record = record
        self.events: List[TelemetryEvent] = []
        self._seq = itertools.count()
        self._subscriptions: List[Subscription] = []
        self.emitted = 0
        self.dropped = 0

    # ---------------------------------------------------------- emission
    def emit(self, category: str, name: str, **payload: Any
             ) -> TelemetryEvent:
        """Publish one event at the current simulated time."""
        event = TelemetryEvent(time=self.env.now, seq=next(self._seq),
                               category=category, name=name,
                               payload=payload)
        self.emitted += 1
        if self.record:
            self.events.append(event)
        # Iterate over a copy: callbacks may subscribe/cancel.
        for sub in list(self._subscriptions):
            if sub.active and sub.matches(event):
                sub.delivered += 1
                sub.callback(event)
        return event

    # ------------------------------------------------------ subscription
    def subscribe(self, callback: Callable[[TelemetryEvent], None],
                  categories: Optional[Iterable[str]] = None,
                  names: Optional[Iterable[str]] = None,
                  predicate: Optional[Callable[[TelemetryEvent], bool]]
                  = None) -> Subscription:
        """Register ``callback`` for events matching the filter."""
        sub = Subscription(self, callback, categories=categories,
                           names=names, predicate=predicate)
        self._subscriptions.append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        try:
            self._subscriptions.remove(sub)
        except ValueError:
            pass

    # ----------------------------------------------------------- queries
    def select(self, category: Optional[str] = None,
               name: Optional[str] = None) -> List[TelemetryEvent]:
        """Recorded events matching ``category``/``name`` (None = any)."""
        return [e for e in self.events
                if (category is None or e.category == category)
                and (name is None or e.name == name)]

    def to_jsonl(self) -> str:
        """All recorded events, one JSON object per line."""
        return "\n".join(e.to_json() for e in self.events)
