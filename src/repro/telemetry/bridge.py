"""Bridge from the live event stream to the post-hoc profiler.

:mod:`repro.core.profiler` analyses unit/pilot *handle histories* after
a run.  The bridge reconstructs equivalent histories from ``unit.state``
/ ``pilot.state`` bus events as they happen, so the same analysis
functions (``unit_phases``, ``phase_means``, ``concurrency_series``,
``peak_concurrency``) work mid-run, on the agent side, or in a process
that never saw the client handles at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.states import PilotState, UnitState
from repro.telemetry.bus import EventBus, TelemetryEvent


class LiveUnitView:
    """History-compatible stand-in for a :class:`ComputeUnit` handle."""

    def __init__(self, uid: str):
        self.uid = uid
        self.pilot_uid: Optional[str] = None
        self.history: List[Tuple[float, UnitState]] = []

    @property
    def state(self) -> Optional[UnitState]:
        return self.history[-1][1] if self.history else None

    def advance(self, time: float, state: UnitState) -> None:
        self.history.append((time, state))

    def timestamp(self, state: UnitState) -> Optional[float]:
        for t, s in self.history:
            if s is state:
                return t
        return None

    def __repr__(self) -> str:  # pragma: no cover
        state = self.state.value if self.state else "?"
        return f"<LiveUnitView {self.uid} {state}>"


class LivePilotView:
    """History-compatible stand-in for a :class:`ComputePilot` handle."""

    def __init__(self, uid: str):
        self.uid = uid
        self.history: List[Tuple[float, PilotState]] = []
        self.agent_info: Dict[str, object] = {}

    @property
    def state(self) -> Optional[PilotState]:
        return self.history[-1][1] if self.history else None

    def advance(self, time: float, state: PilotState) -> None:
        self.history.append((time, state))

    def timestamp(self, state: PilotState) -> Optional[float]:
        for t, s in self.history:
            if s is state:
                return t
        return None


class ProfilerBridge:
    """Subscribes to state-transition events and keeps live views.

    Usage::

        bridge = ProfilerBridge(telemetry.bus)
        ...  # run (part of) the simulation
        means = profiler.phase_means(bridge.units())
        series = profiler.concurrency_series(bridge.units())
    """

    def __init__(self, bus: EventBus, replay: bool = True):
        self.bus = bus
        self._units: Dict[str, LiveUnitView] = {}
        self._pilots: Dict[str, LivePilotView] = {}
        self._subscription = bus.subscribe(
            self._on_event, categories=("unit", "pilot"), names=("state",))
        if replay:
            for event in bus.select(name="state"):
                if event.category in ("unit", "pilot"):
                    self._on_event(event)

    # ----------------------------------------------------------- ingest
    def _on_event(self, event: TelemetryEvent) -> None:
        uid = event.payload.get("uid")
        if uid is None:
            return
        if event.category == "unit":
            view = self._units.get(uid)
            if view is None:
                view = self._units[uid] = LiveUnitView(uid)
                view.pilot_uid = event.payload.get("pilot")
            view.advance(event.time, UnitState(event.payload["state"]))
        elif event.category == "pilot":
            view = self._pilots.get(uid)
            if view is None:
                view = self._pilots[uid] = LivePilotView(uid)
            view.advance(event.time, PilotState(event.payload["state"]))
            agent_info = event.payload.get("agent_info")
            if agent_info:
                view.agent_info.update(agent_info)

    # ---------------------------------------------------------- queries
    def units(self) -> List[LiveUnitView]:
        return list(self._units.values())

    def pilots(self) -> List[LivePilotView]:
        return list(self._pilots.values())

    def unit(self, uid: str) -> LiveUnitView:
        return self._units[uid]

    def pilot(self, uid: str) -> LivePilotView:
        return self._pilots[uid]

    def close(self) -> None:
        self._subscription.cancel()
