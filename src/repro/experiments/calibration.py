"""Calibration constants and the paper statements they encode.

Every number here is traceable to a sentence or figure in the paper
(quoted in the comments).  The benchmarks print measured values next
to these targets; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analytics.kmeans import KMeansCost
from repro.core.description import AgentConfig
from repro.rms.base import RmsConfig
from repro.yarn.config import YarnConfig

# ---------------------------------------------------------------- batch RMS
#: Production-flavoured batch system timings (idle queue): submission
#: RTT, scheduler cycle, node prolog.  Together with the agent
#: bootstrap these produce plain-RP pilot startup of ~50-60 s, matching
#: the RADICAL-Pilot bars of Figure 5.
CALIBRATED_RMS = RmsConfig(submit_latency=1.0, schedule_interval=5.0,
                           prolog_seconds=8.0, epilog_seconds=2.0)

# -------------------------------------------------------------------- YARN
#: "For each CU, resources have to be requested in two stages: first
#: the application master container is allocated followed by the
#: containers for the actual compute tasks.  For short-running jobs
#: this represents a bottleneck." (§IV-A) — the inset of Figure 5 shows
#: RP-YARN CU startup of ~40-45 s vs seconds for plain RP.
CALIBRATED_YARN = YarnConfig(
    nm_vcore_ratio=2.0,             # vcores oversubscribed, as is common
    max_assignments_per_heartbeat=2,
    client_submit_seconds=6.0,      # `yarn jar` client JVM + submission
    container_launch_seconds=12.0,  # localization + JVM spin-up
    am_register_seconds=2.0,
    rm_submit_latency=0.5,
    nm_heartbeat=1.0,
    am_heartbeat=1.0,
    rm_startup_seconds=10.0,
    nm_startup_seconds=6.0,
)

# ------------------------------------------------------------------- agent
#: "For a single node YARN environment, the overhead for Mode I
#: (Hadoop on HPC) is between 50-85 sec depending upon the resource
#: selected." (§IV-A).  The Mode I overhead here is download
#: (250 MB at the machine's external bandwidth: ~21 s on Stampede,
#: ~10 s on Wrangler) + configure (5 s) + HDFS start (10 s) + YARN
#: start (8 s) ≈ 44-55 s of LRM setup on top of the base bootstrap.
def agent_config(lrm: str = "fork", **overrides) -> AgentConfig:
    """The calibrated agent configuration for one pilot flavour."""
    defaults = dict(
        lrm=lrm,
        bootstrap_seconds=38.0,     # virtualenv + module loads (RP-typical)
        db_connect_seconds=2.0,
        db_poll_interval=1.0,
        spawn_overhead_seconds=3.0,  # wrapper script env setup
        hadoop_dist_bytes=250 * 1024 ** 2,
        spark_dist_bytes=230 * 1024 ** 2,
        configure_seconds=5.0,
        connect_seconds=3.0,
        scheduler_policy="spread",   # 8/16/32 tasks over 1/2/3 nodes
        yarn_config=CALIBRATED_YARN,
        # Interpreter + imports per task: read from Lustre by plain
        # pilots (contended at wave starts — the mechanism behind the
        # paper's sub-linear speedups), localized from node disks by
        # YARN/Spark tasks.
        task_environment_bytes=150 * 1024 ** 2,
    )
    defaults.update(overrides)
    return AgentConfig(**defaults)


CALIBRATED_AGENT = agent_config()

# ----------------------------------------------------------------- K-Means
#: Scenarios of §IV-B: "10,000 points and 5,000 clusters, 100,000
#: points / 500 clusters and 1,000,000 points / 50 clusters.  Each
#: point belongs to a three dimensional space.  The compute
#: requirement is ... constant for all three scenarios.  The
#: communication in the shuffling phase however increases with the
#: number of points. ... we run 2 iterations."
SCENARIOS: List[Tuple[int, int]] = [
    (10_000, 5_000),
    (100_000, 500),
    (1_000_000, 50),
]
ITERATIONS = 2
DIM = 3

#: "8 tasks on 1 node, 16 tasks on 2 nodes and 32 tasks on 3 nodes."
TASK_CONFIGS: Dict[int, int] = {8: 1, 16: 2, 32: 3}

#: Compute cost: chosen so the 8-task Stampede runtime lands in the
#: paper's ~1300-1600 s band (Figure 6 y-axis up to 2000 s).  I/O
#: volumes are *effective* bytes per point and iteration — including
#: the Hadoop-style text serialization, temporary files and re-reads a
#: real deployment performs — sized so that on Stampede's contended
#: Lustre the non-scaling I/O fraction reproduces the paper's speedup
#: gap (RP 2.4 vs RP-YARN 3.2 at 32 tasks, 1M points) while staying
#: negligible on Wrangler ("we do not see the effect on Wrangler").
CALIBRATED_KMEANS_COST = KMeansCost(
    cpu_per_pcd=3.4e-5,             # ref-CPU seconds per point*cluster*dim
    bytes_per_point_in=2_000.0,
    bytes_per_point_shuffle=1_200.0,
    base_memory_mb=1536,
    memory_bytes_per_point=4_000.0,
)

#: Job-visible Lustre bandwidth differs from the filesystem's peak:
#: a single job doing many small, latency-bound I/O operations sees a
#: small share.  Stampede's value makes plain-RP I/O the paper's
#: non-scaling term; Wrangler ("a special purpose data-intensive
#: supercomputer") was provisioned so I/O never saturates.
LUSTRE_JOB_BW = {
    "stampede": (30e6, 30e6, 0.040),    # aggregate, per-stream, latency
    "wrangler": (100e6, 50e6, 0.015),
    # Leadership-class shares (weak-scaling scenarios, not calibrated
    # against the paper): a single job sees a wider slice of the
    # center-wide filesystem than on the 2016 testbeds.
    "frontera": (3e9, 1e9, 0.015),
    "summit": (5e9, 2e9, 0.010),
}


def scenario_label(points: int, clusters: int) -> str:
    return f"{points:,} points / {clusters:,} clusters"
