"""Common experiment plumbing: testbed construction and pilot helpers."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.cluster.machine import (
    MachineSpec,
    frontera,
    stampede,
    summit,
    wrangler,
)
from repro.cluster.storage import StorageSpec
from repro.api import (
    ComputePilotDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.core.description import AgentConfig
from repro.experiments.calibration import CALIBRATED_RMS, LUSTRE_JOB_BW
from repro.hadoop_deploy import provision_dedicated_hadoop
from repro.saga import Registry, Site
from repro.sim import Environment

MACHINE_TEMPLATES = {"stampede": stampede, "wrangler": wrangler,
                     "frontera": frontera, "summit": summit}


def experiment_machine(name: str, num_nodes: int) -> MachineSpec:
    """Machine template with the job-visible Lustre share applied."""
    spec = MACHINE_TEMPLATES[name](num_nodes=num_nodes)
    agg, per_stream, latency = LUSTRE_JOB_BW[name]
    shared = StorageSpec(
        name=spec.shared_fs.name, aggregate_bw=agg,
        per_stream_bw=per_stream, latency=latency,
        capacity=spec.shared_fs.capacity)
    return replace(spec, shared_fs=shared)


class Testbed:
    """One experiment's simulated world: site + session + managers."""

    __test__ = False  # not a pytest test class despite the Test* name

    def __init__(self, machine: str, num_nodes: int, seed: int = 42,
                 rms_config=None, provision_hadoop: bool = False):
        self.env = Environment()
        self.registry = Registry()
        self.site = self.registry.register(Site(
            self.env, experiment_machine(machine, num_nodes),
            rms_kind="slurm", rms_config=rms_config or CALIBRATED_RMS))
        self.session = Session(self.env, self.registry, seed=seed)
        self.pmgr = PilotManager(self.session)
        self.umgr = UnitManager(self.session)
        if provision_hadoop:
            self.env.run(self.env.process(
                provision_dedicated_hadoop(self.site)))

    def start_pilot(self, nodes: int, agent_config: AgentConfig,
                    runtime: float = 24 * 60.0):
        """Submit a pilot and run the sim until it is ACTIVE.

        Returns (pilot, submit_time, active_time).
        """
        t_submit = self.env.now
        pilot = self.pmgr.submit_pilot(ComputePilotDescription(
            resource=f"slurm://{self.site.hostname}", nodes=nodes,
            runtime=runtime, agent_config=agent_config))
        self.umgr.add_pilots(pilot)
        self.env.run(pilot.wait(PilotState.ACTIVE))
        return pilot, t_submit, pilot.timestamp(PilotState.ACTIVE)

    def run(self, generator):
        """Drive a generator as a simulation process to completion."""
        return self.env.run(self.env.process(generator))
