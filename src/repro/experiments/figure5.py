"""Figure 5: RADICAL-Pilot and RADICAL-Pilot-YARN overheads.

Main panel: pilot startup time (submission to first-unit-processable,
i.e. pilot ACTIVE) for plain RP, RP-YARN Mode I and RP-YARN Mode II on
Stampede and Wrangler.  Inset: Compute-Unit startup time (submission
to the task process starting) for plain RP vs RP-YARN.

Paper anchors:
* Mode I adds 50-85 s over plain RP (download + configure + daemon
  start), depending on the machine;
* Mode II startup ≈ plain RP startup ("comparable ... as it is not
  necessary to spawn a Hadoop cluster");
* CU startup: seconds for RP, tens of seconds for RP-YARN (two-stage
  AM-then-container allocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api import ComputeUnitDescription
from repro.experiments.calibration import agent_config
from repro.experiments.harness import Testbed


@dataclass
class StartupRow:
    """One bar of Figure 5."""

    machine: str
    flavor: str           # "RP" | "RP-YARN (Mode I)" | "RP-YARN (Mode II)"
    pilot_startup: float  # seconds, submission -> ACTIVE
    lrm_setup: float      # seconds inside that spent on Hadoop/Spark


#: What each figure bar is configured as: (machine, flavor, lrm,
#: provision dedicated Hadoop first?).  Stampede offers no dedicated
#: Hadoop, so Mode II exists only on Wrangler — as in the paper.
PILOT_CASES = [
    ("stampede", "RP", "fork", False),
    ("stampede", "RP-YARN (Mode I)", "yarn", False),
    ("wrangler", "RP", "fork", False),
    ("wrangler", "RP-YARN (Mode I)", "yarn", False),
    ("wrangler", "RP-YARN (Mode II)", "yarn-connect", True),
]


def run_figure5_pilot_startup(num_nodes: int = 1,
                              seed: int = 42) -> List[StartupRow]:
    """Measure every bar of Figure 5's main panel."""
    rows = []
    for machine, flavor, lrm, provision in PILOT_CASES:
        testbed = Testbed(machine, num_nodes=max(num_nodes, 1), seed=seed,
                          provision_hadoop=provision)
        pilot, t_submit, t_active = testbed.start_pilot(
            nodes=num_nodes, agent_config=agent_config(lrm))
        rows.append(StartupRow(
            machine=machine, flavor=flavor,
            pilot_startup=t_active - t_submit,
            lrm_setup=pilot.agent_info["lrm_setup_seconds"]))
    return rows


@dataclass
class UnitStartupRow:
    """One bar of Figure 5's inset."""

    machine: str
    flavor: str           # "RP" | "RP-YARN"
    unit_startup: float   # seconds, submission -> task process start


UNIT_CASES = [
    ("stampede", "RP", "fork"),
    ("stampede", "RP-YARN", "yarn"),
    ("wrangler", "RP", "fork"),
    ("wrangler", "RP-YARN", "yarn"),
]


def run_figure5_unit_startup(samples: int = 3,
                             seed: int = 42) -> List[UnitStartupRow]:
    """Measure the inset: CU startup on a warm pilot, averaged over
    ``samples`` sequential submissions."""
    rows = []
    for machine, flavor, lrm in UNIT_CASES:
        testbed = Testbed(machine, num_nodes=1, seed=seed)
        testbed.start_pilot(nodes=1, agent_config=agent_config(lrm))
        startups = []
        for _ in range(samples):
            units = testbed.umgr.submit_units(ComputeUnitDescription(
                executable="/bin/sleep", arguments=("1",),
                cores=1, cpu_seconds=1.0, memory_mb=1024))
            testbed.env.run(testbed.umgr.wait_units(units))
            if units[0].state.value != "Done":
                raise RuntimeError(
                    f"unit failed on {machine}/{flavor}: {units[0].stderr}")
            startups.append(units[0].startup_time)
        rows.append(UnitStartupRow(
            machine=machine, flavor=flavor,
            unit_startup=sum(startups) / len(startups)))
    return rows
