"""Declarative experiment sweeps with a process-pool runner.

The paper's evaluation is a grid of *independent* simulated cells —
machine x flavor x scenario x task-count x seed.  This module expresses
each figure's grid as a flat cell list and fans the cells out over a
``concurrent.futures.ProcessPoolExecutor``:

* every cell carries a deterministic seed derived from the root seed
  and the cell's identity (not its position), so subsetting or
  reordering a grid never shifts another cell's randomness;
* results are aggregated in declaration order regardless of worker
  completion order, so ``--jobs N`` produces row-for-row (and after
  canonical JSON serialization, byte-for-byte) identical aggregates to
  the sequential ``--jobs 1`` reference path;
* per-cell and total wall-clock timings are captured separately from
  the scientific rows, so timing jitter never contaminates the
  deterministic output.

Used by ``python -m repro sweep`` and the determinism regression tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

GRIDS = ("figure5", "figure6", "ablations", "sensitivity", "chaos",
         "raptor", "service")


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of a sweep: a kind tag plus its parameters.

    ``params`` is a sorted tuple of (name, value) pairs so cells are
    hashable, picklable, and have a stable string identity.
    """

    grid: str
    kind: str
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    @property
    def key(self) -> str:
        """Stable identity: grid/kind plus the sorted parameters."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.grid}/{self.kind}({inner})"

    def param(self, name: str) -> Any:
        return dict(self.params)[name]


def cell_seed(root_seed: int, key: str) -> int:
    """Deterministic per-cell seed from the root seed + cell identity.

    Uses sha256 (not ``hash()``) so the value is stable across
    processes and PYTHONHASHSEED settings.
    """
    digest = hashlib.sha256(f"{root_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def _cell(grid: str, kind: str, root_seed: int,
          **params: Any) -> SweepCell:
    ordered = tuple(sorted(params.items()))
    inner = ",".join(f"{k}={v}" for k, v in ordered)
    key = f"{grid}/{kind}({inner})"
    return SweepCell(grid=grid, kind=kind, params=ordered,
                     seed=cell_seed(root_seed, key))


# ------------------------------------------------------------ grid builders
def figure5_cells(root_seed: int = 42) -> List[SweepCell]:
    """Both Figure 5 panels: one cell per bar."""
    from repro.experiments.figure5 import PILOT_CASES, UNIT_CASES
    cells = [
        _cell("figure5", "pilot-startup", root_seed, machine=machine,
              flavor=flavor, lrm=lrm, provision=provision)
        for machine, flavor, lrm, provision in PILOT_CASES
    ]
    cells += [
        _cell("figure5", "unit-startup", root_seed, machine=machine,
              flavor=flavor, lrm=lrm)
        for machine, flavor, lrm in UNIT_CASES
    ]
    return cells


def figure6_cells(root_seed: int = 42,
                  quick: bool = False) -> List[SweepCell]:
    """The Figure 6 K-Means grid (36 cells; 16 with ``quick``)."""
    from repro.experiments.calibration import SCENARIOS, TASK_CONFIGS
    scenarios = [SCENARIOS[0], SCENARIOS[-1]] if quick else SCENARIOS
    task_counts = [8, 32] if quick else sorted(TASK_CONFIGS)
    return [
        _cell("figure6", "kmeans", root_seed, machine=machine,
              points=points, clusters=clusters, ntasks=ntasks,
              flavor=flavor)
        for machine in ("stampede", "wrangler")
        for points, clusters in scenarios
        for ntasks in task_counts
        for flavor in ("RP", "RP-YARN")
    ]


def ablations_cells(root_seed: int = 42) -> List[SweepCell]:
    return [_cell("ablations", kind, root_seed)
            for kind in ("integration-level", "spark-deploy-mode",
                         "am-reuse")]


def sensitivity_cells(root_seed: int = 42,
                      bandwidths_mb: Optional[Sequence[float]] = None
                      ) -> List[SweepCell]:
    """Lustre-bandwidth sweep: one cell per (bandwidth, flavor)."""
    return [
        _cell("sensitivity", "lustre-bw", root_seed, bw_mb=bw_mb,
              flavor=flavor)
        for bw_mb in (bandwidths_mb or [10, 30, 100, 300])
        for flavor in ("RP", "RP-YARN")
    ]


def chaos_cells(root_seed: int = 42,
                quick: bool = False) -> List[SweepCell]:
    """The fault-injection grid: bag chaos, NM loss, HDFS healing."""
    from repro.experiments.chaos import FAULT_RATES
    rates = FAULT_RATES[:2] if quick else FAULT_RATES
    cells = [
        _cell("chaos", "bag", root_seed, fault_rate=rate, flavor="RP")
        for rate in rates
    ]
    cells.append(_cell("chaos", "nm-loss", root_seed, machine="stampede"))
    cells.append(_cell("chaos", "hdfs-heal", root_seed, replication=2))
    return cells


def raptor_cells(root_seed: int = 42,
                 quick: bool = False) -> List[SweepCell]:
    """The task-overlay grid: throughput curve + equivalence + faults."""
    from repro.experiments.raptor import QUICK_NTASKS, THROUGHPUT_NTASKS
    counts = QUICK_NTASKS if quick else THROUGHPUT_NTASKS
    cells = [
        _cell("raptor", "throughput", root_seed, machine="stampede",
              ntasks=ntasks)
        for ntasks in counts
    ]
    cells.append(_cell("raptor", "equivalence", root_seed, ntasks=64))
    cells.append(_cell("raptor", "faults", root_seed,
                       ntasks=100 if quick else 400))
    return cells


def service_cells(root_seed: int = 42,
                  quick: bool = False) -> List[SweepCell]:
    """The multi-tenant service grid: load, fairness, admission,
    sharding."""
    cells = [
        _cell("service", "load", root_seed, tenants=4,
              sessions_per_tenant=8),
        _cell("service", "fairshare", root_seed, heavy_weight=4),
        _cell("service", "admission", root_seed, max_pending=8),
        _cell("service", "sharded", root_seed, shards=2, tenants=6),
    ]
    if not quick:
        cells.insert(1, _cell("service", "load", root_seed, tenants=8,
                              sessions_per_tenant=32))
    return cells


#: Grid name -> builder(root_seed, quick).  ``GRIDS`` (the public list
#: the CLI exposes) is asserted against this registry in the tests.
_GRID_BUILDERS = {
    "figure5": lambda root_seed, quick: figure5_cells(root_seed),
    "figure6": figure6_cells,
    "ablations": lambda root_seed, quick: ablations_cells(root_seed),
    "sensitivity": lambda root_seed, quick: sensitivity_cells(root_seed),
    "chaos": chaos_cells,
    "raptor": raptor_cells,
    "service": service_cells,
}


def build_cells(grid: str, root_seed: int = 42,
                quick: bool = False) -> List[SweepCell]:
    """The named grid's declarative cell list.

    Guarantees cell-key uniqueness: two cells with the same key would
    share a seed and silently shadow each other in keyed aggregates.
    """
    builder = _GRID_BUILDERS.get(grid)
    if builder is None:
        raise ValueError(f"unknown sweep grid {grid!r}; known: {GRIDS}")
    cells = builder(root_seed, quick)
    seen: Dict[str, SweepCell] = {}
    for cell in cells:
        if cell.key in seen:
            raise ValueError(
                f"duplicate sweep cell key {cell.key!r} in grid {grid!r}")
        seen[cell.key] = cell
    return cells


# ------------------------------------------------------------ cell runners
def _jsonify(value: Any) -> Any:
    """Dataclasses / numpy scalars -> plain JSON-serializable values."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonify(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if hasattr(value, "item") and not isinstance(
            value, (bool, int, float, str)):
        return value.item()          # numpy scalar
    return value


def _run_figure5_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.api import ComputeUnitDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.figure5 import StartupRow, UnitStartupRow
    from repro.experiments.harness import Testbed

    params = dict(cell.params)
    if cell.kind == "pilot-startup":
        testbed = Testbed(params["machine"], num_nodes=1, seed=cell.seed,
                          provision_hadoop=params["provision"])
        pilot, t_submit, t_active = testbed.start_pilot(
            nodes=1, agent_config=agent_config(params["lrm"]))
        return [_jsonify(StartupRow(
            machine=params["machine"], flavor=params["flavor"],
            pilot_startup=t_active - t_submit,
            lrm_setup=pilot.agent_info["lrm_setup_seconds"]))]
    if cell.kind == "unit-startup":
        samples = params.get("samples", 3)
        testbed = Testbed(params["machine"], num_nodes=1, seed=cell.seed)
        testbed.start_pilot(
            nodes=1, agent_config=agent_config(params["lrm"]))
        startups = []
        for _ in range(samples):
            units = testbed.umgr.submit_units(ComputeUnitDescription(
                executable="/bin/sleep", arguments=("1",),
                cores=1, cpu_seconds=1.0, memory_mb=1024))
            testbed.env.run(testbed.umgr.wait_units(units))
            if units[0].state.value != "Done":
                raise RuntimeError(
                    f"unit failed on {cell.key}: {units[0].stderr}")
            startups.append(units[0].startup_time)
        return [_jsonify(UnitStartupRow(
            machine=params["machine"], flavor=params["flavor"],
            unit_startup=sum(startups) / len(startups)))]
    raise ValueError(f"unknown figure5 cell kind {cell.kind!r}")


def _run_figure6_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.experiments.figure6 import run_figure6_cell
    params = dict(cell.params)
    row = run_figure6_cell(
        params["machine"], params["flavor"], params["points"],
        params["clusters"], params["ntasks"], seed=cell.seed)
    return [_jsonify(row)]


def _run_ablations_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.experiments import ablations
    runner = {
        "integration-level": ablations.run_integration_level,
        "spark-deploy-mode": ablations.run_spark_deploy_mode,
        "am-reuse": ablations.run_am_reuse,
    }[cell.kind]
    rows = runner(seed=cell.seed)
    return [_jsonify(r) for r in rows]


def _run_sensitivity_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.analytics import generate_points
    from repro.experiments import sensitivity
    params = dict(cell.params)
    points, clusters, ntasks, nodes = 1_000_000, 50, 32, 3
    data = generate_points(points, clusters, seed=1234)
    bw = params["bw_mb"] * 1e6
    runtime = sensitivity._run_cell(bw, params["flavor"], data, clusters,
                                    ntasks, nodes)
    return [{"lustre_bw": bw, "flavor": params["flavor"],
             "runtime": runtime}]


def _run_chaos_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.experiments.chaos import run_chaos_cell
    params = dict(cell.params)
    row = run_chaos_cell(cell.kind, seed=cell.seed,
                         flavor=params.get("flavor", "RP"),
                         fault_rate=params.get("fault_rate"))
    return [_jsonify(row)]


def _run_raptor_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.experiments import raptor
    params = dict(cell.params)
    if cell.kind == "throughput":
        row = raptor.run_raptor_throughput(
            params["ntasks"], machine=params["machine"], seed=cell.seed)
    elif cell.kind == "equivalence":
        row = raptor.run_raptor_equivalence(
            params["ntasks"], seed=cell.seed)
    elif cell.kind == "faults":
        row = raptor.run_raptor_faults(params["ntasks"], seed=cell.seed)
    else:
        raise ValueError(f"unknown raptor cell kind {cell.kind!r}")
    return [_jsonify(row)]


def _run_service_cell(cell: SweepCell) -> List[Dict[str, Any]]:
    from repro.experiments import service as service_exp
    params = dict(cell.params)
    if cell.kind == "load":
        row = service_exp.run_service_load(
            seed=cell.seed, tenants=params["tenants"],
            sessions_per_tenant=params["sessions_per_tenant"])
    elif cell.kind == "fairshare":
        row = service_exp.run_service_fairshare(
            seed=cell.seed, heavy_weight=float(params["heavy_weight"]))
    elif cell.kind == "admission":
        row = service_exp.run_service_admission(
            seed=cell.seed, max_pending=params["max_pending"])
    elif cell.kind == "sharded":
        row = service_exp.run_service_sharded(
            seed=cell.seed, shards=params["shards"],
            tenants=params["tenants"])
    else:
        raise ValueError(f"unknown service cell kind {cell.kind!r}")
    return [_jsonify(row)]


_CELL_RUNNERS = {
    "figure5": _run_figure5_cell,
    "figure6": _run_figure6_cell,
    "ablations": _run_ablations_cell,
    "sensitivity": _run_sensitivity_cell,
    "chaos": _run_chaos_cell,
    "raptor": _run_raptor_cell,
    "service": _run_service_cell,
}


def run_cell(cell: SweepCell) -> Dict[str, Any]:
    """Execute one cell (in this process) and capture its wall time.

    Top-level and picklable by name, so it doubles as the process-pool
    work function.
    """
    # Host-side wall time of the runner, reported but never fed back
    # into the simulation — results stay seed-deterministic.
    t0 = time.perf_counter()  # simlint: disable=SIM001
    rows = _CELL_RUNNERS[cell.grid](cell)
    wall = time.perf_counter() - t0  # simlint: disable=SIM001
    return {"key": cell.key, "seed": cell.seed, "rows": rows,
            "wall_seconds": wall, "pid": os.getpid()}


# ------------------------------------------------------------ sweep driver
@dataclass
class SweepRun:
    """Everything one sweep produced: deterministic rows + timing meta.

    ``results`` holds completed cells in declaration order — journaled
    cells recovered on resume and freshly executed ones merged into one
    list, so the aggregate (and its digest) is byte-identical whether a
    sweep ran uninterrupted or was killed and resumed any number of
    times.
    """

    grid: str
    root_seed: int
    jobs: int
    results: List[Dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Cells freshly executed by *this* call (resume skips journaled
    #: ones; ``max_cells`` truncates).
    executed: int = -1
    #: Cells recovered from the journal instead of re-run.
    skipped: int = 0
    #: Whether every cell of the grid has a result.
    complete: bool = True
    #: The journal directory, when this run was crash-safe.
    run_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.executed < 0:
            self.executed = len(self.results)

    def aggregate(self) -> Dict[str, Any]:
        """The deterministic aggregate: cells in declaration order, no
        timings.  Identical for any ``jobs`` value."""
        return {
            "grid": self.grid,
            "root_seed": self.root_seed,
            "cells": [{"key": r["key"], "seed": r["seed"],
                       "rows": r["rows"]} for r in self.results],
        }

    def aggregate_json(self) -> str:
        """Canonical JSON of :meth:`aggregate` — byte-comparable."""
        return json.dumps(self.aggregate(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 of the canonical aggregate, for quick comparisons."""
        return hashlib.sha256(self.aggregate_json().encode()).hexdigest()

    def report(self) -> Dict[str, Any]:
        """Aggregate + timing metadata (the JSON artifact written by
        ``repro sweep --output``)."""
        return {
            **self.aggregate(),
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "digest": self.digest(),
            "complete": self.complete,
            "executed": self.executed,
            "skipped": self.skipped,
            "cell_timings": {r["key"]: r["wall_seconds"]
                             for r in self.results},
        }


def sweep_spec(grid: str, root_seed: int, quick: bool,
               cells: List[SweepCell]) -> Dict[str, Any]:
    """A sweep's journaled identity: everything that defines its rows.

    ``jobs`` is deliberately absent — the aggregate is independent of
    parallelism, so a sweep may be killed under ``--jobs 8`` and
    resumed under ``--jobs 1`` against the same journal.
    """
    return {"grid": grid, "root_seed": root_seed, "quick": quick,
            "cells": [{"key": c.key, "seed": c.seed} for c in cells]}


def run_sweep(grid: str, root_seed: int = 42, jobs: Optional[int] = None,
              quick: bool = False,
              cells: Optional[List[SweepCell]] = None,
              run_dir: Optional[str] = None, resume: bool = False,
              max_cells: Optional[int] = None) -> SweepRun:
    """Run a grid, sequentially (``jobs=1``) or over a process pool.

    ``jobs=None`` uses ``os.cpu_count()``.  ``jobs=1`` is the in-process
    sequential reference path — no pool, no pickling — and is guaranteed
    to produce the same aggregate as any parallel run.

    ``run_dir`` makes the run crash-safe: the sweep's identity is
    committed to ``spec.json`` before any cell starts, and each cell's
    result is journaled durably (fsync) the moment it completes — in
    the parent process, so this works under the process pool too.
    ``resume=True`` re-runs only cells the journal does not already
    hold; resuming a complete journal executes nothing and returns the
    recovered (byte-identical) run.  ``max_cells`` caps how many cells
    *this* call executes, for incremental runs and deterministic
    interruption tests.
    """
    if cells is None:
        cells = build_cells(grid, root_seed=root_seed, quick=quick)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if max_cells is not None and max_cells < 0:
        raise ValueError(f"max_cells must be >= 0, got {max_cells}")
    journal = None
    done: Dict[str, Dict[str, Any]] = {}
    if run_dir is not None:
        from repro.persist import JournalError, SweepJournal
        journal = SweepJournal(run_dir)
        journal.write_spec(sweep_spec(grid, root_seed, quick, cells))
        done = journal.completed()
        if done and not resume:
            raise JournalError(
                f"run dir {run_dir} already journals {len(done)} "
                f"completed cell(s); resume with --resume or start a "
                f"fresh run dir")
    elif resume:
        raise ValueError("resume=True requires a run_dir")
    pending = [cell for cell in cells if cell.key not in done]
    if max_cells is not None:
        pending = pending[:max_cells]
    # Host-side sweep wall time (progress reporting only, not results).
    t0 = time.perf_counter()  # simlint: disable=SIM001
    fresh: Dict[str, Dict[str, Any]] = {}
    try:
        if jobs == 1 or len(pending) <= 1:
            for cell in pending:
                result = run_cell(cell)
                fresh[result["key"]] = result
                if journal is not None:
                    journal.record(result["key"], result)
        else:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as ex:
                # Journal in completion order for earliest durability;
                # the aggregate is reassembled in declaration order
                # below, so worker finish order never shows through.
                futures = {ex.submit(run_cell, cell): cell
                           for cell in pending}
                for future in as_completed(futures):
                    result = future.result()
                    fresh[result["key"]] = result
                    if journal is not None:
                        journal.record(result["key"], result)
    finally:
        if journal is not None:
            journal.close()
    wall = time.perf_counter() - t0  # simlint: disable=SIM001
    merged = {**done, **fresh}
    results = [merged[cell.key] for cell in cells if cell.key in merged]
    return SweepRun(grid=grid, root_seed=root_seed, jobs=jobs,
                    results=results, wall_seconds=wall,
                    executed=len(fresh), skipped=len(done),
                    complete=len(results) == len(cells),
                    run_dir=None if run_dir is None else str(run_dir))


class Sweep:
    """The object-level sweep API: configure, run, resume.

    A thin, picklable-free wrapper over :func:`run_sweep` that pairs a
    grid configuration with an optional crash-safe run directory::

        run = Sweep("figure5").run("runs/fig5")      # journaled
        ...                                          # kill -9 here
        run = Sweep.resume("runs/fig5")              # finishes the rest
        assert run.complete
    """

    def __init__(self, grid: str, root_seed: int = 42,
                 quick: bool = False, jobs: Optional[int] = None,
                 max_cells: Optional[int] = None):
        if grid not in _GRID_BUILDERS:
            raise ValueError(
                f"unknown sweep grid {grid!r}; known: {GRIDS}")
        self.grid = grid
        self.root_seed = root_seed
        self.quick = quick
        self.jobs = jobs
        self.max_cells = max_cells

    def cells(self) -> List[SweepCell]:
        return build_cells(self.grid, root_seed=self.root_seed,
                           quick=self.quick)

    def run(self, run_dir: Optional[str] = None,
            resume: bool = False) -> SweepRun:
        return run_sweep(self.grid, root_seed=self.root_seed,
                         jobs=self.jobs, quick=self.quick,
                         run_dir=run_dir, resume=resume,
                         max_cells=self.max_cells)

    @classmethod
    def resume(cls, run_dir: str, jobs: Optional[int] = None,
               max_cells: Optional[int] = None) -> SweepRun:
        """Continue a journaled sweep from its run directory alone.

        The sweep's identity is read back from ``spec.json``, so the
        caller needs no memory of the original grid or seed.
        """
        from repro.persist import JournalError, SweepJournal
        spec = SweepJournal(run_dir).read_spec()
        if spec is None:
            raise JournalError(
                f"no sweep journal in {run_dir} (missing spec.json)")
        sweep = cls(grid=spec["grid"], root_seed=spec["root_seed"],
                    quick=spec["quick"], jobs=jobs, max_cells=max_cells)
        return sweep.run(run_dir=run_dir, resume=True)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Sweep {self.grid} root_seed={self.root_seed} "
                f"quick={self.quick}>")
