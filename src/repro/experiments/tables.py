"""Report formatting: paper-vs-measured tables for every experiment."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: Paper-reported anchors (from §IV text and reading Figures 5/6).
PAPER_TARGETS = {
    "pilot_startup_plain": (45.0, 80.0),        # seconds, both machines
    "mode1_overhead": (50.0, 85.0),             # on top of plain
    "mode2_setup": (0.0, 10.0),                 # "comparable to normal"
    "unit_startup_plain": (1.0, 8.0),
    "unit_startup_yarn": (25.0, 50.0),
    "yarn_speedup_1m_stampede": 3.2,            # paper: 3.2 at 32 tasks
    "rp_speedup_1m_stampede": 2.4,              # paper: 2.4
    "yarn_advantage_mean": 0.13,                # "on average 13%"
}


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered = [[f"{v:.1f}" if isinstance(v, float) else str(v)
                 for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered
              else len(h) for i, h in enumerate(headers)]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def within(value: float, band) -> str:
    """'OK' if value is inside (lo, hi), else how far off."""
    lo, hi = band
    if lo <= value <= hi:
        return "OK"
    return f"off (band {lo:g}-{hi:g})"


def figure5_report(pilot_rows, unit_rows) -> str:
    """Render Figure 5 main panel + inset with paper bands."""
    plain = {r.machine: r.pilot_startup for r in pilot_rows
             if r.flavor == "RP"}
    body = []
    for r in pilot_rows:
        note = ""
        if r.flavor == "RP":
            note = within(r.pilot_startup,
                          PAPER_TARGETS["pilot_startup_plain"])
        elif r.flavor.endswith("(Mode I)"):
            overhead = r.pilot_startup - plain[r.machine]
            note = (f"overhead {overhead:.0f}s "
                    f"{within(overhead, PAPER_TARGETS['mode1_overhead'])}")
        elif r.flavor.endswith("(Mode II)"):
            delta = abs(r.pilot_startup - plain[r.machine])
            note = (f"vs plain {delta:+.0f}s "
                    f"{within(delta, PAPER_TARGETS['mode2_setup'])}")
        body.append((r.machine, r.flavor, r.pilot_startup,
                     r.lrm_setup, note))
    main = format_table(
        ["machine", "flavor", "pilot startup (s)", "LRM setup (s)",
         "vs paper"], body)

    inset = format_table(
        ["machine", "flavor", "CU startup (s)", "vs paper"],
        [(r.machine, r.flavor, r.unit_startup,
          within(r.unit_startup,
                 PAPER_TARGETS["unit_startup_yarn"] if "YARN" in r.flavor
                 else PAPER_TARGETS["unit_startup_plain"]))
         for r in unit_rows])
    return (f"Figure 5 (main) — pilot startup\n{main}\n\n"
            f"Figure 5 (inset) — Compute-Unit startup\n{inset}")


def figure6_report(rows) -> str:
    """Render the Figure 6 grid plus the derived paper claims."""
    from repro.experiments.figure6 import speedup, yarn_advantage

    table = format_table(
        ["machine", "flavor", "points", "clusters", "tasks", "nodes",
         "runtime (s)", "centroids"],
        [(r.machine, r.flavor, f"{r.points:,}", f"{r.clusters:,}",
          r.ntasks, r.nodes, r.runtime, "OK" if r.centroids_ok else "BAD")
         for r in rows])

    claims = []
    points_set = sorted({r.points for r in rows})
    machines = sorted({r.machine for r in rows})
    task_counts = sorted({r.ntasks for r in rows})
    if len(task_counts) >= 2:
        base, top = task_counts[0], task_counts[-1]
        for machine in machines:
            for pts in points_set:
                for flavor in ("RP", "RP-YARN"):
                    try:
                        s = speedup(rows, machine, flavor, pts,
                                    base_tasks=base, top_tasks=top)
                    except KeyError:
                        continue
                    claims.append(
                        f"speedup {machine:9s} {flavor:8s} "
                        f"{pts:>9,} pts ({base}->{top} tasks): {s:.2f}")
    adv = yarn_advantage(rows)
    claims.append(
        f"mean RP-YARN advantage (>=16 tasks): {adv * 100:+.1f}% "
        f"(paper: +13%)")
    return f"Figure 6 — K-Means time-to-completion\n{table}\n\n" + \
        "\n".join(claims)
