"""Experiment harnesses: one module per paper figure + ablations.

Each harness builds a fresh simulated testbed (machine template, batch
system, session), runs the paper's measurement procedure, and returns
structured rows that the benchmark suite prints next to the
paper-reported values.  All harnesses are deterministic for a given
root seed.

* :mod:`~repro.experiments.calibration` — every tunable constant, with
  the paper statement each one is calibrated against.
* :mod:`~repro.experiments.figure5` — Pilot startup (main) and
  Compute-Unit startup (inset) for RP / RP-YARN Mode I / Mode II on
  Stampede and Wrangler.
* :mod:`~repro.experiments.figure6` — K-Means time-to-completion over
  the three scenarios x three task counts x two machines x two
  runtimes.
* :mod:`~repro.experiments.ablations` — A1 integration level, A2 Spark
  deployment mode, A3 AM re-use.
"""

from repro.experiments.calibration import (
    CALIBRATED_AGENT,
    CALIBRATED_KMEANS_COST,
    CALIBRATED_RMS,
    CALIBRATED_YARN,
    SCENARIOS,
    TASK_CONFIGS,
)
from repro.experiments.figure5 import (
    run_figure5_pilot_startup,
    run_figure5_unit_startup,
)
from repro.experiments.figure6 import run_figure6, run_figure6_cell

__all__ = [
    "CALIBRATED_AGENT",
    "CALIBRATED_KMEANS_COST",
    "CALIBRATED_RMS",
    "CALIBRATED_YARN",
    "SCENARIOS",
    "TASK_CONFIGS",
    "run_figure5_pilot_startup",
    "run_figure5_unit_startup",
    "run_figure6",
    "run_figure6_cell",
]
