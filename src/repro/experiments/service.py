"""Multi-tenant service experiment cells (the ``service`` sweep grid).

Four cell kinds, all seed-deterministic rows over
:mod:`repro.service`:

* ``load`` — open-loop multi-tenant load through one
  :class:`~repro.service.service.PilotService`; throughput, concurrency
  and latency percentiles;
* ``fairshare`` — a heavy-weight and a light-weight tenant saturating
  a slow drain; shows the weighted deficit round-robin favouring the
  heavy tenant without starving the light one;
* ``admission`` — a tight per-tenant quota against an overloaded
  service; shows explicit ``Throttled``/``Rejected`` outcomes instead
  of unbounded queues;
* ``sharded`` — the same load split shared-nothing across shards, with
  the merged-aggregate digest recorded (pinned byte-identical for
  ``jobs=1`` vs ``jobs=N`` by the determinism tests).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.service import (
    LoadSpec,
    PilotService,
    ServiceConfig,
    TenantQuota,
    run_load,
    run_sharded,
)


def run_service_load(seed: int = 42, tenants: int = 8,
                     sessions_per_tenant: int = 16,
                     tasks_per_session: int = 2) -> Dict[str, Any]:
    """One open-loop load scenario; returns the flat result row."""
    row = run_load(LoadSpec(
        tenants=tenants, sessions_per_tenant=sessions_per_tenant,
        tasks_per_session=tasks_per_session, seed=seed))
    return {"kind": "load", **row}


def run_service_admission(seed: int = 42,
                          max_pending: int = 8) -> Dict[str, Any]:
    """Overload a tightly-quota'd service: many sessions per tenant, a
    slow drain tick, and a small bounded queue, so admission control has
    to throttle and reject (both visibly accounted in the row)."""
    row = run_load(LoadSpec(
        tenants=4, sessions_per_tenant=40, raptor_workers=8,
        tick_interval=2.0, max_pending=max_pending, seed=seed))
    if row["tickets_rejected"] == 0:
        raise RuntimeError(
            "admission cell produced no rejections; quota not binding")
    return {"kind": "admission", "max_pending": max_pending, **row}


def run_service_fairshare(seed: int = 42, heavy_weight: float = 4.0,
                          tickets_per_tenant: int = 48) -> Dict[str, Any]:
    """Two saturating tenants with a ``heavy_weight``:1 weight ratio.

    Both burst-submit the same backlog against a deliberately slow,
    small-batch drain; the heavy tenant's queue drains earlier (lower
    mean enqueue->dispatch latency) while the light tenant still makes
    progress every tick — the starvation-freedom half is pinned by the
    fair-share tests.
    """
    from repro.api import RaptorConfig, TaskDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("stampede", num_nodes=3, seed=seed)
    env = testbed.env
    service = PilotService(testbed.session, ServiceConfig(
        tick_interval=0.5, max_batch_per_tick=8, drr_quantum=1.0))
    pilot, _, _ = testbed.start_pilot(
        nodes=2, agent_config=agent_config("fork"))
    service.add_pilots(pilot)
    overlay = testbed.session.raptor(
        pilot, workers=16, config=RaptorConfig(retain_results=False))
    env.run(overlay.ready())
    service.attach_overlay(overlay)

    service.register_tenant("heavy", TenantQuota(weight=heavy_weight))
    service.register_tenant("light", TenantQuota(weight=1.0))
    task = TaskDescription(cpu_seconds=0.25)
    tickets = {}
    for tenant in ("heavy", "light"):
        sess = service.open_session(tenant)
        tickets[tenant] = [sess.submit_raptor([task])
                           for _ in range(tickets_per_tenant)]
        sess.close()
    env.run(service.quiesced())
    means = {tenant: sum(t.submit_latency for t in batch) / len(batch)
             for tenant, batch in tickets.items()}
    env.run(overlay.close(drain=True))
    return {
        "kind": "fairshare",
        "heavy_weight": heavy_weight,
        "tickets_per_tenant": tickets_per_tenant,
        "heavy_mean_submit": means["heavy"],
        "light_mean_submit": means["light"],
        # > 1 means the heavy tenant's backlog drained faster.
        "heavy_advantage": means["light"] / means["heavy"],
    }


def run_service_sharded(seed: int = 42, shards: int = 2,
                        tenants: int = 6,
                        sessions_per_tenant: int = 4) -> Dict[str, Any]:
    """A shared-nothing sharded run (sequential here — sweep cells may
    already be process-pool workers, and pools do not nest); records
    the merged totals plus the aggregate digest the determinism CI
    compares across ``--jobs`` values."""
    spec = LoadSpec(tenants=tenants,
                    sessions_per_tenant=sessions_per_tenant,
                    raptor_workers=8, seed=seed)
    sharded = run_sharded(spec, shards=shards, jobs=1)
    return {"kind": "sharded", "shards": shards,
            "digest": sharded.digest(), **sharded.aggregate()["totals"]}
