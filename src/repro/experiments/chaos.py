"""Chaos experiments: completion-time inflation under injected faults.

Three deterministic scenarios, all driven by :mod:`repro.faults`:

* **bag** — a bag of tasks with a fraction poisoned by transient
  executor errors; the Unit-Manager's :class:`RestartPolicy` absorbs
  them, and the row reports the makespan inflation vs the fault rate.
* **nm-loss** — a Mode I RP-YARN pilot loses a NodeManager mid-run;
  the YARN RM expires the node, the per-unit AM re-attempts killed
  containers on surviving nodes, and every unit still finishes.
* **hdfs-heal** — an HDFS cluster with the replication monitor armed
  loses a DataNode; the NameNode detects the silence, re-replicates
  and the row reports the measured MTTR plus the restored replication
  factor.

Everything is a function of (cell parameters, seed): the chaos grid's
canonical aggregate is byte-identical across ``--jobs`` values and
with the runtime sanitizer on or off.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

#: Fault rates swept by the bag scenario (fraction of units poisoned).
FAULT_RATES = (0.0, 0.25, 0.5)

_FLAVOR_LRM = {"RP": "fork", "RP-YARN": "yarn"}


@dataclass
class ChaosBagRow:
    """One bag-of-tasks cell: fault rate vs completion-time inflation."""

    flavor: str
    fault_rate: float
    units: int
    poisoned: int
    restarts: int
    recovered: int
    done: int
    makespan: float


@dataclass
class NodeLossRow:
    """One NodeManager-loss cell: YARN-side recovery."""

    machine: str
    units: int
    done: int
    reattempts: int
    nodes_lost: int
    makespan: float


@dataclass
class HdfsHealRow:
    """One DataNode-loss cell: NameNode-driven re-replication."""

    replication: int
    files: int
    rf_before: int
    rf_after_loss: int
    rf_restored: int
    mttr: float


def run_chaos_bag(flavor: str = "RP", fault_rate: float = 0.0,
                  ntasks: int = 16, nodes: int = 2,
                  seed: int = 42) -> ChaosBagRow:
    """A bag of tasks with ``fault_rate`` of them poisoned once each."""
    from repro.api import (ComputeUnitDescription, RestartPolicy,
                           UnitManager)
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("stampede", num_nodes=nodes, seed=seed)
    policy = RestartPolicy(max_restarts=3, backoff=0.5,
                           backoff_factor=2.0, backoff_cap=8.0)
    umgr = UnitManager(testbed.session, restart_policy=policy)
    testbed.umgr = umgr
    testbed.start_pilot(
        nodes=nodes, agent_config=agent_config(_FLAVOR_LRM[flavor]))
    units = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=30.0, memory_mb=1024,
                               name=f"chaos-{i}")
        for i in range(ntasks)])
    npoison = round(fault_rate * ntasks)
    for i in range(npoison):
        # evenly spread over the bag, deterministically
        testbed.session.faults.unit_error(
            units[(i * ntasks) // npoison].uid, times=1)
    t0 = testbed.env.now
    testbed.env.run(umgr.wait_units(units))
    finals = [umgr.final_unit(u) for u in units]
    done = sum(1 for u in finals if u.state.value == "Done")
    restarts = sum(umgr._restarts_used.values())
    recovered = sum(
        1 for u, f in zip(units, finals, strict=True)
        if f.state.value == "Done" and f.uid != u.uid)
    return ChaosBagRow(
        flavor=flavor, fault_rate=fault_rate, units=ntasks,
        poisoned=npoison, restarts=restarts, recovered=recovered,
        done=done, makespan=testbed.env.now - t0)


def run_nm_loss(machine: str = "stampede", ntasks: int = 12,
                nodes: int = 2, seed: int = 42) -> NodeLossRow:
    """Kill a NodeManager mid-run; AM re-attempts finish every unit."""
    from repro.api import (ComputeUnitDescription, RestartPolicy,
                           UnitManager)
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed(machine, num_nodes=nodes, seed=seed)
    plan = testbed.session.faults   # install the injector before the
    tel = testbed.session.telemetry  # Mode I clusters come up
    # Container kills are absorbed YARN-side (AM re-attempts); units
    # whose *AM* died with the node are resubmitted client-side.
    testbed.umgr = UnitManager(
        testbed.session,
        restart_policy=RestartPolicy(max_restarts=3, backoff=1.0))
    config = agent_config("yarn")
    config = config.replace(yarn_config=dataclasses.replace(
        config.yarn_config, am_max_attempts=3, am_retry_backoff=1.0))
    testbed.start_pilot(nodes=nodes, agent_config=config)
    units = testbed.umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=60.0, memory_mb=1024,
                               name=f"nmloss-{i}")
        for i in range(ntasks)])
    # the last allocation node hosts task containers; kill its NM once
    # the first wave is executing
    victim = testbed.site.machine.nodes[-1].name
    plan.nodemanager_loss(at=testbed.env.now + 40.0, node=victim)
    t0 = testbed.env.now
    testbed.env.run(testbed.umgr.wait_units(units))
    rm = plan.injector.yarn_clusters[0].resource_manager
    done = sum(1 for u in units
               if testbed.umgr.final_unit(u).state.value == "Done")
    return NodeLossRow(
        machine=machine, units=ntasks, done=done,
        reattempts=int(tel.counter("yarn.am.reattempts").total),
        nodes_lost=len(rm.lost_nodes),
        makespan=testbed.env.now - t0)


def run_hdfs_heal(nodes: int = 4, replication: int = 2, files: int = 4,
                  seed: int = 42) -> HdfsHealRow:
    """Lose a DataNode; the replication monitor restores the factor."""
    import repro.telemetry
    from repro.cluster import Machine, stampede
    from repro.cluster.storage import MB
    from repro.faults import FaultPlan
    from repro.hdfs import HdfsCluster
    from repro.sim import Environment, SeedSequenceRegistry

    env = Environment()
    plan = FaultPlan(env=env)  # installs env.faults before registration
    tel = repro.telemetry.install(env)
    machine = Machine(env, stampede(num_nodes=nodes))
    rng = SeedSequenceRegistry(seed).stream("hdfs")
    hdfs = HdfsCluster(env, machine, machine.nodes,
                       replication=replication, rng=rng,
                       auto_heal=True, heal_interval=1.0, dn_timeout=3.0)
    env.run(env.process(hdfs.start()))
    client = hdfs.client(hdfs.master_node.name)
    paths = [f"/chaos/f{i}" for i in range(files)]

    def put_all():
        for path in paths:
            yield env.process(client.put(path, 64 * MB))

    env.run(env.process(put_all()))
    nn = hdfs.namenode
    rf_before = min(nn.replication_factor_of(p) for p in paths)
    # kill a DataNode that holds replicas (never the writer-local master)
    victim = sorted(dn.name for dn in hdfs.datanodes
                    if dn.name != hdfs.master_node.name and dn.blocks)[0]
    plan.datanode_loss(at=env.now + 2.0, node=victim)
    env.run(until=env.now + 5.0)
    rf_after_loss = min(nn.replication_factor_of(p) for p in paths)
    env.run(until=env.now + 60.0)
    rf_restored = min(nn.replication_factor_of(p) for p in paths)
    hdfs.stop()
    mttr_hist = tel.histogram("hdfs.rereplication_mttr")
    return HdfsHealRow(
        replication=replication, files=files, rf_before=rf_before,
        rf_after_loss=rf_after_loss, rf_restored=rf_restored,
        mttr=mttr_hist.max if mttr_hist.count else -1.0)


def run_chaos_cell(kind: str, seed: int,
                   flavor: str = "RP",
                   fault_rate: Optional[float] = None):
    """Dispatch one chaos cell (used by the sweep runner)."""
    if kind == "bag":
        return run_chaos_bag(flavor=flavor, fault_rate=fault_rate or 0.0,
                             seed=seed)
    if kind == "nm-loss":
        return run_nm_loss(seed=seed)
    if kind == "hdfs-heal":
        return run_hdfs_heal(seed=seed)
    raise ValueError(f"unknown chaos cell kind {kind!r}")
