"""Figure 6: K-Means time-to-completion on Stampede and Wrangler.

Grid: 3 scenarios (10k pts/5k clusters, 100k/500, 1M/50; 3-D; 2
iterations) x task counts {8: 1 node, 16: 2, 32: 3} x machines
{Stampede, Wrangler} x runtimes {RADICAL-Pilot, RADICAL-Pilot-YARN}.

Measurement, following §IV-B: time-to-completion of the K-Means run;
"for RADICAL-Pilot-YARN the runtimes include the time required to
download and start the YARN cluster on the allocated resources" — so
the YARN rows add the Mode I LRM setup to the workload span.

K-Means executes for real (NumPy partial sums per unit); the returned
centroids are asserted against the single-process reference, so every
benchmark run re-validates numerical correctness alongside timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_pilot
from repro.experiments.calibration import (
    CALIBRATED_KMEANS_COST,
    DIM,
    ITERATIONS,
    SCENARIOS,
    TASK_CONFIGS,
    agent_config,
)
from repro.experiments.harness import Testbed


@dataclass
class KMeansRow:
    """One bar of Figure 6."""

    machine: str
    flavor: str                 # "RP" | "RP-YARN"
    points: int
    clusters: int
    ntasks: int
    nodes: int
    runtime: float              # seconds, incl. YARN setup for RP-YARN
    lrm_setup: float
    centroids_ok: bool


_POINTS_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def _points_for(points: int, clusters: int) -> np.ndarray:
    key = (points, clusters)
    if key not in _POINTS_CACHE:
        _POINTS_CACHE[key] = generate_points(points, clusters, dim=DIM,
                                             seed=1234)
    return _POINTS_CACHE[key]


def run_figure6_cell(machine: str, flavor: str, points: int,
                     clusters: int, ntasks: int,
                     seed: int = 42, **agent_overrides) -> KMeansRow:
    """Run one (machine, runtime, scenario, task-count) cell.

    ``agent_overrides`` are forwarded to the agent configuration —
    e.g. ``reuse_application_master=True`` to measure the paper's
    proposed optimization on the real workload.
    """
    nodes = TASK_CONFIGS[ntasks]
    lrm = "yarn" if flavor == "RP-YARN" else "fork"
    testbed = Testbed(machine, num_nodes=nodes, seed=seed)
    pilot, _, t_active = testbed.start_pilot(
        nodes=nodes, agent_config=agent_config(lrm, **agent_overrides))

    data = _points_for(points, clusters)
    holder: Dict[str, object] = {}

    def workload():
        centroids, units = yield from run_kmeans_pilot(
            testbed.umgr, data, clusters, ntasks=ntasks,
            iterations=ITERATIONS, cost=CALIBRATED_KMEANS_COST)
        holder["centroids"] = centroids

    t0 = testbed.env.now
    testbed.run(workload())
    span = testbed.env.now - t0

    lrm_setup = pilot.agent_info["lrm_setup_seconds"]
    runtime = span + (lrm_setup if flavor == "RP-YARN" else 0.0)

    expected = kmeans_reference(data, clusters, iterations=ITERATIONS)
    ok = np.allclose(holder["centroids"], expected)
    return KMeansRow(machine=machine, flavor=flavor, points=points,
                     clusters=clusters, ntasks=ntasks, nodes=nodes,
                     runtime=runtime, lrm_setup=lrm_setup,
                     centroids_ok=ok)


def run_figure6(machines: Optional[List[str]] = None,
                flavors: Optional[List[str]] = None,
                scenarios=None, task_counts=None,
                seed: int = 42) -> List[KMeansRow]:
    """The full Figure 6 grid (36 cells by default)."""
    rows = []
    for machine in machines or ["stampede", "wrangler"]:
        for points, clusters in scenarios or SCENARIOS:
            for ntasks in task_counts or sorted(TASK_CONFIGS):
                for flavor in flavors or ["RP", "RP-YARN"]:
                    rows.append(run_figure6_cell(
                        machine, flavor, points, clusters, ntasks,
                        seed=seed))
    return rows


# ------------------------------------------------------- derived metrics
def speedup(rows: List[KMeansRow], machine: str, flavor: str,
            points: int, base_tasks: int = 8,
            top_tasks: int = 32) -> float:
    """Speedup of top_tasks over base_tasks for one scenario/flavor."""
    sel = {r.ntasks: r for r in rows
           if r.machine == machine and r.flavor == flavor
           and r.points == points}
    return sel[base_tasks].runtime / sel[top_tasks].runtime


def yarn_advantage(rows: List[KMeansRow], min_tasks: int = 16) -> float:
    """Mean relative runtime reduction of RP-YARN vs RP (>= min_tasks).

    The paper: "In particular for larger number of tasks, we observed
    on average 13% shorter runtimes for RADICAL-Pilot-YARN."
    """
    pairs = []
    for r in rows:
        if r.flavor != "RP" or r.ntasks < min_tasks:
            continue
        twin = next((y for y in rows if y.flavor == "RP-YARN"
                     and y.machine == r.machine and y.points == r.points
                     and y.ntasks == r.ntasks), None)
        if twin is not None:
            pairs.append((r.runtime, twin.runtime))
    if not pairs:
        return 0.0
    return float(np.mean([(rp - ry) / rp for rp, ry in pairs]))
