"""Ablations: quantifying the paper's design choices.

* **A1 — integration level (§III-C):** the paper integrates YARN at the
  RADICAL-Pilot-Agent level and rejects Pilot-Manager-level integration
  (firewalls, chatty AM protocol over the WAN).  We wire the rejected
  design — every YARN protocol interaction crossing the client<->site
  WAN — and measure the extra Compute-Unit latency it would pay even
  where firewalls allowed it.
* **A2 — Spark deployment mode (§III-D):** standalone (chosen) vs
  Spark-on-YARN (rejected: "two instead of one framework need to be
  configured and run").  We measure time-to-usable-cluster both ways.
* **A3 — AM re-use (§III-C/IV-A):** the paper names Application Master
  and container re-use as the optimization that "will reduce the
  startup time significantly"; we implement it and measure warm-unit
  startup with and without.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.api import ComputeUnitDescription
from repro.experiments.calibration import CALIBRATED_YARN, agent_config
from repro.experiments.harness import Testbed, experiment_machine
from repro.cluster.machine import Machine
from repro.sim import Environment
from repro.spark.cluster import SparkStandaloneCluster
from repro.hdfs.cluster import HdfsCluster
from repro.yarn.cluster import YarnCluster
from repro.yarn.records import AppSpec, YarnResource


# ------------------------------------------------------------------- A1
@dataclass
class IntegrationLevelRow:
    wiring: str            # "agent-level" | "pilot-manager-level"
    unit_startup: float    # seconds
    wan_roundtrips: int


#: Client<->cluster protocol interactions a PM-level integration would
#: push over the WAN per Compute-Unit: application submission, AM
#: registration relay, container request, container grant, launch RPC,
#: plus status polls at the AM heartbeat over the startup window.
PM_LEVEL_RPC_PER_UNIT = 5


def run_integration_level(machine: str = "stampede",
                          wan_rtt: float = 0.100,
                          seed: int = 42) -> List[IntegrationLevelRow]:
    """A1: CU startup under both wirings.

    Agent-level is measured end-to-end on a warm YARN pilot.  The
    PM-level variant adds one WAN round-trip per protocol interaction
    plus WAN-paced status polling (the AM heartbeat effectively
    stretches to the WAN RTT).
    """
    testbed = Testbed(machine, num_nodes=1, seed=seed)
    testbed.start_pilot(nodes=1, agent_config=agent_config("yarn"))
    units = testbed.umgr.submit_units(ComputeUnitDescription(
        cores=1, cpu_seconds=1.0, memory_mb=1024))
    testbed.env.run(testbed.umgr.wait_units(units))
    agent_level = units[0].startup_time

    # Rejected design: same choreography, chatty parts over the WAN.
    heartbeats_in_startup = agent_level / CALIBRATED_YARN.am_heartbeat
    pm_level = (agent_level
                + PM_LEVEL_RPC_PER_UNIT * 2 * wan_rtt
                + heartbeats_in_startup * 2 * wan_rtt)
    return [
        IntegrationLevelRow("agent-level", agent_level, 0),
        IntegrationLevelRow("pilot-manager-level", pm_level,
                            PM_LEVEL_RPC_PER_UNIT
                            + int(heartbeats_in_startup)),
    ]


# ------------------------------------------------------------------- A2
@dataclass
class SparkDeployRow:
    mode: str              # "standalone" | "spark-on-yarn"
    cluster_ready: float   # seconds from bootstrap start
    frameworks_started: int


def run_spark_deploy_mode(machine: str = "stampede", num_nodes: int = 2,
                          num_executors: int = 2,
                          seed: int = 42) -> List[SparkDeployRow]:
    """A2: time until Spark executors are usable, both deployments."""
    rows = []

    # --- standalone (chosen) ---
    env = Environment()
    m = Machine(env, experiment_machine(machine, num_nodes))
    spark = SparkStandaloneCluster(env, m, m.nodes)

    def standalone():
        yield env.process(spark.start())
        ctx = yield from spark.context()
        ctx.stop()

    t0 = env.now
    env.run(env.process(standalone()))
    rows.append(SparkDeployRow("standalone", env.now - t0, 1))

    # --- Spark on YARN (rejected) ---
    env2 = Environment()
    m2 = Machine(env2, experiment_machine(machine, num_nodes))
    hdfs = HdfsCluster(env2, m2, m2.nodes, replication=2)
    yarn = YarnCluster(env2, m2, m2.nodes,
                       config=CALIBRATED_YARN.scaled(m2.spec.cpu_speed))

    def on_yarn():
        # both frameworks must be configured and started (the paper's
        # stated objection)
        yield env2.process(hdfs.start())
        yield env2.process(yarn.start())

        def spark_am(ctx):
            # Spark's YARN AM: request one executor container per
            # executor, wait for them all to launch.
            ctx.request_containers(
                num_executors, YarnResource(4096, 2))
            got = yield from ctx.wait_for_containers(num_executors)

            def executor(env_, c):
                yield env_.timeout(4.0)   # executor JVM

            yield ctx.env.all_of([ctx.start_container(c, executor)
                                  for c in got])
            ctx.finish("SUCCEEDED")

        client = yarn.client()
        app = yield from client.submit(AppSpec(
            name="spark-on-yarn", am_resource=YarnResource(1024, 1),
            am_program=spark_am, app_type="SPARK"))
        yield from client.wait_for_completion(app)

    t0 = env2.now
    env2.run(env2.process(on_yarn()))
    rows.append(SparkDeployRow("spark-on-yarn", env2.now - t0, 2))
    return rows


# ------------------------------------------------------------------- A3
@dataclass
class AmReuseRow:
    mode: str              # "per-unit AM" | "re-used AM"
    warm_unit_startup: float


def run_am_reuse(machine: str = "stampede", samples: int = 4,
                 seed: int = 42) -> List[AmReuseRow]:
    """A3: warm Compute-Unit startup with and without AM re-use."""
    rows = []
    for label, reuse in (("per-unit AM", False), ("re-used AM", True)):
        testbed = Testbed(machine, num_nodes=1, seed=seed)
        testbed.start_pilot(nodes=1, agent_config=agent_config(
            "yarn", reuse_application_master=reuse))
        # warm-up unit: pays pool-AM startup in the re-use case
        warmup = testbed.umgr.submit_units(ComputeUnitDescription(
            cores=1, cpu_seconds=1.0, memory_mb=1024))
        testbed.env.run(testbed.umgr.wait_units(warmup))
        startups = []
        for _ in range(samples):
            units = testbed.umgr.submit_units(ComputeUnitDescription(
                cores=1, cpu_seconds=1.0, memory_mb=1024))
            testbed.env.run(testbed.umgr.wait_units(units))
            startups.append(units[0].startup_time)
        rows.append(AmReuseRow(label, sum(startups) / len(startups)))
    return rows
