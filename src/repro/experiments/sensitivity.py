"""Sensitivity analysis: where the RP vs RP-YARN crossover falls.

The paper's Figure 6 outcome hinges on the balance between the shared
filesystem's job-visible bandwidth (hurting plain RP at scale) and
YARN's fixed per-unit overheads.  This sweep varies the Lustre share
on the Stampede template and reruns the paper's most I/O-sensitive
cell (1M points / 50 clusters / 32 tasks), locating the bandwidth at
which the YARN advantage crosses zero — the "which runtime should I
use on this machine?" answer the paper's discussion asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

import numpy as np

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_pilot
from repro.cluster.machine import stampede
from repro.cluster.storage import StorageSpec
from repro.api import PilotManager, Session, UnitManager
from repro.api import ComputePilotDescription, PilotState
from repro.experiments.calibration import (
    CALIBRATED_KMEANS_COST,
    CALIBRATED_RMS,
    agent_config,
)
from repro.saga import Registry, Site
from repro.sim import Environment


@dataclass
class SensitivityRow:
    lustre_bw: float          # bytes/s (job-visible share)
    rp_runtime: float
    yarn_runtime: float

    @property
    def yarn_advantage(self) -> float:
        return (self.rp_runtime - self.yarn_runtime) / self.rp_runtime


def _run_cell(lustre_bw: float, flavor: str, points: np.ndarray,
              clusters: int, ntasks: int, nodes: int) -> float:
    spec = stampede(num_nodes=nodes)
    spec = replace(spec, shared_fs=StorageSpec(
        name="lustre-sweep", aggregate_bw=lustre_bw,
        per_stream_bw=lustre_bw, latency=0.040,
        capacity=spec.shared_fs.capacity))
    env = Environment()
    registry = Registry()
    site = registry.register(Site(env, spec, rms_config=CALIBRATED_RMS))
    session = Session(env, registry)
    pmgr, umgr = PilotManager(session), UnitManager(session)
    lrm = "yarn" if flavor == "RP-YARN" else "fork"
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=nodes, runtime=24 * 60.0,
        agent_config=agent_config(lrm)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))

    def workload():
        yield from run_kmeans_pilot(
            umgr, points, clusters, ntasks=ntasks, iterations=2,
            cost=CALIBRATED_KMEANS_COST)

    t0 = env.now
    env.run(env.process(workload()))
    span = env.now - t0
    setup = pilot.agent_info["lrm_setup_seconds"]
    return span + (setup if flavor == "RP-YARN" else 0.0)


def sweep_lustre_bandwidth(
        bandwidths_mb: Optional[List[float]] = None,
        points: int = 1_000_000, clusters: int = 50,
        ntasks: int = 32, nodes: int = 3) -> List[SensitivityRow]:
    """Run the sweep; returns one row per bandwidth point."""
    data = generate_points(points, clusters, seed=1234)
    rows = []
    for bw_mb in bandwidths_mb or [10, 30, 100, 300]:
        bw = bw_mb * 1e6
        rows.append(SensitivityRow(
            lustre_bw=bw,
            rp_runtime=_run_cell(bw, "RP", data, clusters, ntasks, nodes),
            yarn_runtime=_run_cell(bw, "RP-YARN", data, clusters,
                                   ntasks, nodes)))
    return rows


def crossover_bandwidth(rows: List[SensitivityRow]) -> Optional[float]:
    """First bandwidth (by increasing bw) where YARN stops winning."""
    for row in sorted(rows, key=lambda r: r.lustre_bw):
        if row.yarn_advantage <= 0:
            return row.lustre_bw
    return None
