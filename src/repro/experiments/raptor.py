"""Raptor overlay experiments: overlay vs. per-unit-YARN throughput.

The paper's Fig. 5 inset shows Compute-Unit startup dominated by the
2-step AM -> container allocation; this module quantifies what the
:mod:`repro.raptor` overlay buys back:

* **throughput** — the same function workload executed (a) as a task
  stream over a warm master/worker overlay and (b) as individual
  Compute-Units through the per-unit YARN path, reported as tasks/sec.
  The per-unit rate is measured on a capped steady-state sample
  (``per_unit_sample``) because the per-unit path at 1e5+ units is
  exactly the bottleneck the overlay removes; the rate extrapolates
  because per-unit startup cost is constant per unit.
* **equivalence** — both paths execute the identical seeded workload
  and must produce identical task results (same values, same order).
* **faults** — a worker node crashes mid-stream under a
  :class:`~repro.api.RestartPolicy`; in-flight tasks are re-dispatched
  and the stream still completes.

All rows are functions of (parameters, seed) only — sim-clock derived,
wall-clock free — so the ``raptor`` sweep grid aggregates byte-identically
across ``--jobs`` values and under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional

#: Task counts swept by the full throughput grid (the 1e4-1e6 range the
#: many-task literature targets) and by the CI-sized ``--quick`` grid.
THROUGHPUT_NTASKS = (10_000, 100_000, 1_000_000)
QUICK_NTASKS = (500, 2_000)

#: Steady-state sample size for the per-unit YARN rate measurement.
PER_UNIT_SAMPLE = 256

#: Modeled compute per task (reference-CPU seconds): small enough that
#: per-task overhead — not compute — dominates the per-unit path.
TASK_CPU_SECONDS = 0.05


@dataclass
class RaptorThroughputRow:
    """One throughput cell: overlay vs. per-unit tasks/sec."""

    machine: str
    ntasks: int
    workers: int
    overlay_tasks_per_sec: float
    per_unit_tasks_per_sec: float
    per_unit_sample: int
    speedup: float
    overlay_setup_seconds: float
    tasks_completed: int
    tasks_failed: int


@dataclass
class RaptorEquivalenceRow:
    """One equivalence cell: both paths, same workload, same results."""

    ntasks: int
    overlay_digest: str
    per_unit_digest: str
    identical: bool


@dataclass
class RaptorFaultRow:
    """One fault cell: worker crash + retry under a restart policy."""

    ntasks: int
    workers: int
    workers_lost: int
    tasks_retried: int
    tasks_completed: int
    tasks_failed: int
    all_completed: bool
    makespan: float


def _results_digest(values: List) -> str:
    """Canonical digest of an ordered result list."""
    payload = json.dumps(values, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _workload_value(seed: int, index: int) -> int:
    """The deterministic per-task payload both paths must agree on."""
    return (seed * 1_000_003 + index * index) % 7_919


def _yarn_testbed(machine: str, nodes: int, seed: int):
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed(machine, num_nodes=nodes + 1, seed=seed)
    pilot, _, _ = testbed.start_pilot(
        nodes=nodes, agent_config=agent_config("yarn"))
    return testbed, pilot


def run_raptor_throughput(ntasks: int, machine: str = "stampede",
                          nodes: int = 2, workers: Optional[int] = None,
                          per_unit_sample: int = PER_UNIT_SAMPLE,
                          seed: int = 42) -> RaptorThroughputRow:
    """Overlay vs. per-unit-YARN tasks/sec for one task count."""
    from repro.api import ComputeUnitDescription, RaptorConfig, \
        TaskDescription

    # -- the overlay path: allocation paid once, tasks streamed.
    testbed, pilot = _yarn_testbed(machine, nodes, seed)
    if workers is None:
        # Every YARN app holds its AM container (1 vcore) next to the
        # task container, so a 16-core NM fits 8 concurrent apps; the
        # master takes one slot.
        workers = max(1, nodes * 8 - 1)
    t_setup0 = testbed.env.now
    overlay = testbed.session.raptor(
        pilot, workers=workers,
        config=RaptorConfig(retain_results=False))
    testbed.env.run(overlay.ready())
    setup = testbed.env.now - t_setup0
    t0 = testbed.env.now
    task = TaskDescription(cpu_seconds=TASK_CPU_SECONDS)
    overlay.submit_tasks([task] * ntasks, futures=False)
    testbed.env.run(overlay.wait())
    overlay_rate = ntasks / (testbed.env.now - t0)
    stats = overlay.stats()
    testbed.env.run(overlay.close())

    # -- the per-unit path: every task pays the 2-step allocation.
    sample = min(ntasks, per_unit_sample)
    unit_testbed, _ = _yarn_testbed(machine, nodes, seed)
    t0 = unit_testbed.env.now
    units = unit_testbed.umgr.submit_units(
        [ComputeUnitDescription(cpu_seconds=TASK_CPU_SECONDS,
                                memory_mb=1024)] * sample)
    unit_testbed.env.run(unit_testbed.umgr.wait_units(units))
    per_unit_rate = sample / (unit_testbed.env.now - t0)

    return RaptorThroughputRow(
        machine=machine, ntasks=ntasks, workers=workers,
        overlay_tasks_per_sec=overlay_rate,
        per_unit_tasks_per_sec=per_unit_rate,
        per_unit_sample=sample,
        speedup=overlay_rate / per_unit_rate,
        overlay_setup_seconds=setup,
        tasks_completed=stats["tasks_completed"],
        tasks_failed=stats["tasks_failed"])


def run_raptor_equivalence(ntasks: int = 64, machine: str = "stampede",
                           nodes: int = 2,
                           seed: int = 42) -> RaptorEquivalenceRow:
    """Both paths execute the same seeded workload; results must match."""
    from repro.api import ComputeUnitDescription, TaskDescription

    # -- overlay path
    testbed, pilot = _yarn_testbed(machine, nodes, seed)
    overlay = testbed.session.raptor(pilot, workers=8)
    testbed.env.run(overlay.ready())
    futures = overlay.submit_tasks([
        TaskDescription(function=_workload_value, args=(seed, i),
                        cpu_seconds=TASK_CPU_SECONDS, name=f"eq-{i}")
        for i in range(ntasks)])
    testbed.env.run(overlay.wait(futures))
    overlay_values = [f.result().result for f in futures]
    testbed.env.run(overlay.close())

    # -- per-unit path, same functions as Compute-Unit payloads
    unit_testbed, _ = _yarn_testbed(machine, nodes, seed)
    units = unit_testbed.umgr.submit_units([
        ComputeUnitDescription(function=_workload_value, args=(seed, i),
                               cpu_seconds=TASK_CPU_SECONDS,
                               memory_mb=1024, name=f"eq-{i}")
        for i in range(ntasks)])
    unit_testbed.env.run(unit_testbed.umgr.wait_units(units))
    unit_values = [u.result for u in units]

    overlay_digest = _results_digest(overlay_values)
    per_unit_digest = _results_digest(unit_values)
    return RaptorEquivalenceRow(
        ntasks=ntasks, overlay_digest=overlay_digest,
        per_unit_digest=per_unit_digest,
        identical=overlay_digest == per_unit_digest)


def run_raptor_faults(ntasks: int = 400, machine: str = "stampede",
                      nodes: int = 3, workers: int = 12,
                      seed: int = 42) -> RaptorFaultRow:
    """Crash one worker node mid-stream; the stream still completes."""
    from repro.api import RestartPolicy, TaskDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed(machine, num_nodes=nodes + 1, seed=seed)
    pilot, _, _ = testbed.start_pilot(
        nodes=nodes, agent_config=agent_config("fork"))
    overlay = testbed.session.raptor(
        pilot, workers=workers,
        restart_policy=RestartPolicy(max_restarts=3, backoff=1.0))
    testbed.env.run(overlay.ready())
    t0 = testbed.env.now
    # Deterministic victim: first worker node (sorted) that does not
    # host the master, so the overlay survives the crash.
    master_node = overlay.master.node.name
    victim = sorted({w.node.name for w in overlay.master.workers
                     if w.node.name != master_node})[0]
    testbed.session.faults.node_crash(at=t0 + 1.0, node=victim,
                                      duration=8.0)
    futures = overlay.submit_tasks([
        TaskDescription(cpu_seconds=0.2, name=f"ft-{i}")
        for i in range(ntasks)])
    testbed.env.run(overlay.wait(futures))
    makespan = testbed.env.now - t0
    stats = overlay.stats()
    return RaptorFaultRow(
        ntasks=ntasks, workers=workers,
        workers_lost=stats["workers_lost"],
        tasks_retried=stats["tasks_retried"],
        tasks_completed=stats["tasks_completed"],
        tasks_failed=stats["tasks_failed"],
        all_completed=all(f.result().ok for f in futures),
        makespan=makespan)
