"""ResourceManager: application lifecycle + heartbeat-driven scheduling.

Scheduling is *pull-based*, as in real YARN: every NodeManager
heartbeat is a scheduling opportunity for that node.  The pluggable
policy (:class:`FifoPolicy` or :class:`CapacityPolicy`) decides which
application's pending request, if any, gets a container there.  AM
containers are ordinary requests tagged at highest priority.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.sim.engine import Environment
from repro.yarn.config import YarnConfig
from repro.yarn.node_manager import NodeManager
from repro.yarn.records import (
    ZERO_RESOURCE,
    ApplicationReport,
    ApplicationState,
    AppSpec,
    Container,
    ContainerRequest,
    ContainerState,
    YarnResource,
)


class AppRecord:
    """RM-side bookkeeping for one application."""

    def __init__(self, env: Environment, app_id: str, spec: AppSpec):
        self.env = env
        self.app_id = app_id
        self.spec = spec
        self.state = ApplicationState.NEW
        self.queue = spec.queue
        self.am_container: Optional[Container] = None
        self.pending: Deque[ContainerRequest] = deque()
        self.granted: List[Container] = []          # awaiting AM pickup
        self.completed: List[Container] = []        # awaiting AM pickup
        self.live_containers: Dict[str, Container] = {}
        self.usage = ZERO_RESOURCE
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.final_status: Optional[str] = None
        self.diagnostics = ""
        self.finished = env.event()
        #: Set by the RM so it can keep aggregate state counts current
        #: without scanning every app on each metrics call.
        self.on_advance = None

    def advance(self, state: ApplicationState) -> None:
        previous = self.state
        self.state = state
        if self.on_advance is not None:
            self.on_advance(self, previous, state)
        if state is ApplicationState.RUNNING and self.start_time is None:
            self.start_time = self.env.now
        if state.is_final:
            self.finish_time = self.env.now
            if not self.finished.triggered:
                self.finished.succeed(self)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("yarn", "app_state", uid=self.app_id,
                     state=state.value, queue=self.queue)


class SchedulingPolicy:
    """Decides whether an app may receive a container on a node."""

    def attach(self, rm: "ResourceManager") -> None:
        self.rm = rm

    def app_order(self, apps: List[AppRecord]) -> List[AppRecord]:
        raise NotImplementedError

    def may_allocate(self, app: AppRecord,
                     resource: YarnResource) -> bool:
        raise NotImplementedError


class FifoPolicy(SchedulingPolicy):
    """YARN's FIFO scheduler: strict submission order, no queue caps."""

    def app_order(self, apps: List[AppRecord]) -> List[AppRecord]:
        return sorted(apps, key=lambda a: a.app_id)

    def may_allocate(self, app: AppRecord, resource: YarnResource) -> bool:
        return True


class FairPolicy(SchedulingPolicy):
    """Fair scheduler: scheduling opportunities go to the application
    furthest below its (weighted) fair share of cluster memory.

    Matches YARN's FairScheduler in spirit: ordering by
    ``usage / weight``, no hard caps — starved apps catch up first.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None):
        self.weights = dict(weights or {})
        for queue, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {queue!r} must be positive")

    def _weight(self, app: AppRecord) -> float:
        return self.weights.get(app.queue, 1.0)

    def app_order(self, apps: List[AppRecord]) -> List[AppRecord]:
        return sorted(apps, key=lambda a: (
            a.usage.memory_mb / self._weight(a), a.app_id))

    def may_allocate(self, app: AppRecord, resource: YarnResource) -> bool:
        return True


class CapacityPolicy(SchedulingPolicy):
    """Capacity scheduler: per-queue shares of cluster memory.

    ``queues`` maps queue name to capacity fraction; a queue may grow
    to ``max_capacity`` times its share (elasticity).  Apps in the same
    queue are FIFO.
    """

    def __init__(self, queues: Optional[Dict[str, float]] = None,
                 max_capacity: float = 1.0):
        self.queues = dict(queues or {"default": 1.0})
        self.max_capacity = max_capacity
        total = sum(self.queues.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"queue capacities must sum to 1, got {total}")

    def app_order(self, apps: List[AppRecord]) -> List[AppRecord]:
        # Round-robin across queues, FIFO within a queue: order by
        # (rank within queue, app id) so the least-served queues go first.
        by_queue: Dict[str, List[AppRecord]] = {}
        for app in sorted(apps, key=lambda a: a.app_id):
            by_queue.setdefault(app.queue, []).append(app)
        ordered: List[AppRecord] = []
        rank = 0
        while any(by_queue.values()):
            for queue in sorted(by_queue):
                if by_queue[queue]:
                    ordered.append(by_queue[queue].pop(0))
            rank += 1
        return ordered

    def may_allocate(self, app: AppRecord, resource: YarnResource) -> bool:
        share = self.queues.get(app.queue)
        if share is None:
            return False  # unknown queue: rejected at submit, belt+braces
        total_mb = self.rm.total_capacity().memory_mb
        queue_used = sum(
            a.usage.memory_mb for a in self.rm._active_apps.values()
            if a.queue == app.queue)
        limit = total_mb * min(1.0, share * self.max_capacity)
        return queue_used + resource.memory_mb <= limit + 1e-9


class ResourceManager:
    """The YARN master."""

    def __init__(self, env: Environment, config: Optional[YarnConfig] = None,
                 policy: Optional[SchedulingPolicy] = None):
        self.env = env
        self.config = config or YarnConfig()
        self.policy = policy or FifoPolicy()
        self.policy.attach(self)
        self.node_managers: Dict[str, NodeManager] = {}
        self.apps: Dict[str, AppRecord] = {}
        # Non-final apps only, in submission (= app-id) order: the
        # heartbeat scheduling path and the metrics snapshot iterate
        # this instead of every app ever submitted.
        self._active_apps: Dict[str, AppRecord] = {}
        self._apps_running = 0
        self._apps_pending = 0
        self._app_counter = itertools.count(1)
        self._container_counter = itertools.count(1)
        self.running = False
        self._heartbeat_procs: List[object] = []
        #: Nodes declared LOST after missing ``nm_liveness_heartbeats``
        #: consecutive heartbeats; cleared again if the node comes back.
        self.lost_nodes: set = set()
        # Cluster-wide capacity tallies over *live* NMs, maintained
        # incrementally from NM liveness/usage hooks so the REST-shaped
        # metrics (the YARN agent scheduler's hottest read path) are
        # O(1) instead of an O(nodes) rescan.  ``_counted`` holds the
        # names currently folded into the aggregates.
        self._counted: set = set()
        self._agg_total_mb = 0
        self._agg_total_vc = 0
        self._agg_used_mb = 0
        self._agg_used_vc = 0
        # Backlog gauge handle cached per telemetry hub (sampled on
        # every heartbeat-driven scheduling opportunity).
        self._backlog_gauge: Optional[object] = None
        self._backlog_gauge_tel: Optional[object] = None
        self.metrics_counters = {"appsSubmitted": 0, "appsCompleted": 0,
                                 "appsFailed": 0, "appsKilled": 0,
                                 "containersAllocated": 0}

    # ----------------------------------------------------------- lifecycle
    def start(self):
        """RM daemon startup.  Generator."""
        yield self.env.timeout(self.config.rm_startup_seconds)
        self.running = True
        if self.config.bucketed_heartbeats:
            self._heartbeat_procs.append(self.env.process(
                self._bucketed_heartbeat_loop(), name="hb-bucket"))
        else:
            for nm in self.node_managers.values():
                self._start_heartbeat(nm)

    def stop(self) -> None:
        self.running = False
        for app in self.apps.values():
            if not app.state.is_final:
                self._finish_app(app, ApplicationState.KILLED, "RM shutdown")

    def register_node_manager(self, nm: NodeManager) -> None:
        self.node_managers[nm.name] = nm
        nm._attach_rm(self)
        self._nm_liveness_changed(nm)
        if self.running and not self.config.bucketed_heartbeats:
            self._start_heartbeat(nm)

    # ------------------------------------------------- incremental tallies
    def _nm_liveness_changed(self, nm: NodeManager) -> None:
        """Fold ``nm`` into (or out of) the live-capacity aggregates.

        Called by the NM on running-flips and by the Node liveness
        watcher, i.e. on every transition of ``nm.alive``; idempotent so
        redundant notifications are harmless.
        """
        counted = nm.name in self._counted
        if nm.alive and not counted:
            self._counted.add(nm.name)
            self._agg_total_mb += nm.capacity.memory_mb
            self._agg_total_vc += nm.capacity.vcores
            self._agg_used_mb += nm.used.memory_mb
            self._agg_used_vc += nm.used.vcores
        elif not nm.alive and counted:
            self._counted.discard(nm.name)
            self._agg_total_mb -= nm.capacity.memory_mb
            self._agg_total_vc -= nm.capacity.vcores
            self._agg_used_mb -= nm.used.memory_mb
            self._agg_used_vc -= nm.used.vcores

    def _nm_used_changed(self, nm: NodeManager, memory_mb: int,
                         vcores: int) -> None:
        """Apply a reserve/release delta from a *counted* NM."""
        if nm.name in self._counted:
            self._agg_used_mb += memory_mb
            self._agg_used_vc += vcores

    def _start_heartbeat(self, nm: NodeManager) -> None:
        self._heartbeat_procs.append(self.env.process(
            self._heartbeat_loop(nm), name=f"hb-{nm.name}"))

    def _heartbeat_loop(self, nm: NodeManager):
        """Heartbeat-driven scheduling *and* liveness detection for one
        NM: a node silent for ``nm_liveness_heartbeats`` consecutive
        beats is declared lost and its containers reclaimed — the RM
        half of the paper's heartbeat-timeout failure handling."""
        missed = 0
        while self.running:
            yield self.env.timeout(self.config.nm_heartbeat)
            if nm.alive:
                if missed:
                    self.lost_nodes.discard(nm.name)
                missed = 0
                self._schedule_on(nm)
            else:
                missed += 1
                if (missed >= self.config.nm_liveness_heartbeats
                        and nm.name not in self.lost_nodes):
                    self._handle_node_loss(nm)

    def _bucketed_heartbeat_loop(self):
        """One process drives every NM's heartbeat (opt-in via
        :attr:`YarnConfig.bucketed_heartbeats`).

        At 10k nodes the per-NM loops put one pending timeout on the
        event heap per node per beat; bucketing collapses that to a
        single event and walks the NMs in registration order — the same
        order the per-NM processes fire in when created in registration
        order, but interleaved differently with same-instant events, so
        it is off by default to keep existing traces byte-identical.
        """
        missed: Dict[str, int] = {}
        while self.running:
            yield self.config.nm_heartbeat
            for nm in list(self.node_managers.values()):
                if nm.alive:
                    if missed.get(nm.name):
                        self.lost_nodes.discard(nm.name)
                        missed[nm.name] = 0
                    self._schedule_on(nm)
                else:
                    count = missed.get(nm.name, 0) + 1
                    missed[nm.name] = count
                    if (count >= self.config.nm_liveness_heartbeats
                            and nm.name not in self.lost_nodes):
                        self._handle_node_loss(nm)

    def _handle_node_loss(self, nm: NodeManager) -> None:
        """Declare ``nm`` LOST: kill its containers so their apps see
        the completions and the capacity ledgers stay exact."""
        self.lost_nodes.add(nm.name)
        live = [c for c in nm.containers.values() if not c.state.is_final]
        for container in live:
            nm.kill_container(container.container_id, ContainerState.KILLED,
                              f"node {nm.name} lost")
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("yarn", "node_lost", node=nm.name,
                     containers=len(live))
            tel.counter("yarn.rm.nodes_lost").inc()
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.check_resource_manager(self)

    # ---------------------------------------------------------- submission
    def submit_application(self, spec: AppSpec) -> AppRecord:
        """Accept an application; AM container allocation is queued."""
        if isinstance(self.policy, CapacityPolicy) and \
                spec.queue not in self.policy.queues:
            raise ValueError(f"unknown queue {spec.queue!r}")
        app_id = f"application_{next(self._app_counter):04d}"
        app = AppRecord(self.env, app_id, spec)
        app.on_advance = self._track_app_state
        self.apps[app_id] = app
        self._active_apps[app_id] = app
        self.metrics_counters["appsSubmitted"] += 1
        self.env.process(self._accept(app), name=f"accept-{app_id}")
        return app

    def _accept(self, app: AppRecord):
        app.advance(ApplicationState.SUBMITTED)
        yield self.env.timeout(self.config.rm_submit_latency)
        if app.state.is_final:
            return
        app.advance(ApplicationState.ACCEPTED)
        # The AM container is a pending request served by the scheduler.
        app.pending.appendleft(ContainerRequest(
            resource=self._normalize(app.spec.am_resource),
            requested_at=self.env.now))
        app._am_pending = True

    def kill_application(self, app_id: str, diagnostics: str = "killed") -> None:
        app = self.apps[app_id]
        if app.state.is_final:
            return
        for cid in list(app.live_containers):
            container = app.live_containers[cid]
            nm = self.node_managers.get(container.node_name)
            if nm is not None:
                nm.kill_container(cid, ContainerState.KILLED, diagnostics)
        self._finish_app(app, ApplicationState.KILLED, diagnostics)
        self.metrics_counters["appsKilled"] += 1

    def _finish_app(self, app: AppRecord, state: ApplicationState,
                    diagnostics: str = "") -> None:
        app.diagnostics = diagnostics
        app.advance(state)

    def _track_app_state(self, app: AppRecord, previous: ApplicationState,
                         state: ApplicationState) -> None:
        """Keep the running/pending tallies and the active-app index
        current; called from :meth:`AppRecord.advance`."""
        pending = (ApplicationState.SUBMITTED, ApplicationState.ACCEPTED)
        if previous is ApplicationState.RUNNING:
            self._apps_running -= 1
        elif previous in pending:
            self._apps_pending -= 1
        if state is ApplicationState.RUNNING:
            self._apps_running += 1
        elif state in pending:
            self._apps_pending += 1
        if state.is_final:
            self._active_apps.pop(app.app_id, None)

    # ---------------------------------------------------------- scheduling
    def _normalize(self, resource: YarnResource) -> YarnResource:
        """Round memory up to the scheduler increment, clamp to max."""
        increment = self.config.min_allocation_mb
        mem = max(increment,
                  ((resource.memory_mb + increment - 1) // increment)
                  * increment)
        mem = min(mem, self.config.max_allocation_mb)
        return YarnResource(memory_mb=mem, vcores=max(1, resource.vcores))

    def _schedule_on(self, nm: NodeManager) -> None:
        """One scheduling opportunity for node ``nm``.

        At most ``max_assignments_per_heartbeat`` containers are placed
        per opportunity, so load spreads over nodes (and heartbeats)
        rather than piling onto whichever NM reports first.
        """
        budget = self.config.max_assignments_per_heartbeat
        active = [a for a in self._active_apps.values() if a.pending]
        tel = self.env.telemetry
        if tel is not None:
            # The RM-side scheduling backlog, sampled at every
            # heartbeat-driven scheduling opportunity.
            if self._backlog_gauge_tel is not tel:
                self._backlog_gauge = tel.gauge("yarn.rm.heartbeat_backlog")
                self._backlog_gauge_tel = tel
            self._backlog_gauge.set(sum(len(a.pending) for a in active))
        for app in self.policy.app_order(active):
            while app.pending and budget > 0:
                request = app.pending[0]
                if not request.resource.fits_in(nm.available):
                    break
                if not self.policy.may_allocate(app, request.resource):
                    break
                if (request.preferred_nodes
                        and nm.name not in request.preferred_nodes):
                    # Delay scheduling: skip until locality relaxes.
                    if (not request.relax_locality
                            or request.missed_opportunities
                            < self.config.locality_delay_heartbeats):
                        request.missed_opportunities += 1
                        break
                app.pending.popleft()
                self._allocate(app, request, nm)
                budget -= 1
            # Keep offering this node to later apps while space remains.
            if budget <= 0 or \
                    nm.available.memory_mb < self.config.min_allocation_mb:
                break
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.check_resource_manager(self)

    def _allocate(self, app: AppRecord, request: ContainerRequest,
                  nm: NodeManager) -> None:
        container = Container(
            container_id=f"container_{next(self._container_counter):06d}",
            app_id=app.app_id, node_name=nm.name,
            resource=request.resource)
        nm.reserve(container)
        app.usage = app.usage.plus(container.resource)
        app.live_containers[container.container_id] = container
        self.metrics_counters["containersAllocated"] += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.counter("yarn.rm.containers_allocated").inc()
            tel.emit("yarn", "container_allocated",
                     container_id=container.container_id,
                     app=app.app_id, node=nm.name,
                     memory_mb=container.resource.memory_mb)
            if request.requested_at is not None:
                tel.histogram("yarn.container.allocation_latency").observe(
                    self.env.now - request.requested_at)
        if getattr(app, "_am_pending", False) and app.am_container is None:
            app.am_container = container
            self._launch_am(app, container)
        else:
            app.granted.append(container)

    def _launch_am(self, app: AppRecord, container: Container) -> None:
        from repro.yarn.application import AmContext  # cycle-free import
        nm = self.node_managers[container.node_name]
        ctx = AmContext(self, app, container)

        def am_payload(env, c):
            yield env.timeout(self.config.am_register_seconds)
            app.advance(ApplicationState.RUNNING)
            result = yield env.process(app.spec.am_program(ctx),
                                       name=f"am-main-{app.app_id}")
            return result

        done = nm.start_container(container, am_payload,
                                  on_complete=self._on_container_complete)

        def _am_done(event):
            am_container = event.value
            if app.state.is_final:
                return
            if am_container.state is ContainerState.COMPLETED:
                status = app.final_status or "SUCCEEDED"
                if status == "SUCCEEDED":
                    self._finish_app(app, ApplicationState.FINISHED)
                    self.metrics_counters["appsCompleted"] += 1
                else:
                    self._finish_app(app, ApplicationState.FAILED,
                                     app.diagnostics or "AM reported failure")
                    self.metrics_counters["appsFailed"] += 1
            else:
                self._finish_app(app, ApplicationState.FAILED,
                                 am_container.diagnostics or "AM died")
                self.metrics_counters["appsFailed"] += 1
            # Reclaim any containers the AM left behind.
            for cid in list(app.live_containers):
                c = app.live_containers[cid]
                nm2 = self.node_managers.get(c.node_name)
                if nm2 is not None:
                    nm2.kill_container(cid, ContainerState.KILLED,
                                       "app finished")

        done.callbacks.append(_am_done)

    def _on_container_complete(self, container: Container) -> None:
        app = self.apps.get(container.app_id)
        if app is None:
            return
        if container.container_id in app.live_containers:
            del app.live_containers[container.container_id]
            app.usage = app.usage.minus(container.resource)
        if container is not app.am_container:
            app.completed.append(container)
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.check_resource_manager(self)

    # ---------------------------------------------------------- preemption
    def preempt_containers(self, app_id: str, count: int) -> List[str]:
        """Preempt up to ``count`` newest task containers of an app."""
        app = self.apps[app_id]
        victims = [c for c in app.live_containers.values()
                   if c is not app.am_container]
        victims.sort(key=lambda c: c.container_id, reverse=True)
        preempted = []
        for container in victims[:count]:
            nm = self.node_managers.get(container.node_name)
            if nm is not None:
                nm.kill_container(container.container_id,
                                  ContainerState.PREEMPTED,
                                  "preempted by scheduler")
                preempted.append(container.container_id)
        return preempted

    # ------------------------------------------------------------- metrics
    def total_capacity(self) -> YarnResource:
        return YarnResource(memory_mb=self._agg_total_mb,
                            vcores=self._agg_total_vc)

    def used_capacity(self) -> YarnResource:
        return YarnResource(memory_mb=self._agg_used_mb,
                            vcores=self._agg_used_vc)

    def cluster_metrics(self) -> Dict[str, float]:
        """RM REST ``/ws/v1/cluster/metrics``-shaped snapshot.

        This is what the RADICAL-Pilot YARN agent scheduler polls to
        size its resource slots (paper §III-C) — on every unit
        submission and queue drain, which makes this the RM's hottest
        read path.  Everything here is O(1): app-state tallies are
        maintained incrementally (see :meth:`_track_app_state`) and the
        live-capacity aggregates are folded in and out by NM
        liveness/usage hooks (see :meth:`_nm_liveness_changed`) instead
        of rescanning every NodeManager.
        """
        total_mb, total_vc = self._agg_total_mb, self._agg_total_vc
        used_mb, used_vc = self._agg_used_mb, self._agg_used_vc
        active_nodes = len(self._counted)
        counters = self.metrics_counters
        return {
            "appsSubmitted": counters["appsSubmitted"],
            "appsCompleted": counters["appsCompleted"],
            "appsFailed": counters["appsFailed"],
            "appsKilled": counters["appsKilled"],
            "appsRunning": self._apps_running,
            "appsPending": self._apps_pending,
            "containersAllocated": counters["containersAllocated"],
            "totalMB": total_mb,
            "allocatedMB": used_mb,
            "availableMB": total_mb - used_mb,
            "totalVirtualCores": total_vc,
            "allocatedVirtualCores": used_vc,
            "availableVirtualCores": total_vc - used_vc,
            "activeNodes": active_nodes,
            "totalNodes": len(self.node_managers),
        }

    def application_list(self) -> List[Dict[str, object]]:
        """RM REST ``/ws/v1/cluster/apps``-shaped listing."""
        return [{
            "id": app.app_id,
            "name": app.spec.name,
            "queue": app.queue,
            "state": app.state.value,
            "applicationType": app.spec.app_type,
            "allocatedMB": app.usage.memory_mb,
            "allocatedVCores": app.usage.vcores,
            "runningContainers": len(app.live_containers),
            "startedTime": app.start_time,
            "finishedTime": app.finish_time,
        } for app in self.apps.values()]

    def node_reports(self) -> List[Dict[str, object]]:
        """RM REST ``/ws/v1/cluster/nodes``-shaped listing."""
        return [{
            "id": nm.name,
            "state": "RUNNING" if nm.alive else "LOST",
            "availMemoryMB": nm.available.memory_mb,
            "usedMemoryMB": nm.used.memory_mb,
            "availableVirtualCores": nm.available.vcores,
            "usedVirtualCores": nm.used.vcores,
            "numContainers": len(nm.containers),
        } for nm in self.node_managers.values()]

    def application_report(self, app_id: str) -> ApplicationReport:
        app = self.apps[app_id]
        return ApplicationReport(
            app_id=app.app_id, name=app.spec.name, state=app.state,
            queue=app.queue, tracking_diagnostics=app.diagnostics,
            start_time=app.start_time, finish_time=app.finish_time,
            final_status=app.final_status)
