"""YarnCluster: wiring and lifecycle of a YARN deployment.

The counterpart of :class:`~repro.hdfs.cluster.HdfsCluster` for YARN:
the RM on the first node, a NodeManager on every node, with the daemon
startup costs the Mode I bootstrap pays (Figure 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.sim.engine import Environment
from repro.yarn.client import YarnClient
from repro.yarn.config import YarnConfig
from repro.yarn.node_manager import NodeManager
from repro.yarn.resource_manager import ResourceManager, SchedulingPolicy


class YarnCluster:
    """One YARN deployment over a set of nodes."""

    def __init__(self, env: Environment, machine: Machine,
                 nodes: List[Node], config: Optional[YarnConfig] = None,
                 policy: Optional[SchedulingPolicy] = None):
        self.env = env
        self.machine = machine
        self.nodes = list(nodes)
        self.config = config or YarnConfig()
        self.resource_manager = ResourceManager(env, self.config, policy)
        self.node_managers = [NodeManager(env, node, self.config)
                              for node in self.nodes]
        for nm in self.node_managers:
            self.resource_manager.register_node_manager(nm)
        self.running = False
        faults = env.faults
        if faults is not None:
            faults.register_yarn(self)

    @property
    def master_node(self) -> Node:
        return self.nodes[0]

    def start(self):
        """Boot the RM, then all NMs in parallel.  Generator."""
        yield self.env.process(self.resource_manager.start())
        starts = [self.env.process(nm.start()) for nm in self.node_managers]
        yield self.env.all_of(starts)
        self.running = True

    def stop(self) -> None:
        for nm in self.node_managers:
            nm.stop()
        self.resource_manager.stop()
        self.running = False

    def client(self) -> YarnClient:
        return YarnClient(self.env, self.resource_manager)

    def node_manager(self, node_name: str) -> NodeManager:
        for nm in self.node_managers:
            if nm.name == node_name:
                return nm
        raise KeyError(f"no NodeManager on {node_name}")
