"""NodeManager: per-node container execution and capacity accounting."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cluster.node import Node
from repro.sim.engine import Environment, Event, Interrupt, SimulationError
from repro.yarn.config import YarnConfig
from repro.yarn.records import (
    ZERO_RESOURCE,
    Container,
    ContainerState,
    YarnResource,
)


class NodeManager:
    """Runs containers on one node, within an advertised capacity.

    The NM's heartbeat loop lives in the ResourceManager (which owns
    the scheduling reaction); here we keep capacity arithmetic, the
    container launch path (with JVM spin-up cost) and kill/preempt.
    """

    def __init__(self, env: Environment, node: Node, config: YarnConfig):
        self.env = env
        self.node = node
        self.config = config
        self.capacity = YarnResource(
            memory_mb=config.nm_memory_mb(node.memory_bytes),
            vcores=config.nm_vcores(node.num_cores))
        self.used = ZERO_RESOURCE
        self.containers: Dict[str, Container] = {}
        self._procs: Dict[str, object] = {}
        self.running = False
        #: When :meth:`fail` hit (MTTR base for the RM's loss handling).
        self.failed_at: Optional[float] = None
        #: The owning ResourceManager, once registered; the NM reports
        #: liveness flips and capacity deltas so the RM's cluster-wide
        #: tallies stay O(1) instead of rescanning every NM.
        self._rm = None

    def _attach_rm(self, rm) -> None:
        self._rm = rm
        self.node.watch_liveness(lambda _node: rm._nm_liveness_changed(self))

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def alive(self) -> bool:
        return self.running and self.node.alive

    @property
    def available(self) -> YarnResource:
        return self.capacity.minus(self.used)

    def start(self):
        """Daemon startup.  Generator."""
        yield self.env.timeout(self.config.nm_startup_seconds)
        self.running = True
        if self._rm is not None:
            self._rm._nm_liveness_changed(self)

    def stop(self) -> None:
        for container in list(self.containers.values()):
            if not container.state.is_final:
                self.kill_container(container.container_id,
                                    ContainerState.KILLED, "NM shutdown")
        self.running = False
        if self._rm is not None:
            self._rm._nm_liveness_changed(self)

    # ----------------------------------------------------------- capacity
    def can_fit(self, resource: YarnResource) -> bool:
        return self.alive and resource.fits_in(self.available)

    def reserve(self, container: Container) -> None:
        """Book capacity for an allocated container."""
        if not container.resource.fits_in(self.available):
            raise SimulationError(
                f"NM {self.name} over-allocation: {container.resource} "
                f"does not fit in {self.available}")
        self.used = self.used.plus(container.resource)
        self.containers[container.container_id] = container
        if self._rm is not None:
            self._rm._nm_used_changed(self, container.resource.memory_mb,
                                      container.resource.vcores)

    def _release(self, container: Container) -> None:
        if container.container_id in self.containers:
            self.used = self.used.minus(container.resource)
            del self.containers[container.container_id]
            if self._rm is not None:
                self._rm._nm_used_changed(
                    self, -container.resource.memory_mb,
                    -container.resource.vcores)

    # ------------------------------------------------------------- launch
    def start_container(self, container: Container,
                        payload: Callable[..., object],
                        on_complete: Optional[Callable[[Container], None]]
                        = None) -> Event:
        """Launch a payload inside an allocated container.

        Pays the localization + JVM spin-up cost, then runs
        ``payload(env, container)`` as a process.  Returns an event that
        fires when the container reaches a final state (its value is the
        container).
        """
        if container.container_id not in self.containers:
            raise SimulationError(
                f"container {container.container_id} not allocated on "
                f"{self.name}")
        if container.state is not ContainerState.ALLOCATED:
            raise SimulationError(
                f"container {container.container_id} is "
                f"{container.state.value}, cannot launch")
        done = Event(self.env)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("yarn", "container_start",
                     container_id=container.container_id, node=self.name,
                     app=container.app_id)

        def _finish_event() -> None:
            if tel is not None:
                tel.emit("yarn", "container_finished",
                         container_id=container.container_id,
                         node=self.name, app=container.app_id,
                         state=container.state.value)

        def _runner():
            try:
                yield self.env.timeout(self.config.container_launch_seconds)
            except Interrupt:
                # Killed/released during localization: state was already
                # finalized by kill_container.
                _finish_event()
                done.succeed(container)
                return
            if container.state.is_final:   # killed during launch
                _finish_event()
                done.succeed(container)
                return
            container.state = ContainerState.RUNNING
            child = self.env.process(
                payload(self.env, container),
                name=f"container-{container.container_id}")
            try:
                result = yield child
            except Interrupt as intr:
                if not container.state.is_final:
                    container.state = ContainerState.KILLED
                    container.diagnostics = str(intr.cause)
                if child.is_alive:
                    # The process inside the container dies with it —
                    # otherwise the payload would keep simulating (and
                    # touching unit state) as a zombie.
                    child.interrupt(cause=intr.cause)
                    child.callbacks.append(lambda _event: None)  # defused
            except Exception as exc:
                container.state = ContainerState.FAILED
                container.exit_code = 1
                container.diagnostics = repr(exc)
            else:
                container.state = ContainerState.COMPLETED
                container.exit_code = 0
                container.diagnostics = ""
                container.result = result
            self._release(container)
            _finish_event()
            if on_complete is not None:
                on_complete(container)
            done.succeed(container)

        proc = self.env.process(_runner(),
                                name=f"launch-{container.container_id}")
        self._procs[container.container_id] = proc
        return done

    def kill_container(self, container_id: str,
                       final_state: ContainerState = ContainerState.KILLED,
                       diagnostics: str = "") -> None:
        """Kill (or preempt) a container immediately."""
        container = self.containers.get(container_id)
        if container is None or container.state.is_final:
            return
        container.state = final_state
        container.diagnostics = diagnostics
        proc = self._procs.get(container_id)
        if proc is not None and proc.is_alive:
            proc.interrupt(cause=diagnostics or final_state.value)
        self._release(container)

    def fail(self) -> None:
        """Crash the NM: all containers die with it.

        Killing each container releases its reservation back into the
        NM ledger (``used``/``containers``), so the RM's capacity
        arithmetic — and the sanitizer's per-NM checks — stay exact
        across the failure.
        """
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("yarn", "node_failed", node=self.name,
                     containers=len(self.containers))
            tel.counter("yarn.nm.failures").inc()
        for container in list(self.containers.values()):
            self.kill_container(container.container_id,
                                ContainerState.KILLED, "NM lost")
        self.running = False
        self.failed_at = self.env.now
        if self._rm is not None:
            self._rm._nm_liveness_changed(self)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<NodeManager {self.name} used={self.used.memory_mb}MB/"
                f"{self.used.vcores}vc of {self.capacity.memory_mb}MB/"
                f"{self.capacity.vcores}vc>")
