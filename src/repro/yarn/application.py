"""The ApplicationMaster protocol: AmContext.

An AM program is a generator function receiving an :class:`AmContext`;
through it the AM registers, asks for containers (heartbeat-paced, as
in the AMRMClient), launches payloads in granted containers, and
reports a final status.  The RADICAL-Pilot Application Master (paper
Figure 4) is written against this interface, as are the MapReduce and
test AMs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.sim.engine import Event
from repro.yarn.records import (
    Container,
    ContainerRequest,
    ContainerState,
    YarnResource,
)


class AmContext:
    """What an ApplicationMaster sees of the cluster."""

    def __init__(self, rm, app, am_container: Container):
        self.rm = rm
        self.app = app
        self.am_container = am_container
        self.env = rm.env

    @property
    def app_id(self) -> str:
        return self.app.app_id

    # ------------------------------------------------------------ protocol
    def add_container_request(self, request: ContainerRequest) -> None:
        """Queue one container ask with the RM scheduler."""
        request.resource = self.rm._normalize(request.resource)
        if request.requested_at is None:
            request.requested_at = self.env.now
        self.app.pending.append(request)

    def request_containers(self, count: int, resource: YarnResource,
                           preferred_nodes: Sequence[str] = ()) -> None:
        """Convenience: queue ``count`` identical asks."""
        for _ in range(count):
            self.add_container_request(ContainerRequest(
                resource=resource,
                preferred_nodes=tuple(preferred_nodes)))

    def allocate(self):
        """One AM heartbeat: wait a beat, then drain newly granted
        containers and completed-container notifications.

        Generator returning ``(granted, completed)`` lists — the shape
        of ``AllocateResponse``.
        """
        yield self.env.timeout(self.rm.config.am_heartbeat)
        granted, self.app.granted = self.app.granted, []
        completed, self.app.completed = self.app.completed, []
        return granted, completed

    def wait_for_containers(self, count: int, timeout: Optional[float] = None):
        """Heartbeat until ``count`` containers are granted.  Generator
        returning the list (may be shorter on timeout)."""
        collected: List[Container] = []
        deadline = None if timeout is None else self.env.now + timeout
        while len(collected) < count:
            granted, _ = yield from self.allocate()
            collected.extend(granted)
            if deadline is not None and self.env.now >= deadline:
                break
        return collected

    def start_container(self, container: Container,
                        payload: Callable[..., object]) -> Event:
        """Launch ``payload(env, container)`` in a granted container."""
        nm = self.rm.node_managers[container.node_name]
        return nm.start_container(
            container, payload, on_complete=self.rm._on_container_complete)

    def release_container(self, container: Container) -> None:
        """Give back an unused (or running) container."""
        nm = self.rm.node_managers.get(container.node_name)
        if nm is not None:
            nm.kill_container(container.container_id,
                              ContainerState.KILLED, "released by AM")
            self.rm._on_container_complete(container)

    def finish(self, status: str = "SUCCEEDED", diagnostics: str = "") -> None:
        """Declare the application outcome (read when the AM exits)."""
        self.app.final_status = status
        if diagnostics:
            self.app.diagnostics = diagnostics

    # ------------------------------------------------------------- queries
    def cluster_metrics(self):
        return self.rm.cluster_metrics()

    def node_names(self) -> List[str]:
        return [name for name, nm in self.rm.node_managers.items()
                if nm.alive]
