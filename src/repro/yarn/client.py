"""YarnClient: ``yarn jar``-style submission with client-side costs."""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Environment
from repro.yarn.records import ApplicationReport, AppSpec
from repro.yarn.resource_manager import AppRecord, ResourceManager


class YarnClient:
    """Client-side YARN access (the ``yarn`` command line / YarnClient API).

    ``submit`` is a generator paying the client JVM startup +
    submission RPC before the RM even sees the application — a real and
    measurable slice of the Compute-Unit startup overhead in Figure 5.
    """

    def __init__(self, env: Environment, rm: ResourceManager):
        self.env = env
        self.rm = rm

    def submit(self, spec: AppSpec):
        """Submit an application.  Generator returning the AppRecord."""
        yield self.env.timeout(self.rm.config.client_submit_seconds)
        app = self.rm.submit_application(spec)
        return app

    def wait_for_completion(self, app: AppRecord):
        """Block (in sim time) until the application finishes.

        Generator returning the final ApplicationReport.
        """
        yield app.finished
        return self.rm.application_report(app.app_id)

    def application_report(self, app_id: str) -> ApplicationReport:
        return self.rm.application_report(app_id)

    def kill(self, app_id: str) -> None:
        self.rm.kill_application(app_id)
