"""YARN: a functional resource-manager simulator.

Reproduces the portions of Apache Hadoop YARN that the paper's system
touches:

* :class:`ResourceManager` — application lifecycle (NEW → SUBMITTED →
  ACCEPTED → RUNNING → FINISHED/FAILED/KILLED), heartbeat-driven
  scheduling with pluggable policy (FIFO or capacity queues), container
  preemption, and a cluster-metrics API shaped like the RM REST API
  (the RADICAL-Pilot YARN scheduler polls it).
* :class:`NodeManager` — per-node capacity (memory + vcores), container
  launch (with modeled JVM spin-up), heartbeats that carry allocation
  opportunities, failure injection.
* :class:`AmContext` / the AM protocol — ``register`` / ``allocate`` /
  ``start_container`` / ``finish``; every allocation takes effect on a
  node-manager heartbeat, so the two-phase AM-then-task-container
  choreography exhibits the tens-of-seconds Compute-Unit startup the
  paper measures (Figure 5 inset).
* :class:`YarnClient` — ``yarn jar``-style submission (with the client
  JVM's own startup cost), application reports, kill.
"""

from repro.yarn.config import YarnConfig
from repro.yarn.records import (
    AppSpec,
    ApplicationState,
    Container,
    ContainerRequest,
    ContainerState,
    YarnResource,
)
from repro.yarn.node_manager import NodeManager
from repro.yarn.resource_manager import (
    CapacityPolicy,
    FairPolicy,
    FifoPolicy,
    ResourceManager,
)
from repro.yarn.application import AmContext
from repro.yarn.client import YarnClient
from repro.yarn.cluster import YarnCluster

__all__ = [
    "AmContext",
    "AppSpec",
    "ApplicationState",
    "CapacityPolicy",
    "Container",
    "ContainerRequest",
    "ContainerState",
    "FairPolicy",
    "FifoPolicy",
    "NodeManager",
    "ResourceManager",
    "YarnClient",
    "YarnCluster",
    "YarnConfig",
    "YarnResource",
]
