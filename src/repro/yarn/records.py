"""YARN protocol records: resources, containers, applications."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(frozen=True)
class YarnResource:
    """A (memory, vcores) resource vector, YARN's allocation unit."""

    memory_mb: int
    vcores: int = 1

    def __post_init__(self):
        if self.memory_mb < 0 or self.vcores < 0:
            raise ValueError(f"resource must be non-negative, got {self}")

    def fits_in(self, other: "YarnResource") -> bool:
        return (self.memory_mb <= other.memory_mb
                and self.vcores <= other.vcores)

    def plus(self, other: "YarnResource") -> "YarnResource":
        return YarnResource(self.memory_mb + other.memory_mb,
                            self.vcores + other.vcores)

    def minus(self, other: "YarnResource") -> "YarnResource":
        return YarnResource(self.memory_mb - other.memory_mb,
                            self.vcores - other.vcores)


#: The zero resource vector (used-capacity accumulator start value).
ZERO_RESOURCE = YarnResource(memory_mb=0, vcores=0)


class ContainerState(enum.Enum):
    ALLOCATED = "allocated"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"
    PREEMPTED = "preempted"

    @property
    def is_final(self) -> bool:
        return self in (ContainerState.COMPLETED, ContainerState.FAILED,
                        ContainerState.KILLED, ContainerState.PREEMPTED)


class ApplicationState(enum.Enum):
    NEW = "new"
    SUBMITTED = "submitted"
    ACCEPTED = "accepted"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    KILLED = "killed"

    @property
    def is_final(self) -> bool:
        return self in (ApplicationState.FINISHED, ApplicationState.FAILED,
                        ApplicationState.KILLED)


@dataclass
class ContainerRequest:
    """An AM's ask for one container.

    ``preferred_nodes`` expresses data locality; after
    ``locality_delay_heartbeats`` scheduling opportunities the scheduler
    relaxes to any node (YARN's delay scheduling).
    """

    resource: YarnResource
    preferred_nodes: Tuple[str, ...] = ()
    relax_locality: bool = True
    #: internal: scheduling opportunities this request has been skipped
    missed_opportunities: int = field(default=0, compare=False)
    #: internal: sim time the request was queued with the RM scheduler,
    #: stamped at enqueue; feeds the container-allocation-latency metric
    requested_at: Optional[float] = field(default=None, compare=False)


class Container:
    """An allocated slice of a NodeManager."""

    def __init__(self, container_id: str, app_id: str, node_name: str,
                 resource: YarnResource):
        self.container_id = container_id
        self.app_id = app_id
        self.node_name = node_name
        self.resource = resource
        self.state = ContainerState.ALLOCATED
        self.exit_code: Optional[int] = None
        self.diagnostics: str = ""

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Container {self.container_id} on {self.node_name} "
                f"{self.state.value}>")


@dataclass
class AppSpec:
    """What a client submits: the YARN ApplicationSubmissionContext.

    ``am_program`` is a callable ``am_program(am_context) -> generator``
    executed inside the AM container once it launches.
    """

    name: str
    am_resource: YarnResource
    am_program: Callable[..., Any]
    queue: str = "default"
    app_type: str = "YARN"
    max_attempts: int = 1


@dataclass
class ApplicationReport:
    """Client-visible application status (``yarn application -status``)."""

    app_id: str
    name: str
    state: ApplicationState
    queue: str
    tracking_diagnostics: str = ""
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    final_status: Optional[str] = None
