"""YARN configuration: resources and timing constants.

Field names echo the ``yarn-site.xml`` properties they stand in for;
values are calibrated so the end-to-end choreography reproduces the
overheads of the paper's Figure 5 (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class YarnConfig:
    """Cluster-wide YARN settings."""

    # --- resources (yarn.nodemanager.resource.*) -------------------------
    #: Memory a NodeManager offers, as a fraction of node RAM (the rest
    #: is left to the OS and daemons, as admins configure in practice).
    nm_memory_fraction: float = 0.8
    #: Vcores offered per NM, as a multiple of physical cores.
    nm_vcore_ratio: float = 1.0
    #: Scheduler minimum/maximum single-container allocation (MB).
    min_allocation_mb: int = 256
    max_allocation_mb: int = 1024 * 1024

    # --- protocol cadence -------------------------------------------------
    #: NodeManager -> RM heartbeat; allocations happen on these ticks.
    nm_heartbeat: float = 1.0
    #: Containers assigned per node heartbeat (classic YARN assigns
    #: one; bounding this spreads load across nodes instead of piling
    #: every pending request onto whichever NM heartbeats first).
    max_assignments_per_heartbeat: int = 4
    #: ApplicationMaster -> RM allocate() polling interval.
    am_heartbeat: float = 1.0
    #: Heartbeats to wait for a node-local slot before relaxing locality.
    locality_delay_heartbeats: int = 3
    #: Consecutive missed NM heartbeats before the RM declares the node
    #: LOST and reclaims its containers
    #: (yarn.nm.liveness-monitor.expiry-interval-ms, in beats).
    nm_liveness_heartbeats: int = 3
    #: Drive all NM heartbeats from one RM-side process instead of one
    #: process per NM.  At 1k-10k nodes this collapses N pending
    #: timeouts per beat into one; scheduling opportunities visit NMs
    #: in registration order, which interleaves differently with
    #: same-instant events than the per-NM processes do, so the flag is
    #: off by default to keep existing traces byte-identical.
    bucketed_heartbeats: bool = False

    # --- fault tolerance (yarn.resourcemanager.am.max-attempts et al.) -----
    #: Container (re-)attempts per unit inside the per-unit AM; 1 =
    #: single shot (the seed behaviour — failures surface immediately).
    am_max_attempts: int = 1
    #: Base backoff before a container re-attempt (seconds), growing by
    #: ``am_retry_backoff_factor`` per attempt, capped at
    #: ``am_retry_backoff_cap`` — YARN's capped exponential policy.
    am_retry_backoff: float = 2.0
    am_retry_backoff_factor: float = 2.0
    am_retry_backoff_cap: float = 60.0

    # --- launch costs (the JVM tax) ----------------------------------------
    #: ``yarn jar`` client JVM start + app submission RPC.
    client_submit_seconds: float = 4.0
    #: Container launch: localization + JVM spin-up.
    container_launch_seconds: float = 7.0
    #: AM business logic from launch to registered-with-RM.
    am_register_seconds: float = 2.0
    #: RM-side bookkeeping per submitted application.
    rm_submit_latency: float = 0.5

    # --- daemon startup (paid by the Mode I bootstrap) ---------------------
    rm_startup_seconds: float = 5.0
    nm_startup_seconds: float = 3.0

    def scaled(self, cpu_speed: float) -> "YarnConfig":
        """Timing constants scaled for faster/slower CPUs.

        JVM spin-up, client startup and daemon boot are CPU-bound, so
        a machine with ``cpu_speed`` > 1 (e.g. Wrangler) pays
        proportionally less; protocol cadence (heartbeats) stays fixed.
        """
        from dataclasses import replace
        s = 1.0 / cpu_speed
        return replace(
            self,
            client_submit_seconds=self.client_submit_seconds * s,
            container_launch_seconds=self.container_launch_seconds * s,
            am_register_seconds=self.am_register_seconds * s,
            rm_startup_seconds=self.rm_startup_seconds * s,
            nm_startup_seconds=self.nm_startup_seconds * s)

    def nm_memory_mb(self, node_memory_bytes: float) -> int:
        """Memory (MB) a NodeManager on this node advertises."""
        return int(node_memory_bytes * self.nm_memory_fraction // (1024 ** 2))

    def nm_vcores(self, node_cores: int) -> int:
        return max(1, int(node_cores * self.nm_vcore_ratio))
