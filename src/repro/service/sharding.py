"""Shared-nothing sharding of service load across a process pool.

One service process scales to ~10k sessions; past that the tenant set
is split into independent shards, each a complete simulated world
(machine + pilot + overlay + service) serving only its tenants.
Tenant -> shard placement uses :func:`repro.hashing.stable_hash`, so it
is identical across processes and ``PYTHONHASHSEED`` settings, and the
per-tenant arrival streams in :mod:`repro.service.workload` make every
tenant's workload independent of its neighbours — a shard's rows do
not change when the other shards run elsewhere.

The fan-out mirrors :mod:`repro.experiments.sweeps`: ``jobs=1`` is the
sequential in-process reference, ``jobs=N`` maps the same shard list
over a ``ProcessPoolExecutor`` with *ordered* aggregation, and the
canonical-JSON digest of the merged result is byte-identical either
way (pinned by the determinism tests and the ``service`` sweep grid).
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.hashing import stable_hash
from repro.service.workload import LoadSpec, run_load


def shard_of(tenant: str, shards: int) -> int:
    """Deterministic tenant -> shard placement."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return stable_hash(tenant) % shards


def run_shard(spec: LoadSpec) -> Dict[str, Any]:
    """Run one shard's world (top-level, so it pickles for the pool)."""
    return run_load(spec)


@dataclass
class ShardedRun:
    """A sharded load run: per-shard rows + the merged deterministic
    aggregate."""

    spec: LoadSpec
    jobs: int
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def aggregate(self) -> Dict[str, Any]:
        """Merged totals + per-shard rows, in shard order."""
        summed = ("tenants", "sessions_opened", "sessions_rejected",
                  "sessions_closed", "peak_concurrent_sessions",
                  "tickets_submitted", "tickets_throttled",
                  "tickets_rejected", "tickets_completed",
                  "tickets_failed")
        totals = {key: sum(r[key] for r in self.rows) for key in summed}
        totals["makespan"] = max((r["makespan"] for r in self.rows),
                                 default=0.0)
        return {"shards": self.spec.shards, "totals": totals,
                "rows": self.rows}

    def aggregate_json(self) -> str:
        """Canonical JSON of :meth:`aggregate` — byte-comparable."""
        return json.dumps(self.aggregate(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """sha256 of the canonical aggregate."""
        return hashlib.sha256(self.aggregate_json().encode()).hexdigest()


def run_sharded(spec: LoadSpec, shards: int,
                jobs: Optional[int] = 1) -> ShardedRun:
    """Split ``spec`` into ``shards`` shared-nothing worlds and run them.

    ``jobs=1`` (the default, and what nested callers like sweep cells
    must use — pools don't nest) runs shards sequentially in-process;
    ``jobs=N`` fans out over a process pool with ordered aggregation.
    The aggregate is identical either way.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if jobs is None or jobs < 1:
        raise ValueError("jobs must be >= 1")
    spec.validate()
    shard_specs = [spec.replace(shard=i, shards=shards)
                   for i in range(shards)]
    if jobs == 1 or shards == 1:
        rows = [run_shard(s) for s in shard_specs]
    else:
        with ProcessPoolExecutor(
                max_workers=min(jobs, shards)) as ex:
            # executor.map yields results in submission order no matter
            # which worker finishes first.
            rows = list(ex.map(run_shard, shard_specs))
    return ShardedRun(spec=spec, jobs=jobs, rows=rows)
