"""repro.service: the multi-tenant pilot service layer.

One long-lived :class:`~repro.service.service.PilotService` multiplexes
thousands of tenant sessions over shared pilot capacity: asynchronous
batched submission, per-tenant admission control (bounded queues,
``Throttled``/``Rejected`` backpressure), weighted deficit round-robin
fair share, a YARN-RM-style ``query()`` surface, and shared-nothing
sharding across a process pool for scale beyond one instance.

Quickstart::

    service = PilotService(session)
    service.add_pilots(pilot)
    service.attach_overlay(session.raptor(pilot, workers=16))
    service.register_tenant("alice", TenantQuota(max_pending=512))
    sess = service.open_session("alice")
    ticket = sess.submit_raptor([TaskDescription(cpu_seconds=1.0)])
    yield ticket.wait()          # or env.run(service.quiesced())
    service.query("/tenants/alice/sessions")
"""

from repro.service.admission import (
    RequestState,
    TenantAccount,
    TenantQuota,
    Ticket,
)
from repro.service.fairshare import WeightedDeficitRoundRobin
from repro.service.service import (
    PilotService,
    ServiceConfig,
    ServiceSession,
)
from repro.service.sharding import ShardedRun, run_sharded, shard_of
from repro.service.workload import LoadSpec, run_load

__all__ = [
    "LoadSpec",
    "PilotService",
    "RequestState",
    "ServiceConfig",
    "ServiceSession",
    "ShardedRun",
    "TenantAccount",
    "TenantQuota",
    "Ticket",
    "WeightedDeficitRoundRobin",
    "run_load",
    "run_sharded",
    "shard_of",
]
