"""PilotService: one long-lived process multiplexing tenant sessions.

The multi-tenant service layer over the RADICAL-Pilot core: tenants
open lightweight :class:`ServiceSession` handles against one service
instance and submit pilots, units and raptor tasks *asynchronously* —
every submission returns a :class:`~repro.service.admission.Ticket`
immediately and the work is dispatched later, in batches, by the
service's drain loop.  The moving parts:

* **admission control** (:mod:`repro.service.admission`): per-tenant
  quotas bound every queue; over-quota work is settled ``Rejected``
  (reported, never dropped) and backpressure is signalled with the
  ``Throttled`` state above a watermark;
* **fair share** (:mod:`repro.service.fairshare`): each sim tick drains
  at most ``max_batch_per_tick`` requests via weighted deficit
  round-robin across the tenant queues;
* **batched dispatch**: the drain loop parks on a wake event while
  idle and ticks at phase-aligned instants while backlogged, so an
  idle service costs zero events and a busy one submits work in
  amortized batches instead of per-call;
* **query surface**: a REST-style ``query("/tenants/<id>/sessions")``
  API modeled on the YARN RM endpoints, returning canonical JSON.

Latency accounting runs through :mod:`repro.telemetry.metrics`
histograms on a service-private registry (enqueue->dispatch and
enqueue->settle, in simulated seconds).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence

from repro.core.description import (
    ComputePilotDescription,
    ComputeUnitDescription,
    Description,
)
from repro.core.states import PilotState, UnitState
from repro.core.unit_manager import UnitManager
from repro.pilot_api.service import (
    _pilot_description_from_dict,
    _unit_description_from_dict,
)
from repro.service.admission import (
    REJECTED,
    THROTTLED,
    RequestState,
    TenantAccount,
    TenantQuota,
    Ticket,
)
from repro.service.fairshare import WeightedDeficitRoundRobin
from repro.sim.engine import Event
from repro.telemetry.metrics import MetricsRegistry

#: Histogram bounds for enqueue->dispatch latency (seconds).
SUBMIT_LATENCY_BOUNDS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                         5.0, 10.0, 30.0, 60.0)
#: Histogram bounds for enqueue->settle latency (seconds).
COMPLETION_LATENCY_BOUNDS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
                             250.0, 500.0, 1000.0, 2500.0, 5000.0,
                             10000.0)


@dataclass
class ServiceConfig(Description):
    """Tunables of one :class:`PilotService` instance."""

    #: Batch-drain cadence (simulated seconds); dispatches happen at
    #: phase-aligned multiples of this while a backlog exists.
    tick_interval: float = 0.05
    #: Global dispatch budget per tick, across all tenants.
    max_batch_per_tick: int = 256
    #: Deficit round-robin quantum (requests per tenant per visit).
    drr_quantum: float = 8.0
    #: Quota applied to tenants registered without an explicit one.
    default_quota: Optional[TenantQuota] = None

    def _check(self) -> None:
        self._require(self.tick_interval > 0,
                      "tick_interval must be positive")
        self._require(self.max_batch_per_tick >= 1,
                      "max_batch_per_tick must be >= 1")
        self._require(self.drr_quantum > 0,
                      "drr_quantum must be positive")
        if self.default_quota is not None:
            self.default_quota.validate()


class ServiceSession:
    """One tenant session: a lightweight submission handle.

    States: ``Open`` -> ``Closing`` (close requested, work in flight)
    -> ``Closed``; or ``Rejected`` when admission refused the open.
    """

    __slots__ = ("service", "tenant", "sid", "index", "state",
                 "opened_at", "closed_at", "tickets", "outstanding",
                 "_drained")

    def __init__(self, service: "PilotService", tenant: str, sid: str,
                 index: int, rejected: bool = False):
        self.service = service
        self.tenant = tenant
        self.sid = sid
        self.index = index
        self.state = "Rejected" if rejected else "Open"
        self.opened_at = service.env.now
        self.closed_at: Optional[float] = None
        self.tickets: List[Ticket] = []
        self.outstanding = 0
        self._drained: List[Event] = []

    @property
    def rejected(self) -> bool:
        return self.state == "Rejected"

    # ------------------------------------------------------------ submission
    def submit_units(self, descriptions) -> Ticket:
        """Queue compute units (dicts or ComputeUnitDescriptions) for
        batched submission; returns the ticket immediately."""
        if isinstance(descriptions, (dict, ComputeUnitDescription)):
            descriptions = [descriptions]
        descs = [d if isinstance(d, ComputeUnitDescription)
                 else _unit_description_from_dict(d)
                 for d in descriptions]
        return self.service._submit(self, "units", descs, len(descs))

    def submit_raptor(self, tasks: Sequence[Any]) -> Ticket:
        """Queue raptor function tasks for the service's overlay."""
        if self.service._overlay is None:
            raise RuntimeError(
                f"service {self.service.uid} has no raptor overlay "
                f"attached; call attach_overlay() first")
        tasks = list(tasks)
        return self.service._submit(self, "raptor", tasks, len(tasks))

    def submit_pilot(self, description) -> Ticket:
        """Queue a pilot request; the ticket settles once the pilot is
        ACTIVE (Done) or final without activating (Failed)."""
        if isinstance(description, dict):
            description = _pilot_description_from_dict(description)
        description.validate()
        return self.service._submit(self, "pilot", description, 1)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop accepting work; the session reaches ``Closed`` once its
        in-flight tickets settle."""
        if self.state in ("Closed", "Rejected"):
            return
        if self.outstanding:
            self.state = "Closing"
        else:
            self.service._session_closed(self)

    def drained(self) -> Event:
        """Event firing when every ticket of this session has settled."""
        event = Event(self.service.env)
        if self.outstanding == 0:
            event.succeed(self)
        else:
            self._drained.append(event)
        return event

    # --------------------------------------------------------------- queries
    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-able view (the query surface's row format)."""
        by_state: Dict[str, int] = {}
        for ticket in self.tickets:
            by_state[ticket.state] = by_state.get(ticket.state, 0) + 1
        return {
            "id": self.sid,
            "tenant": self.tenant,
            "state": self.state,
            "openedTime": self.opened_at,
            "closedTime": self.closed_at,
            "tickets": len(self.tickets),
            "outstanding": self.outstanding,
            "ticketsByState": by_state,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceSession {self.sid} {self.state}>"


class PilotService:
    """The long-lived multi-tenant service (one per simulated process).

    Built over a caller-provided :class:`~repro.core.session.Session`;
    pilots are shared capacity (``add_pilots``), a raptor overlay can
    be attached for function-task requests, and tenant work flows
    through admission -> fair-share -> batched dispatch.
    """

    def __init__(self, session, config: Optional[ServiceConfig] = None):
        self.session = session
        self.env = session.env
        self.config = (config or ServiceConfig()).validate()
        self.uid = session.next_uid("service")
        self.metrics = MetricsRegistry(self.env)
        self._umgr = UnitManager(session)
        self._pmgr = None             # lazy: only pilot tickets need it
        self._overlay = None
        self._accounts: Dict[str, TenantAccount] = {}
        self._drr = WeightedDeficitRoundRobin(self.config.drr_quantum)
        self._queues: Dict[str, Deque[Ticket]] = {}
        self._sessions: Dict[str, ServiceSession] = {}
        self._session_counters: Dict[str, int] = {}
        self._outstanding = 0         # queued + in-flight tickets
        self._work: Optional[Event] = None
        self._epoch = self.env.now
        self._quiesce_waiters: List[Event] = []
        self._submit_hist = self.metrics.histogram(
            "service.submit_latency", bounds=SUBMIT_LATENCY_BOUNDS)
        self._complete_hist = self.metrics.histogram(
            "service.completion_latency",
            bounds=COMPLETION_LATENCY_BOUNDS)
        self._open_gauge = self.metrics.gauge("service.open_sessions")
        self._proc = self.env.process(self._drain_loop(),
                                      name=f"{self.uid}-drain")

    # ------------------------------------------------------------- capacity
    def add_pilots(self, pilots) -> None:
        """Add shared pilot capacity for unit-kind requests."""
        self._umgr.add_pilots(pilots)

    def attach_overlay(self, overlay) -> None:
        """Attach a raptor overlay serving raptor-kind requests."""
        self._overlay = overlay

    @property
    def overlay(self):
        return self._overlay

    # -------------------------------------------------------------- tenants
    def register_tenant(self, name: str,
                        quota: Optional[TenantQuota] = None
                        ) -> TenantAccount:
        """Register a tenant (idempotent; re-registration updates the
        quota and fair-share weight)."""
        if quota is None:
            quota = self.config.default_quota or TenantQuota()
        account = self._accounts.get(name)
        if account is None:
            account = TenantAccount(name, quota)
            self._accounts[name] = account
            self._queues[name] = deque()
            self._session_counters[name] = 0
        else:
            account.quota = quota.validate()
        self._drr.register(name, quota.weight)
        return account

    def open_session(self, tenant: str) -> ServiceSession:
        """Open a session for ``tenant`` (non-blocking).

        Over-quota opens return a session in the ``Rejected`` state —
        an explicit, queryable outcome rather than an exception or a
        silent drop.
        """
        account = self._accounts.get(tenant)
        if account is None:
            raise KeyError(f"unknown tenant {tenant!r}; "
                           f"register_tenant() first")
        self._session_counters[tenant] += 1
        index = self._session_counters[tenant]
        sid = f"{tenant}/{index}"
        admitted = account.admit_session()
        sess = ServiceSession(self, tenant, sid, index,
                              rejected=not admitted)
        self._sessions[sid] = sess
        if admitted:
            self._open_gauge.add(1)
        return sess

    # ------------------------------------------------------------ submission
    def _submit(self, sess: ServiceSession, kind: str, payload: Any,
                size: int) -> Ticket:
        if sess.state not in ("Open",):
            raise RuntimeError(
                f"session {sess.sid} is {sess.state}; cannot submit")
        account = self._accounts[sess.tenant]
        ticket = Ticket(self.env, self.session.next_uid("ticket", width=6),
                        sess.tenant, sess.sid, kind, size, payload)
        sess.tickets.append(ticket)
        decision = account.admit()
        if decision == REJECTED:
            ticket._settle(self.env.now, RequestState.REJECTED,
                           "tenant pending queue full")
            self.metrics.counter("service.rejected").inc()
            return ticket
        if decision == THROTTLED:
            ticket.state = RequestState.THROTTLED
            self.metrics.counter("service.throttled").inc()
        self.metrics.counter("service.submitted").inc()
        sess.outstanding += 1
        self._outstanding += 1
        self._queues[sess.tenant].append(ticket)
        self._wake()
        return ticket

    def _wake(self) -> None:
        wake, self._work = self._work, None
        if wake is not None and not wake.triggered:
            wake.succeed()

    # --------------------------------------------------------- drain loop
    def _drain_loop(self):
        """Batched dispatch: park while idle, tick while backlogged.

        Ticks land on phase-aligned instants (``epoch + k * tick``) so
        runs are deterministic regardless of when submissions arrive
        between ticks.
        """
        cfg = self.config
        env = self.env
        while True:
            while not any(self._queues.values()):
                self._work = Event(env)
                yield self._work
            k = int((env.now - self._epoch) // cfg.tick_interval) + 1
            yield env.timeout(self._epoch + k * cfg.tick_interval
                              - env.now)
            batch = self._drr.drain(self._queues, cfg.max_batch_per_tick)
            for _tenant, ticket in batch:
                self._dispatch(ticket)

    def _dispatch(self, ticket: Ticket) -> None:
        now = self.env.now
        account = self._accounts[ticket.tenant]
        account.dispatched()
        ticket.submitted_at = now
        ticket.state = RequestState.SUBMITTED
        self._submit_hist.observe(now - ticket.enqueued_at)
        if ticket.kind == "units":
            units = self._umgr.submit_units(ticket.payload)
            self._umgr.wait_units(units).callbacks.append(
                lambda _e, t=ticket, us=units: self._settle_units(t, us))
        elif ticket.kind == "raptor":
            futures = self._overlay.submit_tasks(ticket.payload,
                                                 futures=True)
            self.env.all_of([f.wait() for f in futures]).callbacks.append(
                lambda _e, t=ticket, fs=futures: self._settle_raptor(t, fs))
        elif ticket.kind == "pilot":
            pilot = self._pilot_manager().submit_pilot(ticket.payload)
            self.add_pilots(pilot)
            self.env.any_of([pilot.wait(PilotState.ACTIVE),
                             pilot.wait()]).callbacks.append(
                lambda _e, t=ticket, p=pilot: self._settle_pilot(t, p))
        else:  # pragma: no cover - _submit gates the kinds
            raise ValueError(f"unknown ticket kind {ticket.kind!r}")

    def _pilot_manager(self):
        if self._pmgr is None:
            from repro.core.pilot_manager import PilotManager
            self._pmgr = PilotManager(self.session)
        return self._pmgr

    # ------------------------------------------------------------ settlement
    def _settle_units(self, ticket: Ticket, units) -> None:
        failed = sum(1 for u in units if u.state is not UnitState.DONE)
        self._settle(ticket, ok=failed == 0,
                     detail="" if failed == 0
                     else f"{failed}/{len(units)} units not Done")

    def _settle_raptor(self, ticket: Ticket, futures) -> None:
        failed = sum(1 for f in futures if not f.result().ok)
        self._settle(ticket, ok=failed == 0,
                     detail="" if failed == 0
                     else f"{failed}/{len(futures)} tasks failed")

    def _settle_pilot(self, ticket: Ticket, pilot) -> None:
        ok = pilot.state is PilotState.ACTIVE
        self._settle(ticket, ok=ok,
                     detail="" if ok else f"pilot {pilot.state.value}")

    def _settle(self, ticket: Ticket, ok: bool, detail: str) -> None:
        now = self.env.now
        account = self._accounts[ticket.tenant]
        account.settled(ok)
        ticket._settle(now, RequestState.DONE if ok
                       else RequestState.FAILED, detail)
        self._complete_hist.observe(now - ticket.enqueued_at)
        self.metrics.counter("service.completed" if ok
                             else "service.failed").inc()
        sess = self._sessions[ticket.session_id]
        sess.outstanding -= 1
        if sess.outstanding == 0:
            drained, sess._drained = sess._drained, []
            for event in drained:
                if not event.triggered:
                    event.succeed(sess)
            if sess.state == "Closing":
                self._session_closed(sess)
        self._outstanding -= 1
        if self._outstanding == 0:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed(self)

    def _session_closed(self, sess: ServiceSession) -> None:
        sess.state = "Closed"
        sess.closed_at = self.env.now
        self._accounts[sess.tenant].session_closed()
        self._open_gauge.add(-1)

    # -------------------------------------------------------------- waiting
    def quiesced(self) -> Event:
        """Event firing when no ticket is queued or in flight."""
        event = Event(self.env)
        if self._outstanding == 0:
            event.succeed(self)
        else:
            self._quiesce_waiters.append(event)
        return event

    @property
    def peak_open_sessions(self) -> int:
        """High-water mark of concurrently open sessions."""
        peak = self._open_gauge.max()
        return 0 if peak is None else int(peak)

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: tenants, tickets and latency metrics.

        Built from the same canonical counters the ``/metrics`` query
        surface serves, so the persisted view and the live query
        surface can never disagree.
        """
        return {"kind": "pilot_service", "uid": self.uid,
                "outstanding": self._outstanding,
                "metrics": self._metrics_snapshot(),
                "tenants": sorted(self._accounts)}

    # ---------------------------------------------------------- query surface
    #: The registered endpoint shapes (YARN-RM style).
    ENDPOINTS = ("/", "/tenants", "/tenants/<tenant>",
                 "/tenants/<tenant>/sessions",
                 "/tenants/<tenant>/sessions/<n>", "/sessions",
                 "/metrics")

    def query(self, path: str) -> Dict[str, Any]:
        """Serve one REST-style endpoint; raises ``KeyError`` on
        unknown paths or entities.  Shapes mirror the YARN RM webservice
        (``/ws/v1/cluster/...``) the repo's YARN model exposes."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            return {"service": self.uid,
                    "endpoints": list(self.ENDPOINTS)}
        if parts[0] == "tenants":
            if len(parts) == 1:
                return {"tenants": [a.snapshot()
                                    for a in self._accounts.values()]}
            account = self._accounts.get(parts[1])
            if account is None:
                raise KeyError(f"unknown tenant {parts[1]!r}")
            if len(parts) == 2:
                return account.snapshot()
            if parts[2] == "sessions":
                sessions = [s for s in self._sessions.values()
                            if s.tenant == parts[1]]
                if len(parts) == 3:
                    return {"sessions": [s.snapshot()
                                         for s in sessions]}
                if len(parts) == 4:
                    sess = self._sessions.get(f"{parts[1]}/{parts[3]}")
                    if sess is None:
                        raise KeyError(
                            f"unknown session {parts[1]}/{parts[3]}")
                    out = sess.snapshot()
                    out["ticketList"] = [t.snapshot()
                                         for t in sess.tickets]
                    return out
        elif parts == ["sessions"]:
            by_state: Dict[str, int] = {}
            for sess in self._sessions.values():
                by_state[sess.state] = by_state.get(sess.state, 0) + 1
            return {"count": len(self._sessions),
                    "peakOpen": self.peak_open_sessions,
                    "byState": by_state,
                    "sessions": [s.snapshot()
                                 for s in self._sessions.values()]}
        elif parts == ["metrics"]:
            return self._metrics_snapshot()
        raise KeyError(f"unknown endpoint {path!r}; "
                       f"known: {', '.join(self.ENDPOINTS)}")

    def query_json(self, path: str) -> str:
        """:meth:`query`, serialized as canonical JSON."""
        return json.dumps(self.query(path), sort_keys=True,
                          separators=(",", ":"))

    def _counter(self, name: str) -> float:
        return self.metrics.counter(name).total

    def _metrics_snapshot(self) -> Dict[str, Any]:
        def hist(h) -> Dict[str, Any]:
            pcts = h.percentiles((50, 95, 99))
            return {"count": h.count, "mean": h.mean,
                    "p50": pcts[50], "p95": pcts[95], "p99": pcts[99]}
        open_now = self._open_gauge.value
        return {
            "submitLatency": hist(self._submit_hist),
            "completionLatency": hist(self._complete_hist),
            "tickets": {
                "submitted": self._counter("service.submitted"),
                "throttled": self._counter("service.throttled"),
                "rejected": self._counter("service.rejected"),
                "completed": self._counter("service.completed"),
                "failed": self._counter("service.failed"),
                "outstanding": self._outstanding,
            },
            "sessions": {
                "open": 0 if open_now is None else int(open_now),
                "peakOpen": self.peak_open_sessions,
                "total": len(self._sessions),
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PilotService {self.uid}: "
                f"{len(self._accounts)} tenants, "
                f"{self._outstanding} outstanding>")
