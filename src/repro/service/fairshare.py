"""Weighted deficit round-robin across tenant request queues.

The dispatcher's fairness core: each drain pass walks the registered
tenants in registration order, tops every backlogged tenant's deficit
up by ``quantum * weight``, and dispatches whole requests while the
deficit covers them.  Properties the tests pin down:

* *starvation-freedom* — any tenant with backlog receives at least
  ``floor(quantum * weight)`` dispatches' worth of credit per pass, no
  matter how large another tenant's backlog is;
* *work conservation* — the drain never returns fewer items than the
  budget allows while any queue is non-empty;
* *determinism* — tenants are visited in registration order from a
  persistent cursor, so equal inputs drain identically everywhere.
"""

from __future__ import annotations

from typing import Any, Deque, Dict, List, Tuple


class WeightedDeficitRoundRobin:
    """Deficit round-robin over named queues with per-tenant weights.

    ``cost`` is 1 per request (requests are batches already; weighting
    by item count would let one tenant's giant batches starve the
    grid's cadence guarantee).
    """

    def __init__(self, quantum: float = 1.0):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self._weights: Dict[str, float] = {}
        self._deficits: Dict[str, float] = {}
        self._cursor = 0

    def register(self, tenant: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        if tenant in self._weights:
            self._weights[tenant] = float(weight)
            return
        self._weights[tenant] = float(weight)
        self._deficits[tenant] = 0.0

    @property
    def tenants(self) -> List[str]:
        return list(self._weights)

    def drain(self, queues: Dict[str, Deque[Any]],
              budget: int) -> List[Tuple[str, Any]]:
        """Dispatch up to ``budget`` requests fairly; returns
        ``(tenant, item)`` pairs in dispatch order.

        ``queues`` maps tenant -> deque of pending requests (only
        registered tenants are served).  Queues the caller mutates
        between calls are fine — the scheduler holds no queue state,
        only deficits and the round-robin cursor.
        """
        order = list(self._weights)
        if not order or budget <= 0:
            return []
        out: List[Tuple[str, Any]] = []
        n = len(order)
        # Passes restart from the persistent cursor so a small budget
        # does not always favour the earliest-registered tenant.
        while len(out) < budget:
            if not any(queues.get(t) for t in order):
                break
            tenant = order[self._cursor % n]
            self._cursor = (self._cursor + 1) % n
            queue = queues.get(tenant)
            if not queue:
                # Standard DRR: an idle tenant's deficit resets, so it
                # cannot bank credit and later burst past the others.
                self._deficits[tenant] = 0.0
                continue
            # One quantum per visit; visits interleave in registration
            # order, so the per-round share converges to the weights
            # while the drain itself stays work-conserving (it keeps
            # cycling until the budget or the backlog runs out).
            self._deficits[tenant] += self.quantum * self._weights[tenant]
            while queue and len(out) < budget \
                    and self._deficits[tenant] >= 1.0:
                self._deficits[tenant] -= 1.0
                out.append((tenant, queue.popleft()))
            if not queue:
                self._deficits[tenant] = 0.0
        return out
