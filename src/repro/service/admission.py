"""Admission control: per-tenant quotas, bounded queues, backpressure.

The service's first line of defense against unbounded growth: every
request a tenant submits becomes a :class:`Ticket` that is either
*admitted* into the tenant's bounded queue, *throttled* (admitted, but
the tenant is above its backpressure watermark and should slow down),
or *rejected* outright (queue full / over quota).  Rejections are
first-class results — the ticket settles in the ``Rejected`` state and
is counted, never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.description import Description
from repro.sim.engine import Environment, Event


class RequestState:
    """Lifecycle of one service request (a :class:`Ticket`).

    ``QUEUED``/``THROTTLED`` -> ``SUBMITTED`` -> ``DONE``/``FAILED``,
    or straight to ``REJECTED`` when admission refuses the request.
    """

    QUEUED = "Queued"
    THROTTLED = "Throttled"
    SUBMITTED = "Submitted"
    DONE = "Done"
    FAILED = "Failed"
    REJECTED = "Rejected"

    FINAL = (DONE, FAILED, REJECTED)

    @classmethod
    def is_final(cls, state: str) -> bool:
        return state in cls.FINAL


#: Admission decisions (`admit()` return values).
ADMITTED = "admitted"
THROTTLED = "throttled"
REJECTED = "rejected"


@dataclass
class TenantQuota(Description):
    """What one tenant may hold open against the service at once."""

    #: Concurrent open sessions (an over-quota ``open_session`` is
    #: rejected, visibly).
    max_sessions: int = 100_000
    #: Queued-but-not-yet-dispatched requests (the bounded queue).
    max_pending: int = 100_000
    #: Dispatched-but-unfinished requests (in-flight cap; submissions
    #: above it queue up but the queue bound still applies).
    max_in_flight: int = 1_000_000
    #: Fair-share weight for the deficit round-robin dispatcher.
    weight: float = 1.0
    #: Fraction of ``max_pending`` above which admissions are flagged
    #: ``Throttled`` — accepted, but the caller is told to back off.
    throttle_watermark: float = 0.75

    def _check(self) -> None:
        self._require(self.max_sessions >= 1,
                      "max_sessions must be >= 1")
        self._require(self.max_pending >= 1, "max_pending must be >= 1")
        self._require(self.max_in_flight >= 1,
                      "max_in_flight must be >= 1")
        self._require(self.weight > 0, "weight must be positive")
        self._require(0.0 < self.throttle_watermark <= 1.0,
                      "throttle_watermark must be in (0, 1]")


class Ticket:
    """One asynchronous service request and its completion handle."""

    __slots__ = ("uid", "tenant", "session_id", "kind", "size", "state",
                 "detail", "enqueued_at", "submitted_at", "finished_at",
                 "_event", "payload")

    def __init__(self, env: Environment, uid: str, tenant: str,
                 session_id: str, kind: str, size: int, payload: Any):
        self.uid = uid
        self.tenant = tenant
        self.session_id = session_id
        self.kind = kind              # "units" | "raptor" | "pilot"
        self.size = size              # work items carried
        self.payload = payload
        self.state = RequestState.QUEUED
        self.detail = ""
        self.enqueued_at = env.now
        self.submitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._event = Event(env)

    @property
    def done(self) -> bool:
        return self._event.triggered

    def wait(self) -> Event:
        """Event firing with the ticket once it settles."""
        return self._event

    def _settle(self, now: float, state: str, detail: str = "") -> None:
        self.state = state
        self.detail = detail
        self.finished_at = now
        if not self._event.triggered:
            self._event.succeed(self)

    @property
    def submit_latency(self) -> Optional[float]:
        """Enqueue-to-dispatch latency (None while queued/rejected)."""
        if self.submitted_at is None:
            return None
        return self.submitted_at - self.enqueued_at

    @property
    def completion_latency(self) -> Optional[float]:
        """Enqueue-to-settle latency (None while in flight)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.enqueued_at

    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-able view (the query surface's row format)."""
        return {
            "id": self.uid,
            "tenant": self.tenant,
            "session": self.session_id,
            "kind": self.kind,
            "size": self.size,
            "state": self.state,
            "detail": self.detail,
            "enqueuedTime": self.enqueued_at,
            "submittedTime": self.submitted_at,
            "finishedTime": self.finished_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ticket {self.uid} {self.kind} {self.state}>"


class TenantAccount:
    """Admission bookkeeping for one registered tenant."""

    __slots__ = ("name", "quota", "open_sessions", "pending", "in_flight",
                 "sessions_opened", "sessions_rejected", "submitted",
                 "throttled", "rejected", "completed", "failed")

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota.validate()
        self.open_sessions = 0
        self.pending = 0
        self.in_flight = 0
        self.sessions_opened = 0
        self.sessions_rejected = 0
        self.submitted = 0      # tickets admitted (incl. throttled)
        self.throttled = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------ decisions
    def admit_session(self) -> bool:
        if self.open_sessions >= self.quota.max_sessions:
            self.sessions_rejected += 1
            return False
        self.open_sessions += 1
        self.sessions_opened += 1
        return True

    def admit(self) -> str:
        """Admission decision for one new request ticket."""
        q = self.quota
        if self.pending >= q.max_pending:
            self.rejected += 1
            return REJECTED
        if self.pending + self.in_flight >= q.max_pending + q.max_in_flight:
            self.rejected += 1
            return REJECTED
        self.pending += 1
        self.submitted += 1
        if self.pending > q.throttle_watermark * q.max_pending:
            self.throttled += 1
            return THROTTLED
        return ADMITTED

    # ---------------------------------------------------------- transitions
    def dispatched(self) -> None:
        self.pending -= 1
        self.in_flight += 1

    def settled(self, ok: bool) -> None:
        self.in_flight -= 1
        if ok:
            self.completed += 1
        else:
            self.failed += 1

    def session_closed(self) -> None:
        self.open_sessions -= 1

    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-able view for the query surface."""
        return {
            "name": self.name,
            "weight": self.quota.weight,
            "maxSessions": self.quota.max_sessions,
            "maxPending": self.quota.max_pending,
            "openSessions": self.open_sessions,
            "sessionsOpened": self.sessions_opened,
            "sessionsRejected": self.sessions_rejected,
            "pending": self.pending,
            "inFlight": self.in_flight,
            "submitted": self.submitted,
            "throttled": self.throttled,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
        }
