"""Deterministic multi-tenant load generation against one PilotService.

:func:`run_load` builds a complete simulated world (machine + pilot +
raptor overlay + service), drives an open-loop arrival process — every
tenant's session-open instants are drawn from a per-tenant named RNG
stream, so a tenant's arrivals are identical no matter which shard of a
sharded run it lands in — and returns one flat, JSON-able result row
with throughput, admission and latency-percentile numbers.

Everything here is simulation-side and seed-deterministic: wall-clock
measurement belongs to ``benchmarks/bench_service.py``, which wraps
this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.description import Description
from repro.service.admission import TenantQuota
from repro.service.service import PilotService, ServiceConfig


@dataclass
class LoadSpec(Description):
    """One service load scenario (the unit of sharding and sweeping)."""

    #: Tenants in the *full* scenario (names ``tenant-000``...).
    tenants: int = 8
    #: Sessions each tenant opens over the arrival window.
    sessions_per_tenant: int = 16
    #: Raptor tasks submitted per session (one ticket).
    tasks_per_session: int = 2
    #: Open-loop arrival window (simulated seconds).
    arrival_window: float = 2.0
    #: Modeled compute per task; keep it longer than the arrival window
    #: so no session drains before the last one arrives (that is what
    #: makes "concurrent sessions" mean what it says).
    task_seconds: float = 5.0
    machine: str = "stampede"
    num_nodes: int = 3
    pilot_nodes: int = 2
    raptor_workers: int = 31
    seed: int = 42
    tick_interval: float = 0.05
    max_batch_per_tick: int = 256
    drr_quantum: float = 8.0
    #: Per-tenant bounded-queue size; ``None`` = effectively unbounded
    #: (the admission sweep cell sets a small value to force visible
    #: ``Rejected`` outcomes).
    max_pending: Optional[int] = None
    #: This shard's index / total shard count (shared-nothing split of
    #: the tenant set; see :mod:`repro.service.sharding`).
    shard: int = 0
    shards: int = 1

    def _check(self) -> None:
        self._require(self.tenants >= 1, "need >= 1 tenant")
        self._require(self.sessions_per_tenant >= 1,
                      "need >= 1 session per tenant")
        self._require(self.tasks_per_session >= 1,
                      "need >= 1 task per session")
        self._require(self.arrival_window > 0,
                      "arrival_window must be positive")
        self._require(self.task_seconds >= 0,
                      "task_seconds must be non-negative")
        self._require(self.raptor_workers >= 1, "need >= 1 worker")
        self._require(self.shards >= 1, "shards must be >= 1")
        self._require(0 <= self.shard < self.shards,
                      "shard must be in [0, shards)")
        if self.max_pending is not None:
            self._require(self.max_pending >= 1,
                          "max_pending must be >= 1")

    def tenant_names(self) -> List[str]:
        """This shard's tenants (all of them for an unsharded run)."""
        from repro.service.sharding import shard_of
        names = [f"tenant-{i:03d}" for i in range(self.tenants)]
        if self.shards == 1:
            return names
        return [n for n in names
                if shard_of(n, self.shards) == self.shard]


def _arrivals(spec: LoadSpec, session) -> List[Tuple[float, str]]:
    """Sorted (time, tenant) arrival instants, drawn per tenant.

    Per-tenant named streams make a tenant's draws independent of which
    other tenants share the world — the sharding determinism tests rely
    on this.
    """
    out: List[Tuple[float, str]] = []
    for tenant in spec.tenant_names():
        stream = session.rng.stream(f"service.load.{tenant}")
        out.extend((stream.uniform(0.0, spec.arrival_window), tenant)
                   for _ in range(spec.sessions_per_tenant))
    out.sort()
    return out


def run_load(spec: LoadSpec) -> Dict[str, Any]:
    """Run one load scenario to quiescence; returns a flat result row."""
    from repro.api import RaptorConfig, TaskDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    spec.validate()
    tenants = spec.tenant_names()
    testbed = Testbed(spec.machine, num_nodes=spec.num_nodes,
                      seed=spec.seed)
    env = testbed.env
    service = PilotService(testbed.session, ServiceConfig(
        tick_interval=spec.tick_interval,
        max_batch_per_tick=spec.max_batch_per_tick,
        drr_quantum=spec.drr_quantum))
    quota = TenantQuota() if spec.max_pending is None \
        else TenantQuota(max_pending=spec.max_pending)
    for tenant in tenants:
        service.register_tenant(tenant, quota)

    overlay = None
    if tenants:
        pilot, _, _ = testbed.start_pilot(
            nodes=spec.pilot_nodes, agent_config=agent_config("fork"))
        service.add_pilots(pilot)
        overlay = testbed.session.raptor(
            pilot, workers=spec.raptor_workers,
            config=RaptorConfig(retain_results=False))
        env.run(overlay.ready())
        service.attach_overlay(overlay)

    t_start = env.now

    def drive():
        task = TaskDescription(cpu_seconds=spec.task_seconds)
        for at, tenant in _arrivals(spec, testbed.session):
            if t_start + at > env.now:
                yield env.timeout(t_start + at - env.now)
            sess = service.open_session(tenant)
            if sess.rejected:
                continue
            sess.submit_raptor([task] * spec.tasks_per_session)
            # Sessions close themselves once their work settles, which
            # is what makes the open-session gauge a concurrency count.
            sess.close()

    env.run(env.process(drive(), name="service-load"))
    env.run(service.quiesced())
    makespan = env.now - t_start
    metrics = service.query("/metrics")
    sessions = service.query("/sessions")
    tenants_view = service.query("/tenants")["tenants"]
    if overlay is not None:
        env.run(overlay.close(drain=True))

    by_state = sessions["byState"]
    row: Dict[str, Any] = {
        "shard": spec.shard,
        "shards": spec.shards,
        "tenants": len(tenants),
        "sessions_opened": sum(t["sessionsOpened"] for t in tenants_view),
        "sessions_rejected": sum(t["sessionsRejected"]
                                 for t in tenants_view),
        "sessions_closed": by_state.get("Closed", 0),
        "peak_concurrent_sessions": sessions["peakOpen"],
        "tickets_submitted": int(metrics["tickets"]["submitted"]),
        "tickets_throttled": int(metrics["tickets"]["throttled"]),
        "tickets_rejected": int(metrics["tickets"]["rejected"]),
        "tickets_completed": int(metrics["tickets"]["completed"]),
        "tickets_failed": int(metrics["tickets"]["failed"]),
        "makespan": makespan,
    }
    for name, hist in (("submit", metrics["submitLatency"]),
                       ("completion", metrics["completionLatency"])):
        for p in (50, 95, 99):
            value = hist[f"p{p}"]
            row[f"{name}_p{p}"] = 0.0 if value is None else float(value)
    return row
