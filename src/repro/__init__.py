"""repro: a reproduction of "Hadoop on HPC: Integrating Hadoop and
Pilot-based Dynamic Resource Management" (Luckow et al., 2016).

The package implements the paper's system -- RADICAL-Pilot with YARN
and Spark extensions (Modes I and II) plus SAGA-Hadoop -- together with
every substrate it runs on (machines, batch schedulers, SAGA, HDFS,
YARN, MapReduce, Spark, a MongoDB-like store), all over a
deterministic discrete-event simulation.  Start with:

* :mod:`repro.core` -- the Pilot-Abstraction (the paper's contribution);
* :mod:`repro.hadoop_deploy` -- SAGA-Hadoop;
* :mod:`repro.experiments` -- the Figure 5/6 harnesses;
* ``README.md`` / ``DESIGN.md`` / ``EXPERIMENTS.md`` at the repo root.
"""

__version__ = "1.0.0"
