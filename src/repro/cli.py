"""Declarative subcommand registry for ``python -m repro``.

Every CLI verb is one :class:`Command` spec — name, argument specs,
runner, documented exit codes — collected in :data:`REGISTRY`.  The
parser is *derived* from the registry, so adding a verb is adding one
entry, and the help text, dispatch table and exit-code contract can
never drift apart.

Renamed flags keep their old spellings as **deprecation-gated
aliases**: the old flag still works, stores to the same destination,
and emits a :class:`DeprecationWarning` naming the replacement.  The
test suite runs with ``-W error::DeprecationWarning``, so nothing in
the repo may still use an old spelling.

Current aliases:

===================  ==================  =====================
command              deprecated          replacement
===================  ==================  =====================
``sweep``            ``--out``           ``--output``
``trace``            ``--out``           ``--output``
``audit-state``      ``--update``        ``--update-manifest``
===================  ==================  =====================
"""

from __future__ import annotations

import argparse
import sys
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.sweeps import GRIDS


# ----------------------------------------------------------- argument specs
def _deprecated_action(primary: str, store_true: bool):
    """An argparse action for an old flag spelling: warn, then store."""

    class _Alias(argparse.Action):
        def __init__(self, option_strings, dest, **kwargs):
            if store_true:
                kwargs["nargs"] = 0
            super().__init__(option_strings, dest, **kwargs)

        def __call__(self, parser, namespace, values, option_string=None):
            warnings.warn(
                f"{option_string} is deprecated; use {primary}",
                DeprecationWarning, stacklevel=2)
            setattr(namespace, self.dest,
                    True if store_true else values)

    return _Alias


@dataclass(frozen=True)
class Arg:
    """One ``add_argument`` call, plus optional deprecated spellings."""

    flags: Tuple[str, ...]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    deprecated: Tuple[str, ...] = ()

    def add_to(self, parser: argparse.ArgumentParser) -> None:
        action = parser.add_argument(*self.flags, **self.kwargs)
        store_true = self.kwargs.get("action") == "store_true"
        for old in self.deprecated:
            parser.add_argument(
                old, dest=action.dest,
                action=_deprecated_action(self.flags[0], store_true),
                default=argparse.SUPPRESS, help=argparse.SUPPRESS)


def arg(*flags: str, deprecated: Tuple[str, ...] = (),
        **kwargs: Any) -> Arg:
    return Arg(flags=flags, kwargs=kwargs, deprecated=tuple(deprecated))


@dataclass(frozen=True)
class Command:
    """One CLI verb: its arguments, runner and exit-code contract."""

    name: str
    help: str
    runner: Callable[[argparse.Namespace], int]
    args: Tuple[Arg, ...] = ()
    exit_codes: Tuple[Tuple[int, str], ...] = (
        (0, "success"), (2, "usage error"))
    description: Optional[str] = None

    def add_to(self, subparsers) -> None:
        epilog = "exit codes: " + "; ".join(
            f"{code} = {meaning}" for code, meaning in self.exit_codes)
        parser = subparsers.add_parser(
            self.name, help=self.help,
            description=self.description or self.help, epilog=epilog)
        for spec in self.args:
            spec.add_to(parser)


# ----------------------------------------------------------------- runners
def _figure5() -> None:
    from repro.experiments import (
        run_figure5_pilot_startup,
        run_figure5_unit_startup,
    )
    from repro.experiments.tables import figure5_report
    print(figure5_report(run_figure5_pilot_startup(),
                         run_figure5_unit_startup()))


def _figure6(quick: bool) -> None:
    from repro.experiments import run_figure6
    from repro.experiments.tables import figure6_report
    kwargs = {}
    if quick:
        kwargs = {"scenarios": [(10_000, 5_000), (1_000_000, 50)],
                  "task_counts": [8, 32]}
    print(figure6_report(run_figure6(**kwargs)))


def _ablations() -> None:
    from repro.experiments.ablations import (
        run_am_reuse,
        run_integration_level,
        run_spark_deploy_mode,
    )
    from repro.experiments.tables import format_table
    a1 = run_integration_level()
    print("A1 — YARN integration level (CU startup)")
    print(format_table(["wiring", "CU startup (s)", "WAN round-trips"],
                       [(r.wiring, r.unit_startup, r.wan_roundtrips)
                        for r in a1]))
    a2 = run_spark_deploy_mode()
    print("\nA2 — Spark deployment mode (cluster-ready time)")
    print(format_table(["mode", "cluster ready (s)", "frameworks"],
                       [(r.mode, r.cluster_ready, r.frameworks_started)
                        for r in a2]))
    a3 = run_am_reuse()
    print("\nA3 — Application Master re-use (warm CU startup)")
    print(format_table(["mode", "warm CU startup (s)"],
                       [(r.mode, r.warm_unit_startup) for r in a3]))


def _sensitivity() -> None:
    from repro.experiments.sensitivity import (
        crossover_bandwidth,
        sweep_lustre_bandwidth,
    )
    from repro.experiments.tables import format_table
    rows = sweep_lustre_bandwidth()
    print("S1 — YARN advantage vs job-visible Lustre bandwidth")
    print(format_table(
        ["lustre share (MB/s)", "RP (s)", "RP-YARN (s)", "advantage (%)"],
        [(f"{r.lustre_bw / 1e6:.0f}", r.rp_runtime, r.yarn_runtime,
          r.yarn_advantage * 100) for r in rows]))
    crossover = crossover_bandwidth(rows)
    if crossover is not None:
        print(f"crossover at ~{crossover / 1e6:.0f} MB/s")


def _run_figure5(args: argparse.Namespace) -> int:
    _figure5()
    print()
    return 0


def _run_figure6(args: argparse.Namespace) -> int:
    _figure6(args.quick)
    print()
    return 0


def _run_ablations(args: argparse.Namespace) -> int:
    _ablations()
    print()
    return 0


def _run_sensitivity(args: argparse.Namespace) -> int:
    _sensitivity()
    return 0


def _run_all(args: argparse.Namespace) -> int:
    _figure5()
    print()
    _figure6(args.quick)
    print()
    _ablations()
    print()
    _sensitivity()
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.runner import format_report, run_traced_kmeans
    try:
        run = run_traced_kmeans(
            machine=args.machine, flavor=args.flavor, points=args.points,
            clusters=args.clusters, ntasks=args.ntasks,
            iterations=args.iterations, seed=args.seed,
            out_dir=args.output)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(run))
    return 0 if run.centroids_ok else 1


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import build_cells, run_sweep
    from repro.experiments.tables import format_table
    from repro.persist import JournalError
    if args.list or args.grid is None:
        # Discoverability: list every registered grid with its size, so
        # new grids never need a trip through the source.
        print("registered sweep grids:")
        for name in GRIDS:
            cells = build_cells(name, root_seed=args.seed,
                                quick=args.quick)
            print(f"  {name:<12} {len(cells)} cells")
        if args.grid is None and not args.list:
            print("\nusage: python -m repro sweep GRID [--jobs N] "
                  "[--quick] [--output FILE] [--run-dir DIR [--resume]]")
        return 0
    try:
        run = run_sweep(args.grid, root_seed=args.seed, jobs=args.jobs,
                        quick=args.quick, run_dir=args.run_dir,
                        resume=args.resume, max_cells=args.max_cells)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = "" if run.complete else \
        f" (INCOMPLETE: {len(run.results)} of the grid journaled)"
    print(f"sweep {run.grid}: {len(run.results)} cells "
          f"({run.executed} run, {run.skipped} resumed), "
          f"jobs={run.jobs}, wall {run.wall_seconds:.2f}s, "
          f"digest {run.digest()[:12]}{status}")
    print(format_table(
        ["cell", "wall (s)"],
        [(r["key"], r["wall_seconds"]) for r in run.results]))
    if run.grid == "raptor":
        # The headline comparison: overlay vs. per-unit tasks/sec.
        for result in run.results:
            for row in result["rows"]:
                if "speedup" in row:
                    print(f"{row['ntasks']} tasks: overlay "
                          f"{row['overlay_tasks_per_sec']:.0f} tasks/s "
                          f"vs per-unit YARN "
                          f"{row['per_unit_tasks_per_sec']:.2f} tasks/s "
                          f"-> {row['speedup']:.0f}x")
                elif "identical" in row:
                    state = "identical" if row["identical"] else "DIVERGED"
                    print(f"equivalence ({row['ntasks']} tasks): "
                          f"overlay and per-unit results {state}")
    if args.output:
        import json
        with open(args.output, "w") as fh:
            json.dump(run.report(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.output}")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis.simlint import lint_command
    return lint_command(
        paths=args.paths, output=args.format, check=args.check,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        list_rules=args.list_rules,
        flow=args.flow, graph_cache=args.graph_cache)


def _run_audit_state(args: argparse.Namespace) -> int:
    from repro.analysis.snapshot import audit_command
    return audit_command(
        paths=args.paths, roots=args.root or None,
        manifest_path=args.manifest, baseline_path=args.baseline,
        output=args.format, check=args.check,
        update=args.update_manifest, graph_cache=args.graph_cache)


def _parse_param(item: str) -> Tuple[str, Any]:
    """``K=V`` with JSON-ish value coercion (int, float, bool, str)."""
    if "=" not in item:
        raise ValueError(f"--param needs K=V, got {item!r}")
    key, raw = item.split("=", 1)
    import json
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _run_checkpoint(args: argparse.Namespace) -> int:
    from repro.persist import PersistError, launch, scenario_names
    if args.list or args.scenario is None:
        print("registered checkpoint scenarios:")
        for name in scenario_names():
            print(f"  {name}")
        if args.scenario is None and not args.list:
            print("\nusage: python -m repro checkpoint SCENARIO "
                  "--store DIR [--at T] [--seed N] [--param K=V]...")
        return 0
    try:
        params = dict(_parse_param(item) for item in args.param)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        session = launch(args.scenario, seed=args.seed, **params)
    except (PersistError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.at is not None:
        if args.at < session.env.now:
            print(f"error: --at {args.at} lies before the scenario's "
                  f"own end time {session.env.now:.3f}", file=sys.stderr)
            return 2
        session.env.run(until=args.at)
    try:
        info = session.checkpoint(args.store, ref=args.ref)
    except PersistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"checkpointed scenario {info.scenario!r} at "
          f"t={info.now:.3f} (step {info.steps})")
    print(f"  store: {args.store}")
    print(f"  ref:   {args.ref} -> {info.digest[:16]}")
    print(f"  state: {info.state_digest}")
    return 0


def _run_restore(args: argparse.Namespace) -> int:
    from repro.persist import PersistError, state_digest
    from repro.persist import restore as restore_session
    try:
        session = restore_session(args.store, ref=args.ref)
    except PersistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    prov = session.provenance
    print(f"restored scenario {prov.name!r} (seed {prov.seed}) at "
          f"t={session.env.now:.3f} (step {session.env.steps}); "
          f"state digest verified")
    if args.until is not None:
        if args.until < session.env.now:
            print(f"error: --until {args.until} lies before the "
                  f"restored clock {session.env.now:.3f}",
                  file=sys.stderr)
            return 2
        session.env.run(until=args.until)
        print(f"ran to t={session.env.now:.3f} (step "
              f"{session.env.steps}), state digest "
              f"{state_digest(session)[:16]}")
    return 0


# ---------------------------------------------------------------- registry
_QUICK = arg("--quick", action="store_true",
             help="figure6: run a reduced 16-cell grid")

COMMANDS: Tuple[Command, ...] = (
    Command(name="figure5", runner=_run_figure5,
            help="run the figure5 experiment(s)"),
    Command(name="figure6", runner=_run_figure6,
            help="run the figure6 experiment(s)", args=(_QUICK,)),
    Command(name="ablations", runner=_run_ablations,
            help="run the ablations experiment(s)"),
    Command(name="sensitivity", runner=_run_sensitivity,
            help="run the sensitivity experiment(s)"),
    Command(name="all", runner=_run_all,
            help="run the all experiment(s)", args=(_QUICK,)),
    Command(
        name="sweep", runner=_run_sweep,
        help="run an experiment grid over a process pool "
             f"({', '.join(GRIDS)})",
        args=(
            arg("grid", nargs="?", default=None, choices=list(GRIDS),
                help="grid to run; omit (or --list) to list the "
                     "registered grids"),
            arg("--list", action="store_true",
                help="list the registered sweep grids and exit"),
            arg("--jobs", type=int, default=None, metavar="N",
                help="worker processes (default: all cores; "
                     "1 = sequential reference path)"),
            arg("--seed", type=int, default=42,
                help="root seed; per-cell seeds derive from it"),
            arg("--quick", action="store_true",
                help="figure6/chaos/raptor/service: run a reduced grid"),
            arg("--output", default=None, metavar="FILE",
                deprecated=("--out",),
                help="write the structured JSON result here"),
            arg("--run-dir", default=None, metavar="DIR",
                help="journal per-cell completion here (crash-safe; "
                     "enables --resume)"),
            arg("--resume", action="store_true",
                help="re-run only cells the --run-dir journal does "
                     "not already hold"),
            arg("--max-cells", type=int, default=None, metavar="N",
                help="execute at most N cells this invocation "
                     "(incremental runs)"),
        ),
        exit_codes=((0, "success"), (1, "journal mismatch"),
                    (2, "usage error"))),
    Command(
        name="lint", runner=_run_lint,
        help="run simlint, the determinism linter, over the sources",
        args=(
            arg("paths", nargs="*", default=["src/repro"],
                help="files or directories to lint (default: src/repro)"),
            arg("--format", default="text", choices=["text", "json"],
                dest="format", help="finding output format"),
            arg("--check", action="store_true",
                help="exit 1 when findings differ from the baseline "
                     "(CI mode)"),
            arg("--baseline", default="simlint-baseline.json",
                metavar="FILE",
                help="baseline file of accepted findings"),
            arg("--update-baseline", action="store_true",
                help="rewrite the baseline from this run's findings"),
            arg("--list-rules", action="store_true",
                help="list the registered rules and exit"),
            arg("--flow", action="store_true",
                help="also run the cross-module SIM10x taint pass "
                     "(import-graph-aware)"),
            arg("--graph-cache", default=None, metavar="FILE",
                help="cache the import-graph analysis here "
                     "(shared with audit-state in CI)"),
        ),
        exit_codes=((0, "clean"), (1, "new findings in --check mode"),
                    (2, "usage error"))),
    Command(
        name="audit-state", runner=_run_audit_state,
        help="audit snapshot state reachable from Session/Environment/"
             "PilotService (SIM11x)",
        args=(
            arg("paths", nargs="*", default=["src/repro"],
                help="files or directories to analyze "
                     "(default: src/repro)"),
            arg("--root", action="append", default=[],
                metavar="DOTTED.Class",
                help="override the audited root classes (repeatable)"),
            arg("--manifest", default="state-manifest.json",
                metavar="FILE",
                help="committed state-manifest contract file"),
            arg("--baseline", default="simlint-baseline.json",
                metavar="FILE",
                help="shared baseline ledger of accepted findings"),
            arg("--format", default="text", choices=["text", "json"],
                dest="format", help="finding output format"),
            arg("--check", action="store_true",
                help="exit 1 on manifest/checkpoint-schema drift or "
                     "findings that differ from the baseline (CI mode)"),
            arg("--update-manifest", action="store_true",
                deprecated=("--update",),
                help="rewrite the state manifest from this run"),
            arg("--graph-cache", default=None, metavar="FILE",
                help="cache the import-graph analysis here "
                     "(shared with lint --flow in CI)"),
        ),
        exit_codes=((0, "clean"),
                    (1, "manifest drift or new findings in --check "
                        "mode"),
                    (2, "usage error"))),
    Command(
        name="trace", runner=_run_trace,
        help="run one telemetry-enabled K-Means cell and export traces",
        args=(
            arg("--machine", default="stampede",
                choices=["stampede", "wrangler"]),
            arg("--flavor", default="RP-YARN", choices=["RP", "RP-YARN"],
                help="plain pilot (fork) or Mode I YARN pilot"),
            arg("--points", type=int, default=10_000),
            arg("--clusters", type=int, default=8),
            arg("--ntasks", type=int, default=8),
            arg("--iterations", type=int, default=2),
            arg("--seed", type=int, default=42),
            arg("--output", default=None, metavar="DIR",
                deprecated=("--out",),
                help="write trace.json / spans.jsonl / events.jsonl / "
                     "metrics.jsonl here"),
        ),
        exit_codes=((0, "success"), (1, "centroid validation failed"),
                    (2, "usage error"))),
    Command(
        name="checkpoint", runner=_run_checkpoint,
        help="launch a registered scenario and checkpoint it into a "
             "snapshot store",
        args=(
            arg("scenario", nargs="?", default=None,
                help="registered scenario name; omit (or --list) to "
                     "list them"),
            arg("--list", action="store_true",
                help="list the registered scenarios and exit"),
            arg("--store", default="checkpoint-store", metavar="DIR",
                help="snapshot store directory "
                     "(default: checkpoint-store)"),
            arg("--at", type=float, default=None, metavar="T",
                help="advance the simulation clock to T before "
                     "checkpointing"),
            arg("--seed", type=int, default=42,
                help="scenario seed"),
            arg("--param", action="append", default=[], metavar="K=V",
                help="scenario parameter override (repeatable; JSON "
                     "values)"),
            arg("--ref", default="latest", metavar="NAME",
                help="named ref to point at the snapshot "
                     "(default: latest)"),
        ),
        exit_codes=((0, "success"), (1, "checkpoint failed"),
                    (2, "usage error"))),
    Command(
        name="restore", runner=_run_restore,
        help="restore a checkpointed session and verify its state "
             "digest",
        args=(
            arg("store", metavar="STORE",
                help="snapshot store directory to restore from"),
            arg("--ref", default="latest", metavar="NAME",
                help="snapshot ref or raw digest (default: latest)"),
            arg("--until", type=float, default=None, metavar="T",
                help="after the verified restore, advance the "
                     "simulation clock to T"),
        ),
        exit_codes=((0, "restored and verified"),
                    (1, "restore or verification failed"),
                    (2, "usage error"))),
)

REGISTRY: Dict[str, Command] = {command.name: command
                                for command in COMMANDS}


def build_parser() -> argparse.ArgumentParser:
    """Derive the full CLI parser from :data:`REGISTRY`."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments on the "
                    "simulated testbed.")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    for command in COMMANDS:
        command.add_to(sub)
    return parser


def main(argv=None) -> int:
    """Parse and dispatch; returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # bad args (or --help): report, don't raise
        code = exc.code
        return code if isinstance(code, int) else 2
    return REGISTRY[args.command].runner(args)
