"""FaultPlan: the user-facing fault schedule, armed per session.

A plan is a list of validated :class:`~repro.faults.spec.FaultSpec`s
plus the injector that executes them.  ``session.faults`` hands one
out lazily; standalone simulations (no :class:`Session`) can build one
directly from an environment::

    plan = FaultPlan(env=env)
    plan.node_crash(at=120.0, node="c251-101")
    plan.network_degrade(at=300.0, factor=0.25, duration=60.0)

Every builder validates eagerly and arms the spec immediately, so an
impossible schedule fails at plan-construction time, not mid-run.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.sim.engine import Environment, SimulationError


class FaultPlan:
    """A deterministic schedule of faults for one environment."""

    def __init__(self, session=None, env: Optional[Environment] = None):
        if session is None and env is None:
            raise SimulationError("FaultPlan needs a session or an env")
        self.session = session
        self.env = env if env is not None else session.env
        self.specs: List[FaultSpec] = []
        # Installed eagerly: clusters built after this register as
        # targets (the whole point of touching ``session.faults`` before
        # a pilot boots).
        self.injector: FaultInjector = FaultInjector.install(self.env)
        if session is not None:
            self.injector.bind_registry(session.registry)

    # ----------------------------------------------------------- scheduling
    def add(self, *specs: FaultSpec) -> "FaultPlan":
        """Validate and arm specs; chainable."""
        for spec in specs:
            spec.validate()
            self.specs.append(spec)
            self.injector.schedule(spec)
        return self

    # ------------------------------------------------- convenience builders
    def node_crash(self, at: float, node: str,
                   duration: Optional[float] = None) -> "FaultPlan":
        """Crash a compute node (recovering after ``duration`` if set)."""
        return self.add(FaultSpec(kind="node_crash", at=at, target=node,
                                  duration=duration))

    def datanode_loss(self, at: float, node: str) -> "FaultPlan":
        """Kill the HDFS DataNode on ``node`` (permanently)."""
        return self.add(FaultSpec(kind="datanode_loss", at=at, target=node))

    def nodemanager_loss(self, at: float, node: str) -> "FaultPlan":
        """Kill the YARN NodeManager on ``node`` (permanently)."""
        return self.add(FaultSpec(kind="nodemanager_loss", at=at,
                                  target=node))

    def network_degrade(self, at: float, factor: float,
                        duration: Optional[float] = None,
                        machine: str = "") -> "FaultPlan":
        """Scale interconnect bandwidth to ``factor`` of nominal."""
        return self.add(FaultSpec(kind="network_degrade", at=at,
                                  target=machine, factor=factor,
                                  duration=duration))

    def network_partition(self, at: float, group: str,
                          duration: float) -> "FaultPlan":
        """Cut ``group`` (comma-separated node names) off the fabric."""
        return self.add(FaultSpec(kind="network_partition", at=at,
                                  target=group, duration=duration))

    def straggler(self, at: float, node: str, factor: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Slow ``node``'s CPU down by ``factor`` (> 1)."""
        return self.add(FaultSpec(kind="straggler", at=at, target=node,
                                  factor=factor, duration=duration))

    def container_kill(self, at: float, node: str = "") -> "FaultPlan":
        """Kill one live task container (on ``node``, or anywhere)."""
        return self.add(FaultSpec(kind="container_kill", at=at,
                                  target=node))

    def unit_error(self, target: str, times: int = 1) -> "FaultPlan":
        """Poison unit ``target`` with ``times`` transient exec errors."""
        return self.add(FaultSpec(kind="unit_error", target=target,
                                  times=times))

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FaultPlan {len(self.specs)} specs>"
