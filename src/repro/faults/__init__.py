"""repro.faults: deterministic fault injection and recovery policies.

Faults are described by :class:`FaultSpec`s, collected into a
:class:`FaultPlan` (usually via ``session.faults``), and executed by a
:class:`FaultInjector` installed on the environment as ``env.faults``.
Recovery is the stack's job — HDFS re-replication, YARN container
re-attempts, Unit-Manager restarts under a :class:`RestartPolicy` —
and everything is a deterministic function of the seed and the plan.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.spec import FAULT_KINDS, FaultSpec, RestartPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RestartPolicy",
]
