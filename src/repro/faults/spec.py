"""Describe-objects for fault injection and recovery policies.

Both follow the repo-wide keyword-validated dataclass convention
(:class:`repro.core.description.Description`): plain dataclasses whose
``validate()`` raises :class:`~repro.core.description.DescriptionError`.

A :class:`FaultSpec` is one scheduled infrastructure event.  A chaos
experiment is a list of them armed on a session's
:class:`~repro.faults.plan.FaultPlan` — fully determined by the specs
plus the session seed, so the same plan replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.description import Description, DescriptionError

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "node_crash",          # a compute node dies (optionally transient)
    "datanode_loss",       # an HDFS DataNode process dies
    "nodemanager_loss",    # a YARN NodeManager process dies
    "network_degrade",     # backbone/link bandwidth scaled by `factor`
    "network_partition",   # `target` node group cut off for `duration`
    "straggler",           # node runs `factor`x slower for `duration`
    "container_kill",      # kill one running YARN container
    "unit_error",          # unit `target` fails its next `times` attempts
)

#: Kinds whose ``target`` is a compute-node name.
NODE_TARGETED = ("node_crash", "datanode_loss", "nodemanager_loss",
                 "straggler")


@dataclass
class FaultSpec(Description):
    """One deterministic infrastructure fault.

    ``at`` is the simulation time the fault fires.  ``target`` names
    what it hits: a node for the node-scoped kinds, a comma-separated
    node group for ``network_partition``, a machine name (or ``""`` =
    every machine) for ``network_degrade``, a node (or ``""`` = any)
    for ``container_kill``, and a unit uid for ``unit_error``
    (``unit_error`` arms immediately; ``at`` is ignored).

    ``duration`` turns a fault into an episode with a healing edge:
    transient node outage, bounded slowdown, partition that heals.
    """

    kind: str
    at: float = 0.0
    target: str = ""
    duration: Optional[float] = None   # None = permanent
    factor: float = 1.0                # degrade (<1) / straggler (>1)
    times: int = 1                     # unit_error: attempts poisoned
    name: str = ""                     # optional label for telemetry

    def _check(self) -> None:
        self._require(self.kind in FAULT_KINDS,
                      f"unknown fault kind {self.kind!r}")
        self._require(self.at >= 0, "fault time must be non-negative")
        if self.duration is not None:
            self._require(self.duration > 0,
                          "fault duration must be positive")
        if self.kind in NODE_TARGETED or self.kind == "unit_error":
            self._require(bool(self.target),
                          f"{self.kind} fault needs a target")
        if self.kind == "network_partition":
            self._require(bool(self.target),
                          "network_partition needs a node group target")
            # A permanent partition deadlocks every crossing transfer.
            self._require(self.duration is not None,
                          "network_partition needs a duration")
        if self.kind == "network_degrade":
            self._require(0 < self.factor < 1,
                          "network_degrade factor must be in (0, 1)")
        if self.kind == "straggler":
            self._require(self.factor > 1,
                          "straggler factor must be > 1")
        if self.kind == "unit_error":
            self._require(self.times >= 1,
                          "unit_error needs times >= 1")

    def partition_group(self) -> frozenset:
        """The node-name group of a ``network_partition`` target."""
        return frozenset(
            part.strip() for part in self.target.split(",") if part.strip())

    @property
    def label(self) -> str:
        return self.name or f"{self.kind}@{self.at:g}"


@dataclass
class RestartPolicy(Description):
    """Unit-Manager recovery policy for FAILED Compute-Units.

    A failed unit is re-submitted as a fresh unit (new uid, same
    description) after a capped exponential backoff:
    ``delay(n) = min(backoff * backoff_factor**(n-1), backoff_cap)``
    for restart number ``n``.  ``route_away_from_failed_pilot`` biases
    the re-submission away from every pilot a previous attempt failed
    on, when an alternative pilot is available.
    """

    max_restarts: int = 3
    backoff: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 60.0
    route_away_from_failed_pilot: bool = True

    def _check(self) -> None:
        self._require(self.max_restarts >= 0,
                      "max_restarts must be non-negative")
        self._require(self.backoff >= 0, "backoff must be non-negative")
        self._require(self.backoff_factor >= 1,
                      "backoff_factor must be >= 1")
        self._require(self.backoff_cap >= self.backoff,
                      "backoff_cap must be >= backoff")

    def delay(self, attempt: int) -> float:
        """Backoff before restart number ``attempt`` (1-based)."""
        if attempt < 1:
            raise DescriptionError(
                f"restart attempt must be >= 1, got {attempt}")
        return min(self.backoff * self.backoff_factor ** (attempt - 1),
                   self.backoff_cap)
