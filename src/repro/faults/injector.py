"""The fault-injection engine: arms :class:`FaultSpec`s on an environment.

One :class:`FaultInjector` per :class:`~repro.sim.engine.Environment`,
installed as ``env.faults`` (same opt-in hub pattern as
``env.telemetry``/``env.sanitizer`` — components pay one attribute load
and a branch when no injector is installed).  Machines and HDFS/YARN
clusters register themselves as targets at construction when an
injector is present; sites registered with the session's SAGA registry
are resolved lazily, so a plan can be armed before any pilot exists.

Everything the injector does is a deterministic function of the armed
specs: faults fire at fixed simulation times, target selection iterates
sorted name order, and the only randomness anywhere in a chaos run
comes from the session's seeded RNG streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.spec import FaultSpec
from repro.sim.engine import Environment, SimulationError


class FaultInjector:
    """Executes armed fault specs against registered targets."""

    def __init__(self, env: Environment):
        self.env = env
        self.machines: List[object] = []
        self.hdfs_clusters: List[object] = []
        self.yarn_clusters: List[object] = []
        self._registries: List[object] = []
        #: unit uid -> remaining attempts to poison with a transient
        #: executor error (consumed by the agent pipeline).
        self._unit_errors: Dict[str, int] = {}
        self.fired: List[FaultSpec] = []

    # -- installation -------------------------------------------------------
    @classmethod
    def install(cls, env: Environment) -> "FaultInjector":
        """Attach (or return the existing) injector on ``env``."""
        existing = env.faults
        if existing is not None:
            return existing
        injector = cls(env)
        env.faults = injector
        return injector

    @staticmethod
    def uninstall(env: Environment) -> None:
        env.faults = None

    # -- target registration ------------------------------------------------
    def register_machine(self, machine) -> None:
        if machine not in self.machines:
            self.machines.append(machine)

    def register_hdfs(self, cluster) -> None:
        if cluster not in self.hdfs_clusters:
            self.hdfs_clusters.append(cluster)

    def register_yarn(self, cluster) -> None:
        if cluster not in self.yarn_clusters:
            self.yarn_clusters.append(cluster)

    def bind_registry(self, registry) -> None:
        """Resolve node targets through a SAGA site registry too."""
        if registry not in self._registries:
            self._registries.append(registry)

    def _all_machines(self) -> List[object]:
        machines = list(self.machines)
        for registry in self._registries:
            for hostname in sorted(registry._sites):
                machine = registry._sites[hostname].machine
                if machine not in machines:
                    machines.append(machine)
        return machines

    def _resolve_node(self, name: str):
        for machine in self._all_machines():
            for node in machine.nodes:
                if node.name == name:
                    return node
        raise SimulationError(
            f"fault target node {name!r} not found on any registered "
            f"machine")

    # -- scheduling ---------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: fired faults + poison ledger.

        Scheduled-but-unfired specs live as pending timer processes on
        the event queue (covered by the engine fingerprint); what needs
        capturing here is the injector's own mutable state.
        """
        from dataclasses import asdict
        return {"fired": [asdict(spec) for spec in self.fired],
                "unit_errors": dict(sorted(self._unit_errors.items())),
                "targets": {"machines": len(self._all_machines()),
                            "hdfs": len(self.hdfs_clusters),
                            "yarn": len(self.yarn_clusters)}}

    def schedule(self, spec: FaultSpec) -> None:
        """Arm one validated spec.

        ``unit_error`` specs poison the uid ledger immediately; every
        other kind fires at ``spec.at`` (with a healing edge after
        ``spec.duration`` when set).
        """
        if spec.kind == "unit_error":
            self._unit_errors[spec.target] = (
                self._unit_errors.get(spec.target, 0) + spec.times)
            tel = self.env.telemetry
            if tel is not None:
                tel.emit("fault", "armed", kind=spec.kind,
                         target=spec.target, times=spec.times)
            return
        self.env.process(self._fire_later(spec),
                         name=f"fault-{spec.label}")

    def _fire_later(self, spec: FaultSpec):
        delay = spec.at - self.env.now
        yield self.env.timeout(delay if delay > 0 else 0.0)
        self.fire(spec)
        if spec.duration is not None:
            yield self.env.timeout(spec.duration)
            self.heal(spec)

    # -- fault edges --------------------------------------------------------
    def fire(self, spec: FaultSpec) -> None:
        """Apply a fault's failure edge right now."""
        kind = spec.kind
        if kind == "node_crash":
            self._resolve_node(spec.target).fail()
        elif kind == "datanode_loss":
            self._datanode(spec.target).fail()
        elif kind == "nodemanager_loss":
            self._node_manager(spec.target).fail()
        elif kind == "straggler":
            self._resolve_node(spec.target).slow_down(spec.factor)
        elif kind == "network_degrade":
            for network in self._networks(spec.target):
                network.degrade(spec.factor)
        elif kind == "network_partition":
            for network in self._networks(""):
                network.partition(spec.partition_group())
        elif kind == "container_kill":
            self._kill_one_container(spec.target)
        else:  # pragma: no cover - validate() rejects unknown kinds
            raise SimulationError(f"unhandled fault kind {kind!r}")
        self.fired.append(spec)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("fault", kind, target=spec.target, label=spec.label,
                     duration=spec.duration, factor=spec.factor)
            tel.counter("faults.injected", kind=kind).inc()

    def heal(self, spec: FaultSpec) -> None:
        """Apply a duration-bearing fault's healing edge."""
        kind = spec.kind
        if kind == "node_crash":
            self._resolve_node(spec.target).recover()
        elif kind == "straggler":
            self._resolve_node(spec.target).restore_speed()
        elif kind == "network_degrade":
            for network in self._networks(spec.target):
                network.restore()
        elif kind == "network_partition":
            for network in self._networks(""):
                network.heal()
        # datanode/nodemanager loss and container kills have no
        # injector-side healing: recovery is the stack's job
        # (re-replication, re-attempts, restarts).
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("fault", "healed", kind=kind, target=spec.target,
                     label=spec.label)
            tel.counter("faults.healed", kind=kind).inc()

    # -- unit-error ledger --------------------------------------------------
    def take_unit_error(self, uid: str) -> Optional[str]:
        """Consume one poisoned attempt for ``uid`` (None = clean)."""
        remaining = self._unit_errors.get(uid)
        if not remaining:
            return None
        remaining -= 1
        if remaining:
            self._unit_errors[uid] = remaining
        else:
            del self._unit_errors[uid]
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("fault", "unit_error", target=uid,
                     remaining=remaining)
            tel.counter("faults.injected", kind="unit_error").inc()
        return f"injected transient executor error on {uid}"

    def transfer_unit_error(self, old_uid: str, new_uid: str) -> None:
        """Re-key remaining poison when a unit restarts under a new uid."""
        remaining = self._unit_errors.pop(old_uid, 0)
        if remaining:
            self._unit_errors[new_uid] = (
                self._unit_errors.get(new_uid, 0) + remaining)

    # -- target resolution --------------------------------------------------
    def _datanode(self, node_name: str):
        for cluster in self.hdfs_clusters:
            for dn in cluster.datanodes:
                if dn.name == node_name:
                    return dn
        raise SimulationError(
            f"fault target DataNode {node_name!r} not found on any "
            f"registered HDFS cluster")

    def _node_manager(self, node_name: str):
        for cluster in self.yarn_clusters:
            for nm in cluster.node_managers:
                if nm.name == node_name:
                    return nm
        raise SimulationError(
            f"fault target NodeManager {node_name!r} not found on any "
            f"registered YARN cluster")

    def _networks(self, machine_name: str) -> List[object]:
        networks = [machine.network for machine in self._all_machines()
                    if not machine_name or machine.name == machine_name]
        if not networks:
            raise SimulationError(
                f"no registered machine matches {machine_name!r} for a "
                f"network fault")
        return networks

    def _kill_one_container(self, node_name: str) -> None:
        """Kill the first live non-AM container, sorted-name order."""
        from repro.yarn.records import ContainerState
        for cluster in self.yarn_clusters:
            am_ids = {
                app.am_container.container_id
                for app in cluster.resource_manager.apps.values()
                if app.am_container is not None}
            managers = sorted(cluster.node_managers, key=lambda nm: nm.name)
            for nm in managers:
                if node_name and nm.name != node_name:
                    continue
                for cid in sorted(nm.containers):
                    container = nm.containers[cid]
                    if container.state.is_final or cid in am_ids:
                        continue
                    nm.kill_container(cid, ContainerState.KILLED,
                                      "fault injection: container_kill")
                    return
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("fault", "container_kill_noop", target=node_name)
