"""RADICAL-Pilot: the Pilot-Abstraction with Hadoop/Spark extensions.

This is the paper's primary contribution, reproduced in full:

* **Client side** — :class:`PilotManager` (launches pilots through SAGA
  onto batch systems) and :class:`UnitManager` (schedules Compute-Units
  onto pilots), coordinating with agents through a shared MongoDB-like
  document store (:mod:`repro.core.db`).
* **Agent side** (:mod:`repro.core.agent`) — the RADICAL-Pilot-Agent
  with its pluggable components: Local Resource Managers (fork/SLURM/
  Torque/SGE plus the paper's **YARN Mode I/II** and **Spark**
  extensions), schedulers (continuous cores vs. cores+memory fed by the
  YARN RM metrics API), Task Spawner, Launch Methods (fork, mpiexec,
  aprun, ``yarn`` CLI, ``spark-submit``) and the RADICAL-Pilot YARN
  Application Master (one YARN app per Compute-Unit, optional AM
  re-use).

Usage mirrors RADICAL-Pilot::

    session = Session(env, registry)
    pmgr = PilotManager(session)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=30,
        agent_config=AgentConfig(lrm="yarn")))     # Mode I
    umgr = UnitManager(session)
    umgr.add_pilots(pilot)
    units = umgr.submit_units([ComputeUnitDescription(
        executable="kmeans_map.py", cores=1, cpu_seconds=30.0)])
    yield umgr.wait_units(units)
"""

from repro.core.data import (
    ComputeDataService,
    DataUnit,
    DataUnitDescription,
    PilotData,
    PilotDataDescription,
)
from repro.core.db import Database
from repro.core.description import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
)
from repro.core.pilot import ComputePilot
from repro.core.pilot_manager import PilotManager
from repro.core.session import Session
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit
from repro.core.unit_manager import UnitManager

__all__ = [
    "AgentConfig",
    "ComputeDataService",
    "ComputePilot",
    "ComputePilotDescription",
    "ComputeUnit",
    "ComputeUnitDescription",
    "Database",
    "DataUnit",
    "DataUnitDescription",
    "PilotData",
    "PilotDataDescription",
    "PilotManager",
    "PilotState",
    "Session",
    "UnitManager",
    "UnitState",
]
