"""RADICAL-Pilot: the Pilot-Abstraction with Hadoop/Spark extensions.

This is the paper's primary contribution, reproduced in full:

* **Client side** — :class:`PilotManager` (launches pilots through SAGA
  onto batch systems) and :class:`UnitManager` (schedules Compute-Units
  onto pilots), coordinating with agents through a shared MongoDB-like
  document store (:mod:`repro.core.db`).
* **Agent side** (:mod:`repro.core.agent`) — the RADICAL-Pilot-Agent
  with its pluggable components: Local Resource Managers (fork/SLURM/
  Torque/SGE plus the paper's **YARN Mode I/II** and **Spark**
  extensions), schedulers (continuous cores vs. cores+memory fed by the
  YARN RM metrics API), Task Spawner, Launch Methods (fork, mpiexec,
  aprun, ``yarn`` CLI, ``spark-submit``) and the RADICAL-Pilot YARN
  Application Master (one YARN app per Compute-Unit, optional AM
  re-use).

.. deprecated::
    Importing the public classes from ``repro.core`` is deprecated;
    use :mod:`repro.api`, the unified facade::

        from repro.api import Session, ComputeUnitDescription

    The package-level names below stay importable behind
    :class:`DeprecationWarning` aliases (submodule paths such as
    ``repro.core.session`` are unaffected).
"""

from __future__ import annotations

import importlib
import warnings

#: name -> home module, for the deprecated package-level aliases.
_ALIASES = {
    "AgentConfig": "repro.core.description",
    "ComputeDataService": "repro.core.data",
    "ComputePilot": "repro.core.pilot",
    "ComputePilotDescription": "repro.core.description",
    "ComputeUnit": "repro.core.unit",
    "ComputeUnitDescription": "repro.core.description",
    "Database": "repro.core.db",
    "DataUnit": "repro.core.data",
    "DataUnitDescription": "repro.core.data",
    "PilotData": "repro.core.data",
    "PilotDataDescription": "repro.core.data",
    "PilotManager": "repro.core.pilot_manager",
    "PilotState": "repro.core.states",
    "Session": "repro.core.session",
    "UnitManager": "repro.core.unit_manager",
    "UnitState": "repro.core.states",
}

__all__ = sorted(_ALIASES)


def __getattr__(name: str):
    home = _ALIASES.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name} from repro.core is deprecated; "
        f"use 'from repro.api import {name}'",
        DeprecationWarning, stacklevel=2)
    return getattr(importlib.import_module(home), name)


def __dir__():
    return sorted(set(globals()) | set(_ALIASES))
