"""Pilot and Compute-Unit state models (after RADICAL-Pilot's)."""

from __future__ import annotations

import enum


class PilotState(enum.Enum):
    """Lifecycle of a ComputePilot.

    ``NEW -> PENDING_LAUNCH -> LAUNCHING -> PENDING_ACTIVE -> ACTIVE``
    then one of ``DONE`` (walltime/agent exit), ``CANCELED``, ``FAILED``.
    """

    NEW = "New"
    PENDING_LAUNCH = "PendingLaunch"
    LAUNCHING = "Launching"
    PENDING_ACTIVE = "PendingActive"
    ACTIVE = "Active"
    DONE = "Done"
    CANCELED = "Canceled"
    FAILED = "Failed"

    @property
    def is_final(self) -> bool:
        return self in (PilotState.DONE, PilotState.CANCELED,
                        PilotState.FAILED)


PILOT_TRANSITIONS = {
    PilotState.NEW: {PilotState.PENDING_LAUNCH, PilotState.CANCELED},
    PilotState.PENDING_LAUNCH: {PilotState.LAUNCHING, PilotState.CANCELED,
                                PilotState.FAILED},
    PilotState.LAUNCHING: {PilotState.PENDING_ACTIVE, PilotState.CANCELED,
                           PilotState.FAILED},
    PilotState.PENDING_ACTIVE: {PilotState.ACTIVE, PilotState.CANCELED,
                                PilotState.FAILED},
    PilotState.ACTIVE: {PilotState.DONE, PilotState.CANCELED,
                        PilotState.FAILED},
}


class UnitState(enum.Enum):
    """Lifecycle of a Compute-Unit.

    ``NEW -> UMGR_SCHEDULING -> AGENT_STAGING_INPUT ->
    AGENT_SCHEDULING -> EXECUTING -> AGENT_STAGING_OUTPUT -> DONE``
    with ``FAILED``/``CANCELED`` reachable from any non-final state.
    """

    NEW = "New"
    UMGR_SCHEDULING = "UmgrScheduling"
    AGENT_STAGING_INPUT = "AgentStagingInput"
    AGENT_SCHEDULING = "AgentScheduling"
    EXECUTING = "Executing"
    AGENT_STAGING_OUTPUT = "AgentStagingOutput"
    DONE = "Done"
    CANCELED = "Canceled"
    FAILED = "Failed"

    @property
    def is_final(self) -> bool:
        return self in (UnitState.DONE, UnitState.CANCELED, UnitState.FAILED)


_UNIT_ORDER = [
    UnitState.NEW, UnitState.UMGR_SCHEDULING, UnitState.AGENT_STAGING_INPUT,
    UnitState.AGENT_SCHEDULING, UnitState.EXECUTING,
    UnitState.AGENT_STAGING_OUTPUT, UnitState.DONE,
]

UNIT_TRANSITIONS = {
    state: {_UNIT_ORDER[i + 1], UnitState.FAILED, UnitState.CANCELED}
    for i, state in enumerate(_UNIT_ORDER[:-1])
}


def check_transition(table, current, new) -> None:
    """Raise ``ValueError`` unless ``current -> new`` is in ``table``."""
    allowed = table.get(current, set())
    if new not in allowed:
        raise ValueError(
            f"illegal transition {current.value} -> {new.value}")
