"""Pilot and Compute-Unit state models (after RADICAL-Pilot's)."""

from __future__ import annotations

import enum


class PilotState(enum.Enum):
    """Lifecycle of a ComputePilot.

    ``NEW -> PENDING_LAUNCH -> LAUNCHING -> PENDING_ACTIVE -> ACTIVE``
    then one of ``DONE`` (walltime/agent exit), ``CANCELED``, ``FAILED``.
    """

    NEW = "New"
    PENDING_LAUNCH = "PendingLaunch"
    LAUNCHING = "Launching"
    PENDING_ACTIVE = "PendingActive"
    ACTIVE = "Active"
    DONE = "Done"
    CANCELED = "Canceled"
    FAILED = "Failed"

    @property
    def is_final(self) -> bool:
        return self in (PilotState.DONE, PilotState.CANCELED,
                        PilotState.FAILED)


PILOT_TRANSITIONS = {
    PilotState.NEW: {PilotState.PENDING_LAUNCH, PilotState.CANCELED},
    PilotState.PENDING_LAUNCH: {PilotState.LAUNCHING, PilotState.CANCELED,
                                PilotState.FAILED},
    PilotState.LAUNCHING: {PilotState.PENDING_ACTIVE, PilotState.CANCELED,
                           PilotState.FAILED},
    PilotState.PENDING_ACTIVE: {PilotState.ACTIVE, PilotState.CANCELED,
                                PilotState.FAILED},
    PilotState.ACTIVE: {PilotState.DONE, PilotState.CANCELED,
                        PilotState.FAILED},
}


class UnitState(enum.Enum):
    """Lifecycle of a Compute-Unit.

    ``NEW -> UMGR_SCHEDULING -> AGENT_STAGING_INPUT ->
    AGENT_SCHEDULING -> EXECUTING -> AGENT_STAGING_OUTPUT -> DONE``
    with ``FAILED``/``CANCELED`` reachable from any non-final state.
    """

    NEW = "New"
    UMGR_SCHEDULING = "UmgrScheduling"
    AGENT_STAGING_INPUT = "AgentStagingInput"
    AGENT_SCHEDULING = "AgentScheduling"
    EXECUTING = "Executing"
    AGENT_STAGING_OUTPUT = "AgentStagingOutput"
    DONE = "Done"
    CANCELED = "Canceled"
    FAILED = "Failed"

    @property
    def is_final(self) -> bool:
        return self in (UnitState.DONE, UnitState.CANCELED, UnitState.FAILED)


_UNIT_ORDER = [
    UnitState.NEW, UnitState.UMGR_SCHEDULING, UnitState.AGENT_STAGING_INPUT,
    UnitState.AGENT_SCHEDULING, UnitState.EXECUTING,
    UnitState.AGENT_STAGING_OUTPUT, UnitState.DONE,
]

UNIT_TRANSITIONS = {
    state: {_UNIT_ORDER[i + 1], UnitState.FAILED, UnitState.CANCELED}
    for i, state in enumerate(_UNIT_ORDER[:-1])
}


class ServiceState:
    """Coarse Pilot-API state strings (the BigJob vocabulary).

    The first-generation Pilot-API exposed six string states; both the
    :mod:`repro.pilot_api` facade and the :mod:`repro.service` query
    surface report them.  This is the single source of truth — the
    facade's old ``State`` class is a deprecation-gated alias.
    """

    UNKNOWN = "Unknown"
    NEW = "New"
    RUNNING = "Running"
    DONE = "Done"
    CANCELED = "Canceled"
    FAILED = "Failed"

    FINAL = (DONE, CANCELED, FAILED)

    @classmethod
    def is_final(cls, state: str) -> bool:
        return state in cls.FINAL


#: Fine-grained pilot state -> coarse Pilot-API string.
COARSE_PILOT_STATES = {
    PilotState.NEW: ServiceState.NEW,
    PilotState.PENDING_LAUNCH: ServiceState.NEW,
    PilotState.LAUNCHING: ServiceState.NEW,
    PilotState.PENDING_ACTIVE: ServiceState.NEW,
    PilotState.ACTIVE: ServiceState.RUNNING,
    PilotState.DONE: ServiceState.DONE,
    PilotState.CANCELED: ServiceState.CANCELED,
    PilotState.FAILED: ServiceState.FAILED,
}

#: Fine-grained unit state -> coarse Pilot-API string.
COARSE_UNIT_STATES = {
    UnitState.NEW: ServiceState.NEW,
    UnitState.UMGR_SCHEDULING: ServiceState.NEW,
    UnitState.AGENT_STAGING_INPUT: ServiceState.NEW,
    UnitState.AGENT_SCHEDULING: ServiceState.NEW,
    UnitState.EXECUTING: ServiceState.RUNNING,
    UnitState.AGENT_STAGING_OUTPUT: ServiceState.RUNNING,
    UnitState.DONE: ServiceState.DONE,
    UnitState.CANCELED: ServiceState.CANCELED,
    UnitState.FAILED: ServiceState.FAILED,
}


def check_transition(table, current, new) -> None:
    """Raise ``ValueError`` unless ``current -> new`` is in ``table``."""
    allowed = table.get(current, set())
    if new not in allowed:
        raise ValueError(
            f"illegal transition {current.value} -> {new.value}")
