"""Streaming between HPC and Hadoop stages (paper §V discussion).

"Utilizing hybrid environments is associated with some overhead, most
importantly data needs to be moved, which involves persisting files
and re-reading them into Spark or another Hadoop execution framework.
In the future it can be expected that data can be directly streamed
between these two environments; currently such capabilities typically
do not exist."

This module builds that future capability and the baseline it
replaces, so the overhead the paper describes can be measured:

* :class:`StreamChannel` — a bounded in-memory pipe between a producer
  stage (e.g. an HPC simulation Compute-Unit) and a consumer stage
  (e.g. a Spark analysis job).  Transfers pay interconnect time per
  chunk and block on back-pressure, and consumers start as soon as the
  first chunk lands.
* :func:`persist_handoff` — the status-quo: the producer writes
  everything to the shared filesystem, the consumer re-reads it; the
  consumer cannot start before the producer finished.

Both move *real* Python records, so downstream results are checkable.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Store

#: Sentinel closing a stream.
_EOS = object()


class StreamChannel:
    """A bounded, timed producer->consumer pipe.

    ``put(records, nbytes)`` charges the fabric (or a fixed bandwidth)
    for the chunk and blocks when ``capacity_chunks`` are unconsumed
    (back-pressure); ``get()`` returns chunks in order and ``None`` at
    end-of-stream after ``close()``.
    """

    def __init__(self, env: Environment, bandwidth: float = 1e9,
                 capacity_chunks: int = 8,
                 network=None, src: str = "", dst: str = ""):
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if capacity_chunks < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.bandwidth = bandwidth
        self.network = network
        self.src, self.dst = src, dst
        self._store = Store(env, capacity=capacity_chunks)
        self._closed = False
        self.chunks_streamed = 0
        self.bytes_streamed = 0.0

    def put(self, records: Any, nbytes: float):
        """Send one chunk.  Generator (blocks on back-pressure)."""
        if self._closed:
            raise SimulationError("stream already closed")
        if nbytes > 0:
            if self.network is not None and self.src != self.dst:
                yield self.network.send(self.src, self.dst, nbytes)
            else:
                yield self.env.timeout(nbytes / self.bandwidth)
        yield self._store.put(records)
        self.chunks_streamed += 1
        self.bytes_streamed += nbytes

    def close(self):
        """Signal end-of-stream.  Generator."""
        self._closed = True
        yield self._store.put(_EOS)

    def get(self):
        """Receive the next chunk (None = end).  Generator."""
        item = yield self._store.get()
        if item is _EOS:
            return None
        return item


def stream_pipeline(env: Environment, channel: StreamChannel,
                    produce_chunks, consume_chunk: Callable[[Any], Any]):
    """Drive a producer generator and a streaming consumer concurrently.

    ``produce_chunks`` is an iterable of ``(records, nbytes)``; each is
    pushed through the channel (paying stream time) while the consumer
    applies ``consume_chunk`` to chunks as they arrive.  Generator
    returning the list of per-chunk consumer results.
    """

    def producer():
        for records, nbytes in produce_chunks:
            yield from channel.put(records, nbytes)
        yield from channel.close()

    results: List[Any] = []

    def consumer():
        while True:
            chunk = yield from channel.get()
            if chunk is None:
                return
            results.append(consume_chunk(chunk))

    p = env.process(producer())
    c = env.process(consumer())
    yield env.all_of([p, c])
    return results


def persist_handoff(env: Environment, shared_fs, produce_chunks,
                    consume_chunk: Callable[[Any], Any]):
    """The status-quo baseline: persist everything, then re-read.

    The producer writes every chunk to the shared filesystem; only
    after the last write does the consumer re-read the whole dataset
    and process it.  Generator returning per-chunk results.
    """
    persisted: List[Any] = []
    total_bytes = 0.0
    for records, nbytes in produce_chunks:
        if nbytes > 0:
            yield shared_fs.write(nbytes)
        persisted.append(records)
        total_bytes += nbytes
    # consumer re-reads the full dataset before any processing
    if total_bytes > 0:
        yield shared_fs.read(total_bytes)
    shared_fs.delete(total_bytes)
    return [consume_chunk(chunk) for chunk in persisted]
