"""Session: shared context for managers, DB and the site registry."""

from __future__ import annotations

from typing import Optional

from repro.analysis.sanitizer import SimSanitizer, sanitize_enabled
from repro.core.db import Database
from repro.saga.registry import Registry, default_registry
from repro.sim.engine import Environment
from repro.sim.rng import SeedSequenceRegistry


class Session:
    """One RADICAL-Pilot session.

    Owns the simulation environment, the shared MongoDB stand-in, the
    SAGA site registry and the seeded RNG registry — everything the
    Pilot-Manager, Unit-Manager and agents need to find each other.

    ``sanitize`` arms the :class:`~repro.analysis.sanitizer.SimSanitizer`
    runtime invariant checkers on the session's environment; the
    default (``None``) inherits the ``REPRO_SANITIZE`` environment
    variable, and ``False`` forces them off.
    """

    def __init__(self, env: Environment,
                 registry: Optional[Registry] = None,
                 db: Optional[Database] = None,
                 seed: int = 42,
                 sanitize: Optional[bool] = None):
        self.env = env
        # Derived from the seed, not a process-global counter: the uid
        # is cosmetic (repr/log labels; entity uids come from next_uid
        # below) and a counter would make it depend on how many
        # sessions ran earlier in the process.
        self.uid = f"session.{seed:04d}"
        self.registry = registry or default_registry()
        self.db = db or Database(env)
        self.rng = SeedSequenceRegistry(seed)
        self.closed = False
        # Plain ints (not itertools.count): a checkpoint snapshots the
        # counters directly instead of poking at iterator internals.
        self._uid_counters: dict[str, int] = {}
        #: How this session can be rebuilt in a fresh process — set by
        #: :func:`repro.persist.launch`; ``None`` means the session is
        #: not checkpointable (no registered scenario to replay).
        self.provenance = None
        #: Persistence participants in construction order: managers and
        #: overlays register here so the checkpoint fingerprint walker
        #: reaches scheduler / unit / raptor state without a singleton.
        self.components: list = []
        #: Named handles a scenario exposes for post-restore driving
        #: (e.g. the submitted units to wait on).  Rebuilt by replay,
        #: never serialized.
        self.handles: dict = {}
        if sanitize or (sanitize is None and sanitize_enabled()):
            SimSanitizer.install(env)
        elif sanitize is False and env.sanitizer is not None:
            # Explicit opt-out beats the REPRO_SANITIZE default, but a
            # sanitizer somebody installed by hand is left alone when
            # ``sanitize`` is None.
            SimSanitizer.uninstall(env)
        self.sanitizer = env.sanitizer
        self._pilot_manager = None
        self._unit_manager = None
        self._faults = None

    # ----------------------------------------------------------- the facade
    def pilot_manager(self, **kwargs):
        """The session's PilotManager (created on first use).

        With keyword arguments a *fresh* manager is returned; the no-arg
        call returns the session-scoped singleton.
        """
        from repro.core.pilot_manager import PilotManager
        if kwargs:
            return PilotManager(self, **kwargs)
        if self._pilot_manager is None:
            self._pilot_manager = PilotManager(self)
        return self._pilot_manager

    def unit_manager(self, scheduler=None, restart_policy=None):
        """The session's UnitManager (created on first use).

        With arguments a *fresh* manager is returned; the no-arg call
        returns the session-scoped singleton.
        """
        from repro.core.unit_manager import UnitManager
        if scheduler is not None or restart_policy is not None:
            return UnitManager(self, scheduler=scheduler,
                               restart_policy=restart_policy)
        if self._unit_manager is None:
            self._unit_manager = UnitManager(self)
        return self._unit_manager

    @property
    def faults(self):
        """The session's :class:`~repro.faults.plan.FaultPlan`.

        First access installs the fault injector on the environment and
        binds it to the session's site registry.
        """
        if self._faults is None:
            from repro.faults.plan import FaultPlan
            self._faults = FaultPlan(session=self)
        return self._faults

    def raptor(self, pilot, workers: int = 4, cores_per_worker: int = 1,
               master_cores: int = 1, restart_policy=None, config=None,
               start: bool = True):
        """Build a :class:`~repro.raptor.overlay.RaptorOverlay` on
        ``pilot``: one long-lived master CU plus ``workers`` worker CUs,
        then stream function tasks to the warm workers — paying the
        2-step allocation cost once instead of per task.

        ``restart_policy`` (a :class:`~repro.faults.spec.RestartPolicy`)
        governs worker CU resubmission after node crashes; ``config`` is
        a :class:`~repro.raptor.task.RaptorConfig`.  ``start=False``
        returns the handle without submitting the CUs.
        """
        from repro.raptor.overlay import RaptorOverlay
        overlay = RaptorOverlay(
            self, pilot, workers=workers,
            cores_per_worker=cores_per_worker, master_cores=master_cores,
            restart_policy=restart_policy, config=config)
        self.register_component(overlay)
        if start:
            overlay.start()
        return overlay

    # ------------------------------------------------------- persistence
    def register_component(self, component) -> None:
        """Track ``component`` for the checkpoint fingerprint walk.

        Managers and overlays call this at construction; anything with
        a ``snapshot_state()`` method contributes to the state digest
        :mod:`repro.persist` verifies after a restore.
        """
        if component not in self.components:
            self.components.append(component)

    def snapshot_state(self) -> dict:
        """Canonical summary of the session's own serializable state."""
        return {"uid": self.uid,
                "root_seed": self.rng.root_seed,
                "closed": self.closed,
                "uid_counters": dict(self._uid_counters)}

    def checkpoint(self, path, ref: str = "latest"):
        """Checkpoint this session into the snapshot store at ``path``.

        Requires :attr:`provenance` (sessions built via
        :func:`repro.persist.launch`): the snapshot records the scenario
        recipe plus the replay barrier and state digest; see
        :mod:`repro.persist`.  Returns the stored
        :class:`~repro.persist.checkpoint.CheckpointInfo`.
        """
        from repro.persist import checkpoint_session
        return checkpoint_session(self, path, ref=ref)

    @property
    def telemetry(self):
        """The environment's telemetry hub (installed on first access)."""
        import repro.telemetry
        return repro.telemetry.install(self.env)

    def next_uid(self, prefix: str, width: int = 4) -> str:
        """Session-scoped entity uids (``pilot.0001``, ``unit.000001``...).

        Scoped to the session — not a class or module counter — so a
        fresh session always numbers from 1 no matter what ran earlier
        in the process.  Entity uids seed named RNG streams (e.g. the
        agent bootstrap jitter), so session-scoped numbering is what
        makes independent experiment cells bitwise-reproducible whether
        they run sequentially, in any order, or on a process pool.
        """
        value = self._uid_counters.get(prefix, 0) + 1
        self._uid_counters[prefix] = value
        return f"{prefix}.{value:0{width}d}"

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Session {self.uid}>"
