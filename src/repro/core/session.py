"""Session: shared context for managers, DB and the site registry."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.core.db import Database
from repro.saga.registry import Registry, default_registry
from repro.sim.engine import Environment
from repro.sim.rng import SeedSequenceRegistry


class Session:
    """One RADICAL-Pilot session.

    Owns the simulation environment, the shared MongoDB stand-in, the
    SAGA site registry and the seeded RNG registry — everything the
    Pilot-Manager, Unit-Manager and agents need to find each other.
    """

    _seq = itertools.count(1)

    def __init__(self, env: Environment,
                 registry: Optional[Registry] = None,
                 db: Optional[Database] = None,
                 seed: int = 42):
        self.env = env
        self.uid = f"session.{next(Session._seq):04d}"
        self.registry = registry or default_registry()
        self.db = db or Database(env)
        self.rng = SeedSequenceRegistry(seed)
        self.closed = False

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Session {self.uid}>"
