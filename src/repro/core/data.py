"""Pilot-Data: the data side of the Pilot-Abstraction.

The paper (§II) builds on Pilot-Data [Luckow et al., JPDC 2014] as the
companion of Pilot-Compute: *Pilot-Data* is a placeholder allocation
of storage on a resource, and a *Data-Unit* is a self-contained,
location-independent dataset that lives in one or more Pilot-Data
allocations.  The Compute-Data-Service matches Compute-Units to
Data-Units: units are scheduled where their inputs already are
(affinity), and data is replicated across sites when they are not.

This module implements that trio against the simulated testbed:

* :class:`PilotDataDescription` / :class:`PilotData` — a capacity
  reservation on a site's shared filesystem, with a private namespace;
* :class:`DataUnitDescription` / :class:`DataUnit` — a named dataset
  with replicas across Pilot-Data allocations and timed transfers;
* :class:`ComputeDataService` — affinity-aware co-scheduling of
  Compute-Units and their input Data-Units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.description import ComputeUnitDescription, Description
from repro.core.pilot import ComputePilot
from repro.core.session import Session
from repro.core.unit import ComputeUnit
from repro.core.unit_manager import UnitManager
from repro.saga.filesystem import copy_file
from repro.saga.url import Url
from repro.sim.engine import Event, SimulationError


# ------------------------------------------------------------- descriptions
@dataclass
class PilotDataDescription(Description):
    """A storage reservation request (mirrors BigJob's pilot data API)."""

    resource: str                 # SAGA URL of the site, e.g. "slurm://stampede"
    size_bytes: float = 100 * 1024 ** 3

    def _check(self) -> None:
        self._require(self.size_bytes > 0,
                      "pilot-data size must be positive")


@dataclass
class DataUnitDescription(Description):
    """A dataset: named files with sizes (no real payloads needed)."""

    name: str
    files: Tuple[Tuple[str, float], ...] = ()   # (filename, nbytes)

    @property
    def nbytes(self) -> float:
        return sum(size for _, size in self.files)

    def _check(self) -> None:
        self._require(bool(self.name), "data unit needs a name")
        self._require(all(size >= 0 for _, size in self.files),
                      "file sizes must be non-negative")


# ------------------------------------------------------------------ handles
class PilotData:
    """A live storage allocation on one site."""

    def __init__(self, session: Session, uid: str,
                 description: PilotDataDescription):
        self.session = session
        self.uid = uid
        self.description = description
        self.site = session.registry.lookup(
            Url.parse(description.resource).host)
        self.used = 0.0
        if description.size_bytes > self.site.scratch.volume.free:
            raise SimulationError(
                f"site {self.site.hostname} cannot reserve "
                f"{description.size_bytes} bytes")

    @property
    def free(self) -> float:
        return self.description.size_bytes - self.used

    def _charge(self, nbytes: float) -> None:
        if nbytes > self.free:
            raise SimulationError(
                f"pilot-data {self.uid} full: need {nbytes:.0f}, "
                f"free {self.free:.0f}")
        self.used += nbytes

    def _release(self, nbytes: float) -> None:
        self.used = max(0.0, self.used - nbytes)

    def path_for(self, du_uid: str, filename: str) -> str:
        return f"/pilot-data/{self.uid}/{du_uid}/{filename}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PilotData {self.uid} on {self.site.hostname}>"


class DataUnit:
    """A dataset with replicas across Pilot-Data allocations."""

    def __init__(self, env, uid: str, description: DataUnitDescription):
        self.env = env
        self.uid = uid
        self.description = description
        self.replicas: List[PilotData] = []
        self._available = Event(env)

    @property
    def state(self) -> str:
        return "Available" if self.replicas else "New"

    @property
    def nbytes(self) -> float:
        return self.description.nbytes

    def wait_available(self) -> Event:
        return self._available

    def located_on(self, hostname: str) -> Optional[PilotData]:
        for pd in self.replicas:
            if pd.site.hostname == hostname:
                return pd
        return None

    def _add_replica(self, pd: PilotData) -> None:
        self.replicas.append(pd)
        if not self._available.triggered:
            self._available.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataUnit {self.uid} ({self.state})>"


# ------------------------------------------------------------------ service
class ComputeDataService:
    """Co-scheduling of Compute-Units and Data-Units (BigJob's CDS).

    The affinity policy: a unit that names ``input_data`` is submitted
    to the pilot whose site already holds the largest share of those
    bytes; missing Data-Units are replicated there first (timed,
    through the inter-site WAN), so by the time the unit runs all its
    inputs are site-local — the paper's "application-level scheduler
    [that is] aware of the localities of the data sources".
    """

    def __init__(self, session: Session, unit_manager: UnitManager,
                 inter_site_bw: float = 50e6):
        self.session = session
        self.env = session.env
        self.umgr = unit_manager
        self.inter_site_bw = inter_site_bw
        self.pilot_data: Dict[str, PilotData] = {}
        self.data_units: Dict[str, DataUnit] = {}

    # ------------------------------------------------------------- storage
    def create_pilot_data(self, description: PilotDataDescription) -> PilotData:
        description.validate()
        uid = self.session.next_uid("pd")
        pd = PilotData(self.session, uid, description)
        self.pilot_data[uid] = pd
        return pd

    # ---------------------------------------------------------------- data
    def submit_data_unit(self, description: DataUnitDescription,
                         pilot_data: PilotData):
        """Create a Data-Unit in ``pilot_data``.  Generator -> DataUnit.

        Pays the initial upload (client -> site) through the site's
        shared filesystem.
        """
        description.validate()
        uid = self.session.next_uid("du", width=6)
        du = DataUnit(self.env, uid, description)
        self.data_units[uid] = du
        pilot_data._charge(du.nbytes)
        for filename, nbytes in description.files:
            yield pilot_data.site.scratch.create(
                pilot_data.path_for(uid, filename), nbytes)
        du._add_replica(pilot_data)
        return du

    def replicate(self, du: DataUnit, target: PilotData):
        """Copy a Data-Unit to another Pilot-Data.  Generator.

        Same-site replication moves bytes through the site filesystem;
        cross-site replication additionally crosses the WAN at
        ``inter_site_bw``.
        """
        if not du.replicas:
            raise SimulationError(f"{du.uid} has no replica to copy from")
        if du.located_on(target.site.hostname) is target:
            return du
        source = du.replicas[0]
        cross_site = source.site.hostname != target.site.hostname
        target._charge(du.nbytes)
        for filename, _nbytes in du.description.files:
            yield copy_file(
                self.env,
                source.site.scratch, source.path_for(du.uid, filename),
                target.site.scratch, target.path_for(du.uid, filename),
                wire_bw=self.inter_site_bw if cross_site else None)
        du._add_replica(target)
        return du

    def delete_data_unit(self, du: DataUnit) -> None:
        for pd in du.replicas:
            for filename, _ in du.description.files:
                path = pd.path_for(du.uid, filename)
                if pd.site.scratch.exists(path):
                    pd.site.scratch.delete(path)
            pd._release(du.nbytes)
        du.replicas.clear()
        self.data_units.pop(du.uid, None)

    # ------------------------------------------------------------- compute
    def submit_compute_unit(self, description: ComputeUnitDescription,
                            input_data: Sequence[DataUnit] = ()):
        """Submit a unit near its data.  Generator -> ComputeUnit.

        Chooses the pilot whose site holds the most input bytes,
        replicates the rest there, rewrites the unit's
        ``input_staging`` to the site-local replica paths, then submits
        through the Unit-Manager.
        """
        pilots = [p for p in self.umgr.pilots if not p.state.is_final]
        if not pilots:
            raise SimulationError("no usable pilots attached to the UM")
        target_pilot = self._pick_pilot(pilots, input_data)
        target_host = Url.parse(target_pilot.description.resource).host
        target_pd = self._pilot_data_on(target_host)
        if input_data and target_pd is None:
            raise SimulationError(
                f"no pilot-data allocation on {target_host}")

        staging: List[Tuple[str, float]] = []
        for du in input_data:
            local = du.located_on(target_host)
            if local is None:
                yield self.env.process(self.replicate(du, target_pd))
                local = target_pd
            for filename, nbytes in du.description.files:
                staging.append((local.path_for(du.uid, filename), nbytes))

        description.input_staging = tuple(staging)
        # pin the unit to the chosen pilot via a one-shot scheduler
        original = self.umgr.scheduler
        self.umgr.scheduler = _PinnedScheduler(target_pilot)
        try:
            units = self.umgr.submit_units(description)
        finally:
            self.umgr.scheduler = original
        return units[0]

    def _pick_pilot(self, pilots: List[ComputePilot],
                    input_data: Sequence[DataUnit]) -> ComputePilot:
        def local_bytes(pilot: ComputePilot) -> float:
            host = Url.parse(pilot.description.resource).host
            return sum(du.nbytes for du in input_data
                       if du.located_on(host) is not None)

        return max(pilots, key=local_bytes)

    def _pilot_data_on(self, hostname: str) -> Optional[PilotData]:
        for pd in self.pilot_data.values():
            if pd.site.hostname == hostname:
                return pd
        return None


class _PinnedScheduler:
    """One-shot UM scheduler: everything goes to a fixed pilot."""

    def __init__(self, pilot: ComputePilot):
        self.pilot = pilot

    def assign(self, unit: ComputeUnit, pilots) -> ComputePilot:
        return self.pilot
