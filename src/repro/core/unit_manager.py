"""UnitManager: schedules Compute-Units onto pilots."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.agent.agent import advance_doc
from repro.core.description import ComputeUnitDescription
from repro.core.pilot import ComputePilot
from repro.core.session import Session
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit
from repro.sim.engine import Event


class RoundRobinScheduler:
    """Default UM scheduler: deal units over pilots in turn."""

    def __init__(self):
        self._rr = itertools.count()

    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")
        return usable[next(self._rr) % len(usable)]


class BackfillScheduler:
    """Prefer ACTIVE pilots with the most idle capacity (simple greedy)."""

    def __init__(self):
        self._load: Dict[str, int] = {}

    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")
        active = [p for p in usable if p.state is PilotState.ACTIVE]
        pool = active or usable
        chosen = min(pool, key=lambda p: self._load.get(p.uid, 0))
        self._load[chosen.uid] = self._load.get(chosen.uid, 0) \
            + unit.description.cores
        return chosen


class PredictiveScheduler:
    """Completion-time-predicting scheduler (paper §V future work).

    Learns per-pilot unit service times with an exponentially-weighted
    moving average of observed executions, estimates each pilot's
    earliest completion time for the new unit as::

        ETA(pilot) = queued_core_seconds(pilot) / total_cores(pilot)
                     + predicted_duration(pilot, unit)

    and assigns the unit to the pilot with the smallest ETA.  With no
    history it falls back to capacity-proportional load balancing.
    ``observe`` is fed by the Unit-Manager as units finish.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._ewma: Dict[str, float] = {}          # pilot -> seconds/core-task
        self._queued_core_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------ learning
    def observe(self, pilot_uid: str, duration: float, cores: int) -> None:
        """Record one finished unit's execution time."""
        per_core = duration  # duration already reflects the unit's cores
        previous = self._ewma.get(pilot_uid)
        self._ewma[pilot_uid] = per_core if previous is None else (
            self.alpha * per_core + (1 - self.alpha) * previous)
        backlog = self._queued_core_seconds.get(pilot_uid, 0.0)
        self._queued_core_seconds[pilot_uid] = max(
            0.0, backlog - duration * cores)

    def predicted_duration(self, pilot: ComputePilot) -> float:
        return self._ewma.get(pilot.uid, 60.0)

    # ----------------------------------------------------------- assigning
    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")

        def eta(pilot: ComputePilot) -> float:
            cores = pilot.agent_info.get("cores") or (
                pilot.description.nodes * 16)
            backlog = self._queued_core_seconds.get(pilot.uid, 0.0)
            service = self.predicted_duration(pilot)
            return backlog / max(1, cores) + service

        chosen = min(usable, key=eta)
        self._queued_core_seconds[chosen.uid] = (
            self._queued_core_seconds.get(chosen.uid, 0.0)
            + self.predicted_duration(chosen) * unit.description.cores)
        return chosen


class UnitManager:
    """Client-side unit lifecycle (paper Figure 3, steps U.1-U.2).

    Units are written to the shared DB assigned to a pilot; the agent
    picks them up at its next poll.  A watcher replays agent-side state
    changes onto the handles.

    With a :class:`~repro.faults.spec.RestartPolicy` the manager also
    owns client-side recovery: a FAILED unit is resubmitted under a
    fresh uid (same description) after capped exponential backoff, up
    to ``max_restarts`` times, optionally routed away from pilots where
    it already failed.  ``wait_units`` tracks the *logical* unit — the
    chain of restarts sharing one root — so callers block until the
    work item truly finishes, not merely until its first attempt dies.
    """

    def __init__(self, session: Session, scheduler=None,
                 restart_policy=None):
        self.session = session
        self.env = session.env
        self.uid = session.next_uid("umgr")
        self.scheduler = scheduler or RoundRobinScheduler()
        self.restart_policy = restart_policy
        if restart_policy is not None:
            restart_policy.validate()
        self.pilots: List[ComputePilot] = []
        self.units: Dict[str, ComputeUnit] = {}
        self._observed: set = set()
        #: attempt uid -> root uid (the first attempt's uid).
        self._roots: Dict[str, str] = {}
        #: root uid -> event fired when the logical unit is final.
        self._logical: Dict[str, Event] = {}
        self._restarts_used: Dict[str, int] = {}
        self._failed_pilots_of: Dict[str, set] = {}
        self._first_failure_at: Dict[str, float] = {}
        self._watcher = self.env.process(self._watch_loop(),
                                         name=f"{self.uid}-watch")
        session.register_component(self)

    # -------------------------------------------------------------- pilots
    def add_pilots(self, pilots: Union[ComputePilot,
                                       Sequence[ComputePilot]]) -> None:
        if isinstance(pilots, ComputePilot):
            pilots = [pilots]
        self.pilots.extend(pilots)
        for pilot in pilots:
            self.env.process(self._pilot_watch(pilot),
                             name=f"{self.uid}-watch-{pilot.uid}")

    def _pilot_watch(self, pilot: ComputePilot):
        """Fail this manager's in-flight units when a pilot fails.

        The agent marks units it already claimed; this catches units
        stranded in the DB queue (never claimed because the pilot died
        during bootstrap) so the restart machinery can reroute them.
        Only active under a restart policy — without one, stranded
        units keep the legacy semantics (non-final until the client
        cancels or resubmits them).
        """
        yield pilot.wait()
        if pilot.state is not PilotState.FAILED:
            return
        if self.restart_policy is None:
            return
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("umgr", "pilot_failed", umgr=self.uid,
                     pilot=pilot.uid)
            tel.counter("umgr.pilot_failures").inc()
        col = self.session.db.collection("units")
        for uid in sorted(self.units):
            unit = self.units[uid]
            if unit.pilot_uid != pilot.uid:
                continue
            doc = col.find_one({"_id": uid})
            if doc is None or UnitState(doc["state"]).is_final:
                continue
            advance_doc(col, uid, UnitState.FAILED, self.env.now,
                        stderr=f"pilot {pilot.uid} failed", exit_code=1)

    # --------------------------------------------------------------- units
    def submit_units(self, descriptions: Union[
            ComputeUnitDescription,
            Sequence[ComputeUnitDescription]]) -> List[ComputeUnit]:
        """Submit units; each is scheduled to a pilot and queued in the
        shared DB.  Returns the handles."""
        if isinstance(descriptions, ComputeUnitDescription):
            descriptions = [descriptions]
        if not self.pilots:
            raise RuntimeError("add_pilots() before submit_units()")
        handles = []
        for desc in descriptions:
            desc.validate()
            uid = self.session.next_uid("unit", width=6)
            unit = ComputeUnit(self.env, uid, desc)
            pilot = self.scheduler.assign(unit, self.pilots)
            unit.pilot_uid = pilot.uid
            self._roots[uid] = uid
            self._logical[uid] = Event(self.env)
            self._insert_unit(unit, pilot)
            handles.append(unit)
        return handles

    def _insert_unit(self, unit: ComputeUnit, pilot: ComputePilot) -> None:
        """Queue one unit in the shared DB, assigned to ``pilot``."""
        col = self.session.db.collection("units")
        uid = unit.uid
        self.units[uid] = unit
        col.insert({
            "_id": uid,
            "pilot": pilot.uid,
            "state": UnitState.NEW.value,
            "history": [(self.env.now, UnitState.NEW.value)],
            "description": unit.description,
            "result": None,
            "stderr": "",
            "exit_code": None,
        })
        advance_doc(col, uid, UnitState.UMGR_SCHEDULING, self.env.now)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("unit", "submitted", uid=uid, pilot=pilot.uid,
                     umgr=self.uid, cores=unit.description.cores)
            tel.emit("unit", "state", uid=uid, pilot=pilot.uid,
                     state=UnitState.UMGR_SCHEDULING.value)
            tel.counter("umgr.units_submitted").inc()

    def wait_units(self, units: Optional[Iterable[ComputeUnit]] = None) -> Event:
        """Event firing when all given units (default: all) are final.

        Under a restart policy each unit is tracked as its *logical*
        work item: a handle that fails and is restarted keeps the event
        pending until the restarted attempt reaches a final state.
        """
        targets = list(units) if units is not None else \
            list(self.units.values())
        events, seen = [], set()
        for u in targets:
            root = self._roots.get(u.uid, u.uid)
            logical = self._logical.get(root)
            if logical is None:
                events.append(u.wait())
            elif root not in seen:
                seen.add(root)
                events.append(logical)
        return self.env.all_of(events)

    def final_unit(self, unit: ComputeUnit) -> ComputeUnit:
        """The last attempt of ``unit``'s restart chain (may be itself)."""
        root = self._roots.get(unit.uid, unit.uid)
        logical = self._logical.get(root)
        if logical is not None and logical.triggered:
            return logical.value
        return unit

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: unit states + restart bookkeeping.

        Unit handles reduce to ``uid -> state``; together with the
        restart ledger this pins down the in-flight workload a restored
        process must have replayed to the same point.
        """
        return {"kind": "unit_manager", "uid": self.uid,
                "units": {uid: unit.state.value
                          for uid, unit in sorted(self.units.items())},
                "restarts_used": dict(sorted(
                    self._restarts_used.items())),
                "pilots": sorted(p.uid for p in self.pilots)}

    def cancel_units(self, units: Iterable[ComputeUnit]) -> None:
        """Cancel units that have not been claimed by an agent yet.

        Running units are canceled by pilot teardown; RP's semantics for
        mid-flight cancellation are likewise best-effort.
        """
        col = self.session.db.collection("units")
        for unit in units:
            doc = col.find_one({"_id": unit.uid})
            if doc and doc["state"] in (UnitState.NEW.value,
                                        UnitState.UMGR_SCHEDULING.value):
                advance_doc(col, unit.uid, UnitState.CANCELED, self.env.now)

    # ------------------------------------------------------------- watcher
    def _watch_loop(self):
        col = self.session.db.collection("units")
        while True:
            change = col.watch()
            self._sync()
            yield change

    def _sync(self) -> None:
        col = self.session.db.collection("units")
        for uid, unit in self.units.items():
            if uid in self._observed:
                # Already settled and routed: the single-writer protocol
                # never extends a final document's history, so replaying
                # it again is a no-op — skip the lookup entirely.
                continue
            doc = col.find_one({"_id": uid})
            if doc is None:
                continue
            for _, state_value in doc["history"][len(unit.history):]:
                unit.advance(UnitState(state_value))
            if unit.state.is_final and uid not in self._observed:
                self._observed.add(uid)
                unit.result = doc.get("result")
                unit.exit_code = doc.get("exit_code")
                unit.stderr = doc.get("stderr", "")
                self._feed_scheduler(unit)
                self._handle_final(unit)

    # ------------------------------------------------------------- restarts
    def _handle_final(self, unit: ComputeUnit) -> None:
        """Route one finally-stated attempt: restart it or settle the
        logical unit's event."""
        root = self._roots.get(unit.uid, unit.uid)
        if unit.state is UnitState.FAILED and self._maybe_restart(unit, root):
            return
        logical = self._logical.get(root)
        if logical is None or logical.triggered:
            return
        tel = self.env.telemetry
        if tel is not None and self._restarts_used.get(root):
            if unit.state is UnitState.DONE:
                tel.histogram("umgr.unit_recovery_time").observe(
                    self.env.now - self._first_failure_at[root])
                tel.counter("umgr.units_recovered").inc()
            else:
                tel.counter("umgr.units_lost").inc()
        logical.succeed(unit)

    def _maybe_restart(self, unit: ComputeUnit, root: str) -> bool:
        policy = self.restart_policy
        if policy is None:
            return False
        used = self._restarts_used.get(root, 0)
        if used >= policy.max_restarts:
            return False
        if not any(not p.state.is_final for p in self.pilots):
            return False
        self._restarts_used[root] = used + 1
        self._first_failure_at.setdefault(root, self.env.now)
        if unit.pilot_uid is not None:
            self._failed_pilots_of.setdefault(root, set()).add(
                unit.pilot_uid)
        delay = policy.delay(used + 1)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("unit", "restart_scheduled", uid=unit.uid, root=root,
                     attempt=used + 1, delay=delay, stderr=unit.stderr)
            tel.counter("umgr.units_restarted").inc()
        self.env.process(self._restart_later(unit, root, delay),
                         name=f"{self.uid}-restart-{unit.uid}")
        return True

    def _restart_later(self, unit: ComputeUnit, root: str, delay: float):
        yield self.env.timeout(delay if delay > 0 else 0.0)
        usable = [p for p in self.pilots if not p.state.is_final]
        logical = self._logical.get(root)
        if not usable:
            # every pilot died during the backoff: the logical unit
            # settles with the failed attempt.
            if logical is not None and not logical.triggered:
                logical.succeed(unit)
            return
        candidates = usable
        if self.restart_policy.route_away_from_failed_pilot:
            failed = self._failed_pilots_of.get(root, set())
            spared = [p for p in usable if p.uid not in failed]
            if spared:
                candidates = spared
        new_uid = self.session.next_uid("unit", width=6)
        new_unit = ComputeUnit(self.env, new_uid, unit.description)
        pilot = self.scheduler.assign(new_unit, candidates)
        new_unit.pilot_uid = pilot.uid
        self._roots[new_uid] = root
        faults = self.env.faults
        if faults is not None:
            faults.transfer_unit_error(unit.uid, new_uid)
        self._insert_unit(new_unit, pilot)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("unit", "restarted", uid=new_uid,
                     restart_of=unit.uid, root=root, pilot=pilot.uid)

    def _feed_scheduler(self, unit: ComputeUnit) -> None:
        """Report an execution observation to learning schedulers."""
        observe = getattr(self.scheduler, "observe", None)
        if observe is None or unit.pilot_uid is None:
            return
        t_exec = unit.timestamp(UnitState.EXECUTING)
        t_done = unit.timestamp(UnitState.AGENT_STAGING_OUTPUT) \
            or unit.timestamp(UnitState.DONE)
        if t_exec is not None and t_done is not None:
            observe(unit.pilot_uid, t_done - t_exec,
                    unit.description.cores)
