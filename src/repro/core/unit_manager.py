"""UnitManager: schedules Compute-Units onto pilots."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.agent.agent import advance_doc
from repro.core.description import ComputeUnitDescription
from repro.core.pilot import ComputePilot
from repro.core.session import Session
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit
from repro.sim.engine import Event


class RoundRobinScheduler:
    """Default UM scheduler: deal units over pilots in turn."""

    def __init__(self):
        self._rr = itertools.count()

    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")
        return usable[next(self._rr) % len(usable)]


class BackfillScheduler:
    """Prefer ACTIVE pilots with the most idle capacity (simple greedy)."""

    def __init__(self):
        self._load: Dict[str, int] = {}

    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")
        active = [p for p in usable if p.state is PilotState.ACTIVE]
        pool = active or usable
        chosen = min(pool, key=lambda p: self._load.get(p.uid, 0))
        self._load[chosen.uid] = self._load.get(chosen.uid, 0) \
            + unit.description.cores
        return chosen


class PredictiveScheduler:
    """Completion-time-predicting scheduler (paper §V future work).

    Learns per-pilot unit service times with an exponentially-weighted
    moving average of observed executions, estimates each pilot's
    earliest completion time for the new unit as::

        ETA(pilot) = queued_core_seconds(pilot) / total_cores(pilot)
                     + predicted_duration(pilot, unit)

    and assigns the unit to the pilot with the smallest ETA.  With no
    history it falls back to capacity-proportional load balancing.
    ``observe`` is fed by the Unit-Manager as units finish.
    """

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._ewma: Dict[str, float] = {}          # pilot -> seconds/core-task
        self._queued_core_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------ learning
    def observe(self, pilot_uid: str, duration: float, cores: int) -> None:
        """Record one finished unit's execution time."""
        per_core = duration  # duration already reflects the unit's cores
        previous = self._ewma.get(pilot_uid)
        self._ewma[pilot_uid] = per_core if previous is None else (
            self.alpha * per_core + (1 - self.alpha) * previous)
        backlog = self._queued_core_seconds.get(pilot_uid, 0.0)
        self._queued_core_seconds[pilot_uid] = max(
            0.0, backlog - duration * cores)

    def predicted_duration(self, pilot: ComputePilot) -> float:
        return self._ewma.get(pilot.uid, 60.0)

    # ----------------------------------------------------------- assigning
    def assign(self, unit: ComputeUnit,
               pilots: List[ComputePilot]) -> ComputePilot:
        usable = [p for p in pilots if not p.state.is_final]
        if not usable:
            raise RuntimeError("no usable pilots attached")

        def eta(pilot: ComputePilot) -> float:
            cores = pilot.agent_info.get("cores") or (
                pilot.description.nodes * 16)
            backlog = self._queued_core_seconds.get(pilot.uid, 0.0)
            service = self.predicted_duration(pilot)
            return backlog / max(1, cores) + service

        chosen = min(usable, key=eta)
        self._queued_core_seconds[chosen.uid] = (
            self._queued_core_seconds.get(chosen.uid, 0.0)
            + self.predicted_duration(chosen) * unit.description.cores)
        return chosen


class UnitManager:
    """Client-side unit lifecycle (paper Figure 3, steps U.1-U.2).

    Units are written to the shared DB assigned to a pilot; the agent
    picks them up at its next poll.  A watcher replays agent-side state
    changes onto the handles.
    """

    def __init__(self, session: Session, scheduler=None):
        self.session = session
        self.env = session.env
        self.uid = session.next_uid("umgr")
        self.scheduler = scheduler or RoundRobinScheduler()
        self.pilots: List[ComputePilot] = []
        self.units: Dict[str, ComputeUnit] = {}
        self._observed: set = set()
        self._watcher = self.env.process(self._watch_loop(),
                                         name=f"{self.uid}-watch")

    # -------------------------------------------------------------- pilots
    def add_pilots(self, pilots: Union[ComputePilot,
                                       Sequence[ComputePilot]]) -> None:
        if isinstance(pilots, ComputePilot):
            pilots = [pilots]
        self.pilots.extend(pilots)

    # --------------------------------------------------------------- units
    def submit_units(self, descriptions: Union[
            ComputeUnitDescription,
            Sequence[ComputeUnitDescription]]) -> List[ComputeUnit]:
        """Submit units; each is scheduled to a pilot and queued in the
        shared DB.  Returns the handles."""
        if isinstance(descriptions, ComputeUnitDescription):
            descriptions = [descriptions]
        if not self.pilots:
            raise RuntimeError("add_pilots() before submit_units()")
        col = self.session.db.collection("units")
        handles = []
        for desc in descriptions:
            desc.validate()
            uid = self.session.next_uid("unit", width=6)
            unit = ComputeUnit(self.env, uid, desc)
            pilot = self.scheduler.assign(unit, self.pilots)
            unit.pilot_uid = pilot.uid
            self.units[uid] = unit
            col.insert({
                "_id": uid,
                "pilot": pilot.uid,
                "state": UnitState.NEW.value,
                "history": [(self.env.now, UnitState.NEW.value)],
                "description": desc,
                "result": None,
                "stderr": "",
                "exit_code": None,
            })
            advance_doc(col, uid, UnitState.UMGR_SCHEDULING, self.env.now)
            tel = self.env.telemetry
            if tel is not None:
                tel.emit("unit", "submitted", uid=uid, pilot=pilot.uid,
                         umgr=self.uid, cores=desc.cores)
                tel.emit("unit", "state", uid=uid, pilot=pilot.uid,
                         state=UnitState.UMGR_SCHEDULING.value)
                tel.counter("umgr.units_submitted").inc()
            handles.append(unit)
        return handles

    def wait_units(self, units: Optional[Iterable[ComputeUnit]] = None) -> Event:
        """Event firing when all given units (default: all) are final."""
        targets = list(units) if units is not None else \
            list(self.units.values())
        return self.env.all_of([u.wait() for u in targets])

    def cancel_units(self, units: Iterable[ComputeUnit]) -> None:
        """Cancel units that have not been claimed by an agent yet.

        Running units are canceled by pilot teardown; RP's semantics for
        mid-flight cancellation are likewise best-effort.
        """
        col = self.session.db.collection("units")
        for unit in units:
            doc = col.find_one({"_id": unit.uid})
            if doc and doc["state"] in (UnitState.NEW.value,
                                        UnitState.UMGR_SCHEDULING.value):
                advance_doc(col, unit.uid, UnitState.CANCELED, self.env.now)

    # ------------------------------------------------------------- watcher
    def _watch_loop(self):
        col = self.session.db.collection("units")
        while True:
            change = col.watch()
            self._sync()
            yield change

    def _sync(self) -> None:
        col = self.session.db.collection("units")
        for uid, unit in self.units.items():
            doc = col.find_one({"_id": uid})
            if doc is None:
                continue
            for _, state_value in doc["history"][len(unit.history):]:
                unit.advance(UnitState(state_value))
            if unit.state.is_final and uid not in self._observed:
                self._observed.add(uid)
                unit.result = doc.get("result")
                unit.exit_code = doc.get("exit_code")
                unit.stderr = doc.get("stderr", "")
                self._feed_scheduler(unit)

    def _feed_scheduler(self, unit: ComputeUnit) -> None:
        """Report an execution observation to learning schedulers."""
        observe = getattr(self.scheduler, "observe", None)
        if observe is None or unit.pilot_uid is None:
            return
        t_exec = unit.timestamp(UnitState.EXECUTING)
        t_done = unit.timestamp(UnitState.AGENT_STAGING_OUTPUT) \
            or unit.timestamp(UnitState.DONE)
        if t_exec is not None and t_done is not None:
            observe(unit.pilot_uid, t_done - t_exec,
                    unit.description.cores)
