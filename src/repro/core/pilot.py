"""ComputePilot: the client-side pilot handle."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.description import ComputePilotDescription
from repro.core.states import PILOT_TRANSITIONS, PilotState, check_transition
from repro.sim.engine import Environment, Event


class ComputePilot:
    """Handle to a submitted pilot.

    State changes flow from the agent through the shared DB; the
    Pilot-Manager's watcher replays them onto this handle, firing the
    per-state events that ``wait()`` exposes.
    """

    def __init__(self, env: Environment, uid: str,
                 description: ComputePilotDescription):
        self.env = env
        self.uid = uid
        self.description = description
        self.state = PilotState.NEW
        self.history: List[Tuple[float, PilotState]] = [
            (env.now, PilotState.NEW)]
        self._state_events: Dict[PilotState, Event] = {
            s: Event(env) for s in PilotState}
        self._final_event = Event(env)
        #: populated once ACTIVE: agent-side metrics for the benchmarks
        self.agent_info: Dict[str, float] = {}

    def advance(self, new_state: PilotState) -> None:
        """Apply one state transition (legality-checked)."""
        check_transition(PILOT_TRANSITIONS, self.state, new_state)
        self.state = new_state
        self.history.append((self.env.now, new_state))
        event = self._state_events[new_state]
        if not event.triggered:
            event.succeed(self)
        if new_state.is_final and not self._final_event.triggered:
            self._final_event.succeed(self)

    def wait(self, state: Optional[PilotState] = None) -> Event:
        """Event firing when the pilot reaches ``state`` (or any final)."""
        if state is None:
            return self._final_event
        return self._state_events[state]

    def timestamp(self, state: PilotState) -> Optional[float]:
        """When the pilot first entered ``state`` (None if never)."""
        for t, s in self.history:
            if s is state:
                return t
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ComputePilot {self.uid} {self.state.value}>"
