"""Session profiling utilities (the radical.analytics counterpart).

RADICAL-Pilot sessions record state-transition timestamps for every
pilot and unit; the paper's Figure 5 is exactly such an analysis.
These helpers turn the handles' histories into the durations and
series the evaluation plots:

* per-unit phase durations (scheduling delay, staging, execution);
* pilot startup decomposition;
* concurrency over time (how many units were EXECUTING at t);
* core utilization of a pilot by a set of units.

All functions are duck-typed over "anything with ``history`` /
``timestamp()``": client-side handles, or the live views a
:class:`repro.telemetry.ProfilerBridge` reconstructs from the event
stream mid-run — the same analyses work without waiting for the run
to finish.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.pilot import ComputePilot
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit

#: The unit phases reported by :func:`unit_phases`, as (label, from, to).
UNIT_PHASES = [
    ("queue", UnitState.UMGR_SCHEDULING, UnitState.AGENT_STAGING_INPUT),
    ("stage_in", UnitState.AGENT_STAGING_INPUT, UnitState.AGENT_SCHEDULING),
    ("schedule", UnitState.AGENT_SCHEDULING, UnitState.EXECUTING),
    ("execute", UnitState.EXECUTING, UnitState.AGENT_STAGING_OUTPUT),
    ("stage_out", UnitState.AGENT_STAGING_OUTPUT, UnitState.DONE),
]


def unit_phases(unit: ComputeUnit) -> Dict[str, Optional[float]]:
    """Durations of each pipeline phase for one unit (None = not seen)."""
    out: Dict[str, Optional[float]] = {}
    for label, start, end in UNIT_PHASES:
        t0, t1 = unit.timestamp(start), unit.timestamp(end)
        out[label] = None if t0 is None or t1 is None else t1 - t0
    return out


def phase_means(units: Iterable[ComputeUnit]
                ) -> Dict[str, Optional[float]]:
    """Mean duration per phase over units that completed the phase.

    Every :data:`UNIT_PHASES` label is present in the result; a phase
    no unit completed maps to ``None`` (mirroring
    :func:`unit_phases`), so downstream consumers can index any phase
    without guarding for partial histories.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for unit in units:
        for label, value in unit_phases(unit).items():
            if value is not None:
                sums[label] = sums.get(label, 0.0) + value
                counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] if counts.get(label)
            else None
            for label, _, _ in UNIT_PHASES}


def pilot_startup_breakdown(pilot: ComputePilot) -> Dict[str, float]:
    """Submission-to-active decomposition of one pilot."""
    stamps = {state: pilot.timestamp(state) for state in PilotState}
    out: Dict[str, float] = {}

    def span(label, a, b):
        if stamps.get(a) is not None and stamps.get(b) is not None:
            out[label] = stamps[b] - stamps[a]

    span("submit_to_launch", PilotState.NEW, PilotState.LAUNCHING)
    span("queue_wait", PilotState.LAUNCHING, PilotState.PENDING_ACTIVE)
    span("agent_bootstrap", PilotState.PENDING_ACTIVE, PilotState.ACTIVE)
    span("total", PilotState.NEW, PilotState.ACTIVE)
    if pilot.agent_info:
        out["lrm_setup"] = pilot.agent_info.get("lrm_setup_seconds", 0.0)
    return out


def concurrency_series(units: Iterable[ComputeUnit],
                       state: UnitState = UnitState.EXECUTING
                       ) -> List[Tuple[float, int]]:
    """(time, active-count) steps for units residing in ``state``.

    A unit is "in" the state from its entry timestamp until its next
    recorded transition.
    """
    deltas: List[Tuple[float, int]] = []
    for unit in units:
        history = unit.history
        for i, (t, s) in enumerate(history):
            if s is state:
                deltas.append((t, +1))
                if i + 1 < len(history):
                    deltas.append((history[i + 1][0], -1))
    deltas.sort()
    series: List[Tuple[float, int]] = []
    active = 0
    for t, d in deltas:
        active += d
        if series and series[-1][0] == t:
            series[-1] = (t, active)
        else:
            series.append((t, active))
    return series


def peak_concurrency(units: Iterable[ComputeUnit],
                     state: UnitState = UnitState.EXECUTING) -> int:
    """Maximum number of units simultaneously in ``state``."""
    series = concurrency_series(units, state)
    return max((count for _, count in series), default=0)


def core_utilization(units: Sequence[ComputeUnit],
                     pilot: ComputePilot,
                     start: Optional[float] = None,
                     end: Optional[float] = None) -> float:
    """Busy core-seconds / available core-seconds over [start, end].

    Defaults: from the pilot going ACTIVE to the last unit leaving
    EXECUTING.
    """
    cores = pilot.agent_info.get("cores", 0)
    if not cores or not units:
        return 0.0
    if start is None:
        start = pilot.timestamp(PilotState.ACTIVE) or 0.0
    exec_spans = []
    for unit in units:
        t0 = unit.timestamp(UnitState.EXECUTING)
        t1 = unit.timestamp(UnitState.AGENT_STAGING_OUTPUT)
        if t0 is not None and t1 is not None:
            exec_spans.append((t0, t1, unit.description.cores))
    if not exec_spans:
        return 0.0
    if end is None:
        end = max(t1 for _, t1, _ in exec_spans)
    window = end - start
    if window <= 0:
        return 0.0
    busy = sum((min(t1, end) - max(t0, start)) * c
               for t0, t1, c in exec_spans
               if min(t1, end) > max(t0, start))
    return busy / (cores * window)
