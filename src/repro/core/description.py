"""Descriptions: what users ask for (pilots, units, agent behaviour).

Every describe-object in the repo — pilot and unit descriptions here,
the data descriptions in :mod:`repro.core.data`, the fault specs in
:mod:`repro.faults` — follows one keyword-validated dataclass
convention: a plain ``@dataclass`` whose fields are the public surface,
with a shared ``validate()`` entry point that raises
:class:`DescriptionError` on bad values and returns ``self`` so calls
chain.  ``from_dict`` builds a description from keyword mappings and
rejects unknown keys, and ``replace`` clones with changes; both
validate the result.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple


class DescriptionError(ValueError):
    """A describe-object failed validation.

    Subclasses :class:`ValueError` so call sites that predate the
    unified convention keep working.
    """


@dataclass
class Description:
    """Base for all describe-objects: the shared validation convention.

    Subclasses implement ``_check()`` using :meth:`_require`; user code
    calls :meth:`validate` (or gets it called for them on submission).
    """

    def validate(self) -> "Description":
        """Check all fields; raise :class:`DescriptionError` if invalid."""
        self._check()
        return self

    def _check(self) -> None:  # pragma: no cover - overridden
        """Field checks; override in subclasses."""

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise DescriptionError(message)

    @classmethod
    def from_dict(cls, mapping: Dict[str, Any]) -> "Description":
        """Build and validate a description from a keyword mapping."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise DescriptionError(
                f"unknown {cls.__name__} fields: {', '.join(unknown)}")
        instance = cls(**mapping)
        instance.validate()
        return instance

    def replace(self, **changes: Any) -> "Description":
        """Clone with ``changes`` applied; the clone is validated."""
        try:
            clone = dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise DescriptionError(str(exc)) from None
        clone.validate()
        return clone


@dataclass
class AgentConfig(Description):
    """How the RADICAL-Pilot-Agent behaves on the allocation.

    ``lrm`` picks the Local Resource Manager:

    * ``"fork"`` — plain HPC execution on the allocated nodes (the
      baseline RADICAL-Pilot of the paper's experiments);
    * ``"yarn"`` — **Mode I**: bootstrap HDFS + YARN on the allocation,
      then execute units as YARN applications;
    * ``"yarn-connect"`` — **Mode II**: connect to the machine's
      dedicated YARN cluster (e.g. Wrangler's data portal environment);
    * ``"spark"`` — bootstrap a standalone Spark cluster.
    """

    lrm: str = "fork"
    #: Agent poll interval for new units in the shared DB (seconds).
    db_poll_interval: float = 1.0
    #: Base bootstrap cost: virtualenv, module loads, component start.
    bootstrap_seconds: float = 40.0
    #: MongoDB connection setup.
    db_connect_seconds: float = 2.0
    #: Re-use the YARN Application Master across units (paper §III-C
    #: names this as the planned optimization; ablation A3 measures it).
    reuse_application_master: bool = False
    #: Hadoop distribution tarball size (downloaded in Mode I).
    hadoop_dist_bytes: float = 250 * 1024 ** 2
    #: Spark distribution tarball size.
    spark_dist_bytes: float = 230 * 1024 ** 2
    #: Seconds to render *-site.xml / spark-env.sh etc.
    configure_seconds: float = 5.0
    #: Mode II connect + cluster-info collection.
    connect_seconds: float = 3.0
    #: HDFS replication inside Mode I clusters (small allocations).
    hdfs_replication: int = 2
    #: Task spawner overhead per unit (env setup script, fork/exec).
    spawn_overhead_seconds: float = 2.0
    #: Bytes each task reads to start its environment (interpreter,
    #: shared libraries, Python imports).  Plain pilots read this from
    #: the shared filesystem — a famously contended operation at scale
    #: on Lustre — while YARN/Spark tasks localize from the node disk.
    task_environment_bytes: float = 0.0
    #: Memory per YARN task container when the unit does not say.
    default_unit_memory_mb: int = 2048
    #: Core placement for the continuous scheduler: "pack" (RP default)
    #: or "spread" (even across nodes — the paper's task/node ratios).
    scheduler_policy: str = "pack"
    #: YARN settings for the Mode I cluster (None = YARN defaults).
    #: Typed loosely to keep descriptions import-light; must be a
    #: :class:`repro.yarn.config.YarnConfig` when set.
    yarn_config: Optional[Any] = None

    def _check(self) -> None:
        if self.lrm not in ("fork", "yarn", "yarn-connect", "spark"):
            raise DescriptionError(f"unknown LRM {self.lrm!r}")
        self._require(self.scheduler_policy in ("pack", "spread"),
                      f"unknown scheduler policy {self.scheduler_policy!r}")
        self._require(self.db_poll_interval > 0,
                      "db_poll_interval must be positive")
        self._require(self.hdfs_replication >= 1,
                      "hdfs_replication must be >= 1")


@dataclass
class ComputePilotDescription(Description):
    """Resource request for one pilot (mirrors RP's attributes)."""

    resource: str                 # SAGA URL, e.g. "slurm://stampede"
    nodes: int = 1
    runtime: float = 60.0         # minutes, as in RP
    queue: str = "normal"
    project: Optional[str] = None
    agent_config: AgentConfig = field(default_factory=AgentConfig)

    def _check(self) -> None:
        self._require(self.nodes >= 1, "pilot needs >= 1 node")
        self._require(self.runtime > 0, "runtime must be positive")
        if self.agent_config.lrm not in (
                "fork", "yarn", "yarn-connect", "spark"):
            raise DescriptionError(
                f"unknown LRM {self.agent_config.lrm!r}")
        self.agent_config.validate()


@dataclass
class ComputeUnitDescription(Description):
    """One self-contained piece of work (mirrors RP's CU description).

    The simulation extensions:

    * ``cpu_seconds`` — abstract reference-CPU seconds of compute; the
      agent divides by (cores x node speed) for the modeled duration.
    * ``input_bytes`` / ``output_bytes`` — bulk I/O the unit performs,
      charged to whatever storage the executing backend uses (Lustre
      for plain pilots, node-local disk for YARN — the crux of
      Figure 6).
    * ``function``/``args`` — an optional real Python callable executed
      eagerly; its return value lands on ``unit.result``.
    * ``service`` — turns the unit into a long-lived *service*: a
      callable taking a :class:`~repro.core.agent.executor.ServiceContext`
      and returning a generator that the backend runs as the unit's
      whole EXECUTING phase (e.g. a raptor master or worker parking on
      its node).  Mutually exclusive with ``function``.
    """

    executable: str = "/bin/true"
    arguments: Tuple[str, ...] = ()
    cores: int = 1
    memory_mb: Optional[int] = None
    cpu_seconds: float = 0.0
    input_bytes: float = 0.0
    output_bytes: float = 0.0
    function: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: long-lived service payload: ``service(ctx)`` must return a
    #: generator the backend drives for the unit's EXECUTING phase
    service: Optional[Callable[..., Any]] = None
    #: staging directives: (catalog_path, nbytes) pairs
    input_staging: Tuple[Tuple[str, float], ...] = ()
    output_staging: Tuple[Tuple[str, float], ...] = ()
    #: launch-method hint: "fork" | "mpiexec" | "aprun" | "docker" |
    #: None = agent picks
    launch_method: Optional[str] = None
    #: where the unit's bulk input lives: "default" (the backend's
    #: storage — Lustre for plain pilots, local disk for YARN/Spark) or
    #: "memory" (the node's Tachyon-style in-memory tier, for cached
    #: working sets of iterative algorithms, paper §V).
    input_tier: str = "default"
    name: str = ""

    def _check(self) -> None:
        self._require(self.cores >= 1, "unit needs >= 1 core")
        self._require(
            self.cpu_seconds >= 0 and self.input_bytes >= 0
            and self.output_bytes >= 0,
            "unit costs must be non-negative")
        self._require(self.input_tier in ("default", "memory"),
                      f"unknown input tier {self.input_tier!r}")
        self._require(self.service is None or self.function is None,
                      "a unit is either a service or a function payload")
