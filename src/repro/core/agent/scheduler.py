"""Agent schedulers: assign Compute-Units to resource slots.

Two of the paper's schedulers:

* :class:`ContinuousScheduler` — the default HPC scheduler: allocates
  CPU cores over the allocation's nodes (filling nodes in order,
  spanning nodes for multi-core units), FIFO with no overtaking.
* :class:`YarnAgentScheduler` — the paper's YARN extension (§III-C):
  sizes slots by *memory in addition to cores*, with capacity read from
  the YARN ResourceManager's REST-style metrics (``availableMB`` /
  ``availableVirtualCores``); the actual container placement is then
  performed by YARN itself when the unit's application runs.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster.node import Node
from repro.sim.engine import Environment, Event, SimulationError


class SlotAllocation:
    """Cores granted to one unit: (node, cores) pairs.

    YARN slots carry no node assignments (placement is YARN's job);
    for those, ``cores`` records the reserved vcount explicitly so
    ``release`` returns exactly what ``allocate`` took.
    """

    def __init__(self, assignments: List[Tuple[Node, int]],
                 memory_mb: int = 0, cores: Optional[int] = None):
        self.assignments = assignments
        self.memory_mb = memory_mb
        self._cores = cores

    @property
    def nodes(self) -> List[Node]:
        return [node for node, _ in self.assignments]

    @property
    def total_cores(self) -> int:
        if self._cores is not None:
            return self._cores
        return sum(c for _, c in self.assignments)

    @property
    def primary_node(self) -> Node:
        return self.assignments[0][0]


class ContinuousScheduler:
    """Core-counting FIFO scheduler over the allocation's nodes.

    ``policy`` controls placement of single-node-fitting requests:
    ``"pack"`` fills nodes in order (RP's default — concentrates load);
    ``"spread"`` picks the node with the most free cores (what the
    paper's task/node ratios imply: 8 tasks on 1 node, 16 on 2, 32 on
    3 spreads evenly).

    Counter cross-checks run whenever the environment's
    :class:`~repro.analysis.sanitizer.SimSanitizer` is installed
    (``REPRO_SANITIZE=1`` / ``Session(sanitize=True)``).  The
    ``debug=True`` kwarg is a deprecated alias that forces the same
    checks on for this instance alone.
    """

    def __init__(self, env: Environment, nodes: List[Node],
                 policy: str = "pack", debug: bool = False):
        if not nodes:
            raise SimulationError("scheduler needs nodes")
        if policy not in ("pack", "spread"):
            raise SimulationError(f"unknown placement policy {policy!r}")
        if debug:
            warnings.warn(
                "ContinuousScheduler(debug=True) is deprecated; install "
                "the SimSanitizer instead (REPRO_SANITIZE=1 or "
                "Session(sanitize=True))", DeprecationWarning,
                stacklevel=2)
        self.env = env
        self.nodes = list(nodes)
        self.policy = policy
        self.debug = bool(debug)
        #: Per-instance checker used when debug=True forces checks on
        #: without an installed sanitizer.
        self._own_sanitizer = SimSanitizer(env) if debug else None
        self._free: Dict[str, int] = {n.name: n.num_cores for n in nodes}
        self._queue: Deque[Tuple[int, Event]] = deque()
        # Capacity totals are maintained incrementally: the node set is
        # fixed for the scheduler's lifetime, and allocate/release are
        # the only paths that move cores — re-summing either per call
        # made allocate O(nodes) for no reason.
        self._total_cores = sum(n.num_cores for n in nodes)
        self._free_cores = self._total_cores
        self._waiting = 0
        #: Names of nodes removed by :meth:`deactivate_node`; releases
        #: of cores carved from them are dropped, not re-added.
        self._retired: set = set()
        # Spread-policy order cache: valid while no free count changed.
        self._free_version = 0
        self._order_version = -1
        self._order: List[Node] = self.nodes

    @property
    def total_cores(self) -> int:
        return self._total_cores

    @property
    def free_cores(self) -> int:
        return self._free_cores

    def allocate(self, cores: int) -> Event:
        """Request ``cores``; event fires with a :class:`SlotAllocation`."""
        if cores < 1:
            raise SimulationError("must request >= 1 core")
        if cores > self._total_cores:
            raise SimulationError(
                f"unit wants {cores} cores, allocation has "
                f"{self._total_cores}")
        event = Event(self.env)
        self._queue.append((cores, event))
        self._waiting += 1
        self._drain()
        return event

    def release(self, allocation: SlotAllocation) -> None:
        free = self._free
        retired = self._retired
        returned = 0
        for node, cores in allocation.assignments:
            if retired and node.name in retired:
                # The node died while this unit held it; its cores left
                # the capacity pool with it.
                continue
            free[node.name] += cores
            returned += cores
        self._free_cores += returned
        self._free_version += 1
        self._drain()

    def deactivate_node(self, node: Node) -> None:
        """Remove a dead node from the capacity pool.

        Free cores on the node vanish from the ledger immediately;
        cores still held by executing units are forgotten when their
        allocations release (see :meth:`release`), so the sanitizer's
        conservation checks hold at every step.  Queued requests that
        no longer fit the shrunk allocation are failed rather than left
        to deadlock the FIFO queue.
        """
        name = node.name
        if name in self._retired:
            return
        self._retired.add(name)
        self.nodes = [n for n in self.nodes if n.name != name]
        if not self.nodes:
            # Whole allocation gone: fail everything still queued.
            self._total_cores = 0
            self._free_cores = 0
            self._free.clear()
        else:
            freed = self._free.pop(name, 0)
            self._free_cores -= freed
            self._total_cores -= node.num_cores
        self._free_version += 1
        survivors: Deque[Tuple[int, Event]] = deque()
        for cores, event in self._queue:
            if not event._triggered and cores > self._total_cores:
                self._waiting -= 1
                event.fail(SimulationError(
                    f"allocation lost node {name}: {cores}-core request "
                    f"exceeds the remaining {self._total_cores} cores"))
            else:
                survivors.append((cores, event))
        self._queue = survivors
        self._drain()

    def _report(self) -> None:
        """Queue-depth and occupancy gauges (no-op unless installed)."""
        tel = self.env.telemetry
        if tel is None:
            return
        total = self._total_cores
        busy = total - self._free_cores
        tel.gauge("agent.scheduler.queue_depth",
                  backend="continuous").set(self._waiting)
        tel.gauge("agent.executor.busy_cores",
                  backend="continuous").set(busy)
        tel.gauge("agent.executor.occupancy", backend="continuous").set(
            busy / total if total else 0.0)

    def _drain(self) -> None:
        # FIFO, no overtaking: a blocked head blocks the queue (matches
        # RP's continuous scheduler and keeps large units from starving).
        try:
            while self._queue:
                cores, event = self._queue[0]
                if event._triggered:
                    self._queue.popleft()
                    self._waiting -= 1
                    continue
                if cores > self._free_cores:
                    return
                self._queue.popleft()
                self._waiting -= 1
                event.succeed(self._carve(cores))
        finally:
            sanitizer = self.env.sanitizer or self._own_sanitizer
            if sanitizer is not None:
                sanitizer.check_scheduler(self)
            self._report()

    def _debug_check(self) -> None:
        """Deprecated alias for the SimSanitizer scheduler checker."""
        warnings.warn(
            "ContinuousScheduler._debug_check is deprecated; use "
            "SimSanitizer.check_scheduler", DeprecationWarning,
            stacklevel=2)
        (self.env.sanitizer or SimSanitizer(self.env)).check_scheduler(self)

    def _spread_order(self) -> List[Node]:
        """Nodes by descending free cores, memoised until occupancy moves.

        Always derived from the construction order (stable sort), so a
        cache hit and a fresh sort give the same placement.
        """
        if self._order_version != self._free_version:
            free = self._free
            self._order = sorted(self.nodes, key=lambda n: -free[n.name])
            self._order_version = self._free_version
        return self._order

    def _carve(self, cores: int) -> SlotAllocation:
        free_map = self._free
        if self.policy == "spread":
            # Fast path: the request fits on the single most-free node
            # (first such node in construction order — identical to the
            # head of the stable descending sort).  Dominant case for
            # the paper's 1-core tasks; no sort, no order list.
            best = None
            best_free = 0
            for node in self.nodes:
                f = free_map[node.name]
                if f > best_free:
                    best, best_free = node, f
            if best_free >= cores:
                free_map[best.name] = best_free - cores
                self._free_cores -= cores
                self._free_version += 1
                return SlotAllocation([(best, cores)])
            order = self._spread_order()
        else:
            order = self.nodes
        assignments: List[Tuple[Node, int]] = []
        remaining = cores
        for node in order:
            free = free_map[node.name]
            if free <= 0:
                continue
            take = free if free < remaining else remaining
            free_map[node.name] = free - take
            assignments.append((node, take))
            remaining -= take
            if remaining == 0:
                break
        assert remaining == 0, "free_cores accounting broken"
        self._free_cores -= cores
        self._free_version += 1
        return SlotAllocation(assignments)


class YarnAgentScheduler:
    """Cores **and memory** scheduler, fed by YARN cluster metrics.

    The agent throttles unit submission so the sum of in-flight slot
    reservations never exceeds what the RM reports as available —
    exactly how the paper's scheduler uses the REST API.  Node choice
    is left to YARN's own scheduler at container-allocation time.
    """

    def __init__(self, env: Environment, resource_manager,
                 am_memory_mb: int = 512):
        self.env = env
        self.rm = resource_manager
        self.am_memory_mb = am_memory_mb
        self._reserved_mb = 0
        self._reserved_cores = 0
        self._queue: Deque[Tuple[int, int, Event]] = deque()
        self._waiting = 0

    def cluster_state(self) -> Dict[str, float]:
        """The RM metrics snapshot the scheduler works from."""
        return self.rm.cluster_metrics()

    def allocate(self, cores: int, memory_mb: int) -> Event:
        """Reserve a (cores, memory) slot; fires with a SlotAllocation."""
        metrics = self.cluster_state()
        need_mb = memory_mb + self.am_memory_mb
        if need_mb > metrics["totalMB"] or cores > metrics["totalVirtualCores"]:
            raise SimulationError(
                f"unit slot ({need_mb} MB, {cores} vcores) exceeds the "
                f"YARN cluster ({metrics['totalMB']} MB, "
                f"{metrics['totalVirtualCores']} vcores)")
        event = Event(self.env)
        self._queue.append((cores, need_mb, event))
        self._waiting += 1
        self._drain()
        return event

    def release(self, allocation: SlotAllocation) -> None:
        self._reserved_mb -= allocation.memory_mb
        self._reserved_cores -= allocation.total_cores
        self._drain()

    def _drain(self) -> None:
        metrics = self.cluster_state()
        try:
            while self._queue:
                cores, need_mb, event = self._queue[0]
                if event.triggered:
                    self._queue.popleft()
                    self._waiting -= 1
                    continue
                # Throttle against the RM-reported capacity.  Our own
                # in-flight reservations stand in for allocations that
                # have not manifested in the metrics yet
                # (submission lag).
                if (self._reserved_mb + need_mb > metrics["totalMB"]
                        or self._reserved_cores + cores
                        > metrics["totalVirtualCores"]):
                    return
                self._queue.popleft()
                self._waiting -= 1
                self._reserved_mb += need_mb
                self._reserved_cores += cores
                # Node placement is YARN's job; the slot is cluster-wide.
                event.succeed(SlotAllocation([], memory_mb=need_mb,
                                             cores=cores))
        finally:
            sanitizer = self.env.sanitizer
            if sanitizer is not None:
                sanitizer.check_yarn_agent_scheduler(self)
            self._report(metrics)

    def _report(self, metrics: Dict[str, float]) -> None:
        """Queue-depth and occupancy gauges (no-op unless installed)."""
        tel = self.env.telemetry
        if tel is None:
            return
        tel.gauge("agent.scheduler.queue_depth", backend="yarn").set(
            self._waiting)
        tel.gauge("agent.executor.busy_cores", backend="yarn").set(
            self._reserved_cores)
        total = metrics["totalVirtualCores"]
        tel.gauge("agent.executor.occupancy", backend="yarn").set(
            self._reserved_cores / total if total else 0.0)
        tel.gauge("agent.executor.reserved_mb", backend="yarn").set(
            self._reserved_mb)
