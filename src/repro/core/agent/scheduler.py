"""Agent schedulers: assign Compute-Units to resource slots.

Two of the paper's schedulers:

* :class:`ContinuousScheduler` — the default HPC scheduler: allocates
  CPU cores over the allocation's nodes (filling nodes in order,
  spanning nodes for multi-core units), FIFO with no overtaking.
* :class:`YarnAgentScheduler` — the paper's YARN extension (§III-C):
  sizes slots by *memory in addition to cores*, with capacity read from
  the YARN ResourceManager's REST-style metrics (``availableMB`` /
  ``availableVirtualCores``); the actual container placement is then
  performed by YARN itself when the unit's application runs.
"""

from __future__ import annotations

import warnings
from collections import deque
from heapq import heapify, heappop, heappush, heapreplace
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster.node import Node
from repro.sim.engine import Environment, Event, SimulationError


class SlotAllocation:
    """Cores granted to one unit: (node, cores) pairs.

    YARN slots carry no node assignments (placement is YARN's job);
    for those, ``cores`` records the reserved vcount explicitly so
    ``release`` returns exactly what ``allocate`` took.
    """

    def __init__(self, assignments: List[Tuple[Node, int]],
                 memory_mb: int = 0, cores: Optional[int] = None):
        self.assignments = assignments
        self.memory_mb = memory_mb
        self._cores = cores

    @property
    def nodes(self) -> List[Node]:
        return [node for node, _ in self.assignments]

    @property
    def total_cores(self) -> int:
        if self._cores is not None:
            return self._cores
        return sum(c for _, c in self.assignments)

    @property
    def primary_node(self) -> Node:
        return self.assignments[0][0]


class ContinuousScheduler:
    """Core-counting FIFO scheduler over the allocation's nodes.

    ``policy`` controls placement of single-node-fitting requests:
    ``"pack"`` fills nodes in order (RP's default — concentrates load);
    ``"spread"`` picks the node with the most free cores (what the
    paper's task/node ratios imply: 8 tasks on 1 node, 16 on 2, 32 on
    3 spreads evenly).

    Counter cross-checks run whenever the environment's
    :class:`~repro.analysis.sanitizer.SimSanitizer` is installed
    (``REPRO_SANITIZE=1`` / ``Session(sanitize=True)``).  The
    ``debug=True`` kwarg is a deprecated alias that forces the same
    checks on for this instance alone.
    """

    def __init__(self, env: Environment, nodes: List[Node],
                 policy: str = "pack", debug: bool = False):
        if not nodes:
            raise SimulationError("scheduler needs nodes")
        if policy not in ("pack", "spread"):
            raise SimulationError(f"unknown placement policy {policy!r}")
        if debug:
            warnings.warn(
                "ContinuousScheduler(debug=True) is deprecated; install "
                "the SimSanitizer instead (REPRO_SANITIZE=1 or "
                "Session(sanitize=True))", DeprecationWarning,
                stacklevel=2)
        self.env = env
        self.nodes = list(nodes)
        self.policy = policy
        self.debug = bool(debug)
        #: Per-instance checker used when debug=True forces checks on
        #: without an installed sanitizer.
        self._own_sanitizer = SimSanitizer(env) if debug else None
        self._free: Dict[str, int] = {n.name: n.num_cores for n in nodes}
        self._queue: Deque[Tuple[int, Event]] = deque()
        # Capacity totals are maintained incrementally: the node set is
        # fixed for the scheduler's lifetime, and allocate/release are
        # the only paths that move cores — re-summing either per call
        # made allocate O(nodes) for no reason.
        self._total_cores = sum(n.num_cores for n in nodes)
        self._free_cores = self._total_cores
        self._waiting = 0
        #: Names of nodes removed by :meth:`deactivate_node`; releases
        #: of cores carved from them are dropped, not re-added.
        self._retired: set = set()
        # Spread-policy order cache: valid while no free count changed.
        self._free_version = 0
        self._order_version = -1
        self._order: List[Node] = self.nodes
        # Lazy free-core index (the scale fix): construction-order node
        # array + per-index free counts mirroring ``_free``, plus a lazy
        # heap per policy.  Entries are validated against the current
        # free count on pop, so no entry is ever removed eagerly:
        #   spread — (-free, idx): valid top == node with the most free
        #     cores, earliest construction index on ties (exactly the
        #     first-max linear scan it replaces);
        #   pack — idx for nodes with free > 0: valid top == earliest
        #     node with capacity (exactly the in-order walk it replaces).
        # Retired nodes get a -1 sentinel no live entry can match.
        self._all_nodes: List[Node] = self.nodes[:]
        self._index: Dict[str, int] = {
            n.name: i for i, n in enumerate(self._all_nodes)}
        self._free_arr: List[int] = [n.num_cores for n in self._all_nodes]
        self._is_spread = policy == "spread"
        if self._is_spread:
            self._spread_heap: List[Tuple[int, int]] = [
                (-f, i) for i, f in enumerate(self._free_arr)]
            heapify(self._spread_heap)
            self._pack_heap: List[int] = []
        else:
            self._spread_heap = []
            self._pack_heap = list(range(len(self._all_nodes)))
        # Gauge handles cached per telemetry hub: _report runs on every
        # drain, and the registry lookup (sorted label key + dict get)
        # dominates the actual sample append at scale.
        self._report_gauges: Optional[tuple] = None

    @property
    def total_cores(self) -> int:
        return self._total_cores

    @property
    def free_cores(self) -> int:
        return self._free_cores

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: the full free-core ledger.

        Per-node free counts (name-sorted) pin down placement state
        exactly; the aggregate counters alone could mask a transposed
        allocation after restore-replay.
        """
        return {"kind": "continuous_scheduler",
                "free": dict(sorted(self._free.items())),
                "free_cores": self._free_cores,
                "total_cores": self._total_cores,
                "waiting": self._waiting}

    def allocate(self, cores: int) -> Event:
        """Request ``cores``; event fires with a :class:`SlotAllocation`."""
        if cores < 1:
            raise SimulationError("must request >= 1 core")
        if cores > self._total_cores:
            raise SimulationError(
                f"unit wants {cores} cores, allocation has "
                f"{self._total_cores}")
        event = Event(self.env)
        self._queue.append((cores, event))
        self._waiting += 1
        self._drain()
        return event

    def release(self, allocation: SlotAllocation) -> None:
        free = self._free
        retired = self._retired
        free_arr = self._free_arr
        index = self._index
        is_spread = self._is_spread
        returned = 0
        for node, cores in allocation.assignments:
            name = node.name
            if retired and name in retired:
                # The node died while this unit held it; its cores left
                # the capacity pool with it.
                continue
            idx = index[name]
            old = free_arr[idx]
            new = old + cores
            free_arr[idx] = new
            free[name] = new
            if is_spread:
                heappush(self._spread_heap, (-new, idx))
            elif old == 0:
                heappush(self._pack_heap, idx)
            returned += cores
        self._free_cores += returned
        self._free_version += 1
        # Compact the lazy heaps once stale entries dominate: every
        # release pushes a fresh entry while its stale predecessor only
        # leaves when popped, so a long allocate/release stream would
        # otherwise grow the heap (and its log factor) without bound.
        # Rebuilding from the free array keeps exactly the valid
        # entries, so placement is unchanged; the 4x threshold makes
        # the O(nodes) rebuild amortized O(1) per release.
        if is_spread:
            if len(self._spread_heap) > max(64, 4 * len(free_arr)):
                self._spread_heap = [
                    (-f, i) for i, f in enumerate(free_arr) if f > 0]
                heapify(self._spread_heap)
        elif len(self._pack_heap) > max(64, 4 * len(free_arr)):
            self._pack_heap = [
                i for i, f in enumerate(free_arr) if f > 0]
            # Already index-sorted, hence a valid min-heap.
        self._drain()

    def deactivate_node(self, node: Node) -> None:
        """Remove a dead node from the capacity pool.

        Free cores on the node vanish from the ledger immediately;
        cores still held by executing units are forgotten when their
        allocations release (see :meth:`release`), so the sanitizer's
        conservation checks hold at every step.  Queued requests that
        no longer fit the shrunk allocation are failed rather than left
        to deadlock the FIFO queue.
        """
        name = node.name
        if name in self._retired:
            return
        self._retired.add(name)
        # Sentinel: stale heap entries for the node can never validate.
        self._free_arr[self._index[name]] = -1
        self.nodes = [n for n in self.nodes if n.name != name]
        if not self.nodes:
            # Whole allocation gone: fail everything still queued.
            self._total_cores = 0
            self._free_cores = 0
            self._free.clear()
        else:
            freed = self._free.pop(name, 0)
            self._free_cores -= freed
            self._total_cores -= node.num_cores
        self._free_version += 1
        survivors: Deque[Tuple[int, Event]] = deque()
        for cores, event in self._queue:
            if not event._triggered and cores > self._total_cores:
                self._waiting -= 1
                event.fail(SimulationError(
                    f"allocation lost node {name}: {cores}-core request "
                    f"exceeds the remaining {self._total_cores} cores"))
            else:
                survivors.append((cores, event))
        self._queue = survivors
        self._drain()

    def _report(self) -> None:
        """Queue-depth and occupancy gauges (no-op unless installed)."""
        tel = self.env.telemetry
        if tel is None:
            return
        gauges = self._report_gauges
        if gauges is None or gauges[0] is not tel:
            gauges = (tel,
                      tel.gauge("agent.scheduler.queue_depth",
                                backend="continuous"),
                      tel.gauge("agent.executor.busy_cores",
                                backend="continuous"),
                      tel.gauge("agent.executor.occupancy",
                                backend="continuous"))
            self._report_gauges = gauges
        total = self._total_cores
        busy = total - self._free_cores
        gauges[1].set(self._waiting)
        gauges[2].set(busy)
        gauges[3].set(busy / total if total else 0.0)

    def _drain(self) -> None:
        # FIFO, no overtaking: a blocked head blocks the queue (matches
        # RP's continuous scheduler and keeps large units from starving).
        try:
            while self._queue:
                cores, event = self._queue[0]
                if event._triggered:
                    self._queue.popleft()
                    self._waiting -= 1
                    continue
                if cores > self._free_cores:
                    return
                self._queue.popleft()
                self._waiting -= 1
                event.succeed(self._carve(cores))
        finally:
            sanitizer = self.env.sanitizer or self._own_sanitizer
            if sanitizer is not None:
                sanitizer.check_scheduler(self)
            self._report()

    def _debug_check(self) -> None:
        """Deprecated alias for the SimSanitizer scheduler checker."""
        warnings.warn(
            "ContinuousScheduler._debug_check is deprecated; use "
            "SimSanitizer.check_scheduler", DeprecationWarning,
            stacklevel=2)
        (self.env.sanitizer or SimSanitizer(self.env)).check_scheduler(self)

    def _spread_order(self) -> List[Node]:
        """Nodes by descending free cores, memoised until occupancy moves.

        Always derived from the construction order (stable sort), so a
        cache hit and a fresh sort give the same placement.
        """
        if self._order_version != self._free_version:
            free = self._free
            self._order = sorted(self.nodes, key=lambda n: -free[n.name])
            self._order_version = self._free_version
        return self._order

    def _carve(self, cores: int) -> SlotAllocation:
        free_map = self._free
        free_arr = self._free_arr
        index = self._index
        if self._is_spread:
            # Fast path: the request fits on the single most-free node
            # (earliest such node in construction order — identical to
            # the head of the stable descending sort).  The lazy heap
            # makes this O(log nodes) amortized: stale entries are
            # discarded on peek, and every free-count change pushed a
            # fresh one, so the first valid top *is* the first max the
            # old linear rescan found.
            heap = self._spread_heap
            while heap:
                negf, idx = heap[0]
                if free_arr[idx] == -negf:
                    if -negf < cores:
                        break
                    node = self._all_nodes[idx]
                    new = -negf - cores
                    free_arr[idx] = new
                    free_map[node.name] = new
                    heapreplace(heap, (-new, idx))
                    self._free_cores -= cores
                    self._free_version += 1
                    return SlotAllocation([(node, cores)])
                heappop(heap)
            # Multi-node request: rare, keeps the stable descending sort.
            assignments: List[Tuple[Node, int]] = []
            remaining = cores
            for node in self._spread_order():
                free = free_map[node.name]
                if free <= 0:
                    continue
                take = free if free < remaining else remaining
                new = free - take
                idx = index[node.name]
                free_map[node.name] = new
                free_arr[idx] = new
                heappush(heap, (-new, idx))
                assignments.append((node, take))
                remaining -= take
                if remaining == 0:
                    break
            assert remaining == 0, "free_cores accounting broken"
            self._free_cores -= cores
            self._free_version += 1
            return SlotAllocation(assignments)
        # Pack: fill the earliest nodes with capacity.  The lazy min-
        # index heap replaces the front-to-back walk (O(nodes) per carve
        # once early nodes fill up) with the same fill order: the valid
        # top is always the first node in construction order with
        # free > 0.  Nodes are popped exactly when drained to zero;
        # release pushes them back on the 0 -> positive transition.
        heap = self._pack_heap
        all_nodes = self._all_nodes
        assignments = []
        remaining = cores
        while remaining:
            assert heap, "free_cores accounting broken"
            idx = heap[0]
            free = free_arr[idx]
            if free <= 0:
                heappop(heap)
                continue
            node = all_nodes[idx]
            take = free if free < remaining else remaining
            new = free - take
            free_arr[idx] = new
            free_map[node.name] = new
            if new == 0:
                heappop(heap)
            assignments.append((node, take))
            remaining -= take
        self._free_cores -= cores
        self._free_version += 1
        return SlotAllocation(assignments)


class YarnAgentScheduler:
    """Cores **and memory** scheduler, fed by YARN cluster metrics.

    The agent throttles unit submission so the sum of in-flight slot
    reservations never exceeds what the RM reports as available —
    exactly how the paper's scheduler uses the REST API.  Node choice
    is left to YARN's own scheduler at container-allocation time.
    """

    def __init__(self, env: Environment, resource_manager,
                 am_memory_mb: int = 512):
        self.env = env
        self.rm = resource_manager
        self.am_memory_mb = am_memory_mb
        self._reserved_mb = 0
        self._reserved_cores = 0
        self._queue: Deque[Tuple[int, int, Event]] = deque()
        self._waiting = 0
        self._report_gauges: Optional[tuple] = None

    def cluster_state(self) -> Dict[str, float]:
        """The RM metrics snapshot the scheduler works from."""
        return self.rm.cluster_metrics()

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: reservations + RM-visible capacity."""
        return {"kind": "yarn_agent_scheduler",
                "reserved_mb": self._reserved_mb,
                "reserved_cores": self._reserved_cores,
                "waiting": self._waiting,
                "cluster": {k: v for k, v in
                            sorted(self.cluster_state().items())}}

    def allocate(self, cores: int, memory_mb: int) -> Event:
        """Reserve a (cores, memory) slot; fires with a SlotAllocation."""
        metrics = self.cluster_state()
        need_mb = memory_mb + self.am_memory_mb
        if need_mb > metrics["totalMB"] or cores > metrics["totalVirtualCores"]:
            raise SimulationError(
                f"unit slot ({need_mb} MB, {cores} vcores) exceeds the "
                f"YARN cluster ({metrics['totalMB']} MB, "
                f"{metrics['totalVirtualCores']} vcores)")
        event = Event(self.env)
        self._queue.append((cores, need_mb, event))
        self._waiting += 1
        self._drain()
        return event

    def release(self, allocation: SlotAllocation) -> None:
        self._reserved_mb -= allocation.memory_mb
        self._reserved_cores -= allocation.total_cores
        self._drain()

    def _drain(self) -> None:
        metrics = self.cluster_state()
        try:
            while self._queue:
                cores, need_mb, event = self._queue[0]
                if event.triggered:
                    self._queue.popleft()
                    self._waiting -= 1
                    continue
                # Throttle against the RM-reported capacity.  Our own
                # in-flight reservations stand in for allocations that
                # have not manifested in the metrics yet
                # (submission lag).
                if (self._reserved_mb + need_mb > metrics["totalMB"]
                        or self._reserved_cores + cores
                        > metrics["totalVirtualCores"]):
                    return
                self._queue.popleft()
                self._waiting -= 1
                self._reserved_mb += need_mb
                self._reserved_cores += cores
                # Node placement is YARN's job; the slot is cluster-wide.
                event.succeed(SlotAllocation([], memory_mb=need_mb,
                                             cores=cores))
        finally:
            sanitizer = self.env.sanitizer
            if sanitizer is not None:
                sanitizer.check_yarn_agent_scheduler(self)
            self._report(metrics)

    def _report(self, metrics: Dict[str, float]) -> None:
        """Queue-depth and occupancy gauges (no-op unless installed)."""
        tel = self.env.telemetry
        if tel is None:
            return
        gauges = self._report_gauges
        if gauges is None or gauges[0] is not tel:
            gauges = (tel,
                      tel.gauge("agent.scheduler.queue_depth",
                                backend="yarn"),
                      tel.gauge("agent.executor.busy_cores",
                                backend="yarn"),
                      tel.gauge("agent.executor.occupancy",
                                backend="yarn"),
                      tel.gauge("agent.executor.reserved_mb",
                                backend="yarn"))
            self._report_gauges = gauges
        gauges[1].set(self._waiting)
        gauges[2].set(self._reserved_cores)
        total = metrics["totalVirtualCores"]
        gauges[3].set(self._reserved_cores / total if total else 0.0)
        gauges[4].set(self._reserved_mb)
