"""Local Resource Managers: allocation discovery + framework bootstrap.

The LRM is the agent component the paper extends (§III-C/III-D): the
base class parses the batch system's exported environment to find the
allocation's nodes; the YARN LRM additionally downloads, configures and
starts HDFS + YARN on those nodes (Mode I) or connects to the machine's
dedicated Hadoop environment (Mode II); the Spark LRM boots a
standalone Spark cluster.  Teardown stops the daemons and removes the
data directories, as the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import Node
from repro.core.description import AgentConfig
from repro.hdfs.cluster import HdfsCluster
from repro.rms.job import BatchJob
from repro.rms.slurm import expand_nodelist
from repro.saga.registry import Site
from repro.sim.engine import Environment, SimulationError
from repro.spark.cluster import SparkStandaloneCluster
from repro.yarn.cluster import YarnCluster
from repro.yarn.config import YarnConfig


def nodes_from_environment(site: Site, env_vars: Dict[str, str]) -> List[Node]:
    """Resolve the allocation's nodes from RMS environment variables.

    Understands the three dialects our batch systems export:
    ``SLURM_NODELIST`` (compressed hostlist), ``PBS_NODEFILE`` (one line
    per core) and ``PE_HOSTFILE`` (one line per node).
    """
    machine = site.machine
    if "SLURM_NODELIST" in env_vars:
        names = expand_nodelist(env_vars["SLURM_NODELIST"])
    elif "PBS_NODEFILE" in env_vars:
        seen: List[str] = []
        for line in env_vars["PBS_NODEFILE"].splitlines():
            name = line.strip()
            if name and name not in seen:
                seen.append(name)
        names = seen
    elif "PE_HOSTFILE" in env_vars:
        names = [line.split()[0]
                 for line in env_vars["PE_HOSTFILE"].splitlines() if line]
    else:
        raise SimulationError(
            "no recognizable RMS environment (need SLURM_NODELIST, "
            "PBS_NODEFILE or PE_HOSTFILE)")
    return [machine.node_by_name(n) for n in names]


class LocalResourceManager:
    """Base LRM: node discovery only (the 'fork' configuration)."""

    name = "fork"

    def __init__(self, env: Environment, site: Site, config: AgentConfig):
        self.env = env
        self.site = site
        self.config = config
        self.nodes: List[Node] = []
        #: seconds spent in mode-specific bootstrap (benchmark metric)
        self.setup_seconds: float = 0.0

    @property
    def cores_per_node(self) -> int:
        return self.nodes[0].num_cores if self.nodes else 0

    @property
    def total_cores(self) -> int:
        return sum(n.num_cores for n in self.nodes)

    def initialize(self, batch_job: BatchJob):
        """Discover the allocation; mode-specific bootstrap.  Generator."""
        self.nodes = nodes_from_environment(self.site, batch_job.env_vars)
        yield from self._bootstrap()

    def _bootstrap(self):
        if False:  # pragma: no cover - base LRM has no extra bootstrap
            yield None
        return

    def teardown(self) -> None:
        """Stop anything the bootstrap started."""


class YarnLrm(LocalResourceManager):
    """Mode I: spawn HDFS + YARN on the allocation (Hadoop on HPC).

    Bootstrap choreography, mirroring §III-C: download the Hadoop
    distribution, render the configuration files (core-site.xml,
    hdfs-site.xml, yarn-site.xml, mapred-site.xml, masters/slaves),
    start the HDFS daemons, start the YARN daemons; the agent node
    hosts NameNode + ResourceManager.
    """

    name = "yarn"

    def __init__(self, env: Environment, site: Site, config: AgentConfig,
                 yarn_config: Optional[YarnConfig] = None):
        super().__init__(env, site, config)
        base = yarn_config or config.yarn_config or YarnConfig()
        # JVM-bound costs scale with the machine's CPU speed.
        self.yarn_config = base.scaled(site.machine.spec.cpu_speed)
        self.hdfs: Optional[HdfsCluster] = None
        self.yarn: Optional[YarnCluster] = None
        self.rendered_configs: Dict[str, str] = {}

    def _bootstrap(self):
        t0 = self.env.now
        machine = self.site.machine
        # 1. download the Hadoop distribution
        yield self.env.timeout(
            machine.download_seconds(self.config.hadoop_dist_bytes))
        # 2. render configuration files
        self.rendered_configs = render_hadoop_configs(
            [n.name for n in self.nodes], self.yarn_config)
        yield self.env.timeout(self.config.configure_seconds)
        # 3. start HDFS (NameNode on the agent node, DataNodes everywhere).
        # The replication monitor only runs when fault injection is armed
        # on this environment: fault-free bootstraps keep the seed's
        # event stream (the monitor is silent but its wakeups are not).
        self.hdfs = HdfsCluster(
            self.env, machine, self.nodes,
            replication=self.config.hdfs_replication,
            rng=None, auto_heal=self.env.faults is not None)
        yield self.env.process(self.hdfs.start())
        # 4. start YARN (RM on the agent node, NMs everywhere)
        self.yarn = YarnCluster(self.env, machine, self.nodes,
                                config=self.yarn_config)
        yield self.env.process(self.yarn.start())
        self.setup_seconds = self.env.now - t0

    def teardown(self) -> None:
        """Stop daemons and remove the data directories (per §III-C)."""
        if self.yarn is not None:
            self.yarn.stop()
        if self.hdfs is not None:
            for path in list(self.hdfs.namenode.files):
                self.hdfs.namenode.delete_file(path)
            self.hdfs.stop()


class YarnConnectLrm(LocalResourceManager):
    """Mode II: connect to the machine's dedicated YARN cluster.

    No daemons to start — the LRM "solely collects the cluster resource
    information" (§III-C); the cost is a connect + metadata fetch.
    """

    name = "yarn-connect"

    def __init__(self, env: Environment, site: Site, config: AgentConfig):
        super().__init__(env, site, config)
        self.yarn: Optional[YarnCluster] = None

    def _bootstrap(self):
        if not self.site.machine.spec.has_dedicated_hadoop:
            raise SimulationError(
                f"{self.site.hostname} has no dedicated Hadoop "
                "environment; Mode II unavailable (use Mode I)")
        t0 = self.env.now
        yarn = getattr(self.site, "dedicated_yarn", None)
        if yarn is None:
            raise SimulationError(
                f"{self.site.hostname}: dedicated YARN cluster not "
                "provisioned (Site.provision_dedicated_hadoop())")
        yield self.env.timeout(self.config.connect_seconds)
        self.yarn = yarn
        self.setup_seconds = self.env.now - t0

    def teardown(self) -> None:
        """Nothing to stop: the dedicated cluster outlives the pilot."""


class SparkLrm(LocalResourceManager):
    """Spark standalone bootstrap (§III-D).

    Downloads dependencies (Java/Scala/Spark binaries), renders
    spark-env.sh / masters / slaves, starts Master + Workers; teardown
    runs the equivalent of ``sbin/stop-all.sh``.
    """

    name = "spark"

    def __init__(self, env: Environment, site: Site, config: AgentConfig):
        super().__init__(env, site, config)
        self.spark: Optional[SparkStandaloneCluster] = None

    def _bootstrap(self):
        t0 = self.env.now
        machine = self.site.machine
        yield self.env.timeout(
            machine.download_seconds(self.config.spark_dist_bytes))
        yield self.env.timeout(self.config.configure_seconds)
        self.spark = SparkStandaloneCluster(self.env, machine, self.nodes)
        yield self.env.process(self.spark.start())
        self.setup_seconds = self.env.now - t0

    def teardown(self) -> None:
        if self.spark is not None:
            self.spark.stop()


def render_hadoop_configs(node_names: List[str],
                          yarn_config: YarnConfig) -> Dict[str, str]:
    """Render the Hadoop config files the Mode I bootstrap writes.

    Returns file name -> XML/text content; consumed by our simulators
    only through their parameters, but kept textually faithful so tests
    (and humans) can inspect what a real deployment would have used.
    """
    master = node_names[0]

    def xml(properties: Dict[str, str]) -> str:
        body = "\n".join(
            f"  <property>\n    <name>{k}</name>\n"
            f"    <value>{v}</value>\n  </property>"
            for k, v in properties.items())
        return f"<configuration>\n{body}\n</configuration>\n"

    return {
        "core-site.xml": xml({
            "fs.defaultFS": f"hdfs://{master}:8020",
        }),
        "hdfs-site.xml": xml({
            "dfs.namenode.rpc-address": f"{master}:8020",
            "dfs.blocksize": str(128 * 1024 ** 2),
        }),
        "yarn-site.xml": xml({
            "yarn.resourcemanager.hostname": master,
            "yarn.nodemanager.resource.memory-mb": "per-node",
            "yarn.scheduler.minimum-allocation-mb":
                str(yarn_config.min_allocation_mb),
        }),
        "mapred-site.xml": xml({
            "mapreduce.framework.name": "yarn",
        }),
        "masters": master + "\n",
        "slaves": "\n".join(node_names) + "\n",
    }


LRM_TYPES = {
    "fork": LocalResourceManager,
    "yarn": YarnLrm,
    "yarn-connect": YarnConnectLrm,
    "spark": SparkLrm,
}


def make_lrm(kind: str, env: Environment, site: Site,
             config: AgentConfig) -> LocalResourceManager:
    try:
        cls = LRM_TYPES[kind]
    except KeyError:
        raise ValueError(f"unknown LRM kind {kind!r}") from None
    return cls(env, site, config)
