"""The RADICAL-Pilot YARN Application Master (paper Figure 4).

Every Compute-Unit submitted to YARN becomes a YARN application: the
Task Spawner runs ``yarn jar RadicalYarnApp`` (client JVM), YARN
allocates the AM container, the AM registers and requests one task
container sized from the Compute-Unit Description, and a wrapper
script inside that container sets up the RP environment, stages files
and runs the executable.  This two-step allocation is the dominant
source of the Compute-Unit startup overhead in Figure 5's inset.

The paper names AM/container re-use as the planned optimization; we
implement it (:class:`ReusableAppMaster`) and quantify the saving in
ablation A3.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Store
from repro.yarn.cluster import YarnCluster
from repro.yarn.records import AppSpec, ApplicationState, YarnResource


class UnitOutcome:
    """What the YARN execution path reports back to the Task Spawner."""

    def __init__(self, ok: bool, diagnostics: str = ""):
        self.ok = ok
        self.diagnostics = diagnostics


def run_unit_as_yarn_app(env: Environment, yarn: YarnCluster,
                         unit_uid: str, cores: int, memory_mb: int,
                         container_payload: Callable[..., object]):
    """One-shot path: one YARN application per Compute-Unit.  Generator.

    Returns a :class:`UnitOutcome`.

    When the cluster's :class:`~repro.yarn.config.YarnConfig` sets
    ``am_max_attempts`` > 1 the AM retries a failed/killed task
    container with capped exponential backoff (YARN's re-attempt
    semantics), requesting a fresh container each time — the recovery
    path that absorbs container kills and node loss without failing
    the Compute-Unit.  The default of 1 keeps the seed's
    fail-immediately behaviour.
    """
    config = yarn.config
    max_attempts = max(1, config.am_max_attempts)

    def rp_app_master(ctx):
        attempt = 0
        container = None
        while attempt < max_attempts:
            attempt += 1
            if attempt > 1:
                delay = min(
                    config.am_retry_backoff
                    * config.am_retry_backoff_factor ** (attempt - 2),
                    config.am_retry_backoff_cap)
                tel = env.telemetry
                if tel is not None:
                    tel.emit("yarn", "container_reattempt", unit=unit_uid,
                             attempt=attempt, delay=delay,
                             diagnostics=container.diagnostics)
                    tel.counter("yarn.am.reattempts").inc()
                yield env.timeout(delay)
            ctx.request_containers(1, YarnResource(memory_mb, cores))
            containers = yield from ctx.wait_for_containers(1)
            done = ctx.start_container(containers[0], container_payload)
            container = yield done
            if container.state.value == "completed":
                ctx.finish("SUCCEEDED")
                return
        ctx.finish("FAILED", diagnostics=container.diagnostics)

    client = yarn.client()
    app = yield from client.submit(AppSpec(
        name=f"RadicalYarnApp-{unit_uid}",
        am_resource=YarnResource(512, 1),
        am_program=rp_app_master, app_type="RADICAL-PILOT"))
    report = yield from client.wait_for_completion(app)
    return UnitOutcome(
        ok=report.state is ApplicationState.FINISHED,
        diagnostics=report.tracking_diagnostics)


class ReusableAppMaster:
    """AM re-use: one long-lived YARN application serving many units.

    The agent submits a single RadicalYarnApp whose AM loops over a
    work queue; each unit only pays the container request + launch —
    the client JVM and AM allocation are amortized across units.
    """

    def __init__(self, env: Environment, yarn: YarnCluster):
        self.env = env
        self.yarn = yarn
        self._queue: list = []
        self._shutdown = False
        self._app = None
        self._started = Event(env)

    def start(self):
        """Submit the persistent AM application.  Generator."""
        pool = self

        def persistent_am(ctx):
            # Allocator loop: every AM heartbeat, turn queued work into
            # container requests and start payloads in whatever YARN
            # granted.  Units overlap freely — no per-unit round-trips
            # are serialized, which is the whole point of AM re-use.
            pending: list = []          # (payload, done) awaiting grants
            while True:
                while pool._queue:
                    cores, memory_mb, payload, done = pool._queue.pop(0)
                    ctx.request_containers(
                        1, YarnResource(memory_mb, cores))
                    pending.append((payload, done))
                if pool._shutdown and not pending:
                    break
                granted, _ = yield from ctx.allocate()
                for container in granted:
                    if not pending:
                        ctx.release_container(container)
                        continue
                    payload, done = pending.pop(0)
                    finished = ctx.start_container(container, payload)

                    def _complete(event, _done=done):
                        c = event.value
                        _done.succeed(UnitOutcome(
                            ok=c.state.value == "completed",
                            diagnostics=c.diagnostics))

                    finished.callbacks.append(_complete)
            ctx.finish("SUCCEEDED")

        client = self.yarn.client()
        self._app = yield from client.submit(AppSpec(
            name="RadicalYarnApp-pool", am_resource=YarnResource(512, 1),
            am_program=persistent_am, app_type="RADICAL-PILOT"))
        self._started.succeed()

    def run_unit(self, cores: int, memory_mb: int,
                 container_payload: Callable[..., object]):
        """Run one unit through the pooled AM.  Generator -> UnitOutcome.

        Blocks until the pool application has been submitted (units can
        arrive while the persistent AM is still launching).
        """
        if not self._started.processed:
            yield self._started
        done = Event(self.env)
        self._queue.append((cores, memory_mb, container_payload, done))
        outcome = yield done
        return outcome

    def shutdown(self):
        """Drain and stop the persistent AM.  Generator."""
        self._shutdown = True
        if not self._started.processed:
            yield self._started
        if self._app is not None:
            yield self._app.finished
