"""The RADICAL-Pilot-Agent and its pluggable components.

Component map (paper Figure 3, right side):

* :mod:`~repro.core.agent.lrm` — Local Resource Managers.  Parse the
  batch system's environment to discover the allocation; for the
  paper's extensions, bootstrap (Mode I) or connect to (Mode II)
  Hadoop/Spark clusters.
* :mod:`~repro.core.agent.scheduler` — agent schedulers: continuous
  (cores) for HPC, cores+memory (fed by the YARN RM metrics API) for
  YARN.
* :mod:`~repro.core.agent.executor` — Task Spawner + Launch Methods
  (fork/mpiexec/aprun vs. ``yarn`` CLI vs. ``spark-submit``), realized
  as execution backends.
* :mod:`~repro.core.agent.app_master` — the RADICAL-Pilot YARN
  Application Master (paper Figure 4): one YARN application per
  Compute-Unit, with optional AM re-use.
* :mod:`~repro.core.agent.agent` — the agent main loop gluing it all
  together.
"""

from repro.core.agent.agent import Agent

__all__ = ["Agent"]
