"""The RADICAL-Pilot-Agent main loop.

Runs as the batch job's payload on the allocation (paper Figure 3):

1. bootstrap (virtualenv, module loads) and MongoDB connect;
2. LRM initialization — allocation discovery plus, for the paper's
   extensions, the Mode I Hadoop/Spark bootstrap or Mode II connect;
3. pilot goes ACTIVE (with agent metrics recorded for the benchmarks);
4. main loop: poll the shared DB for units assigned to this pilot,
   drive each through the agent pipeline
   (staging-input -> scheduling -> executing -> staging-output -> done)
   with the backend's scheduler and Task Spawner;
5. on cancel/walltime: interrupt in-flight units, tear the LRM down
   (stopping any Hadoop/Spark daemons), finalize the pilot.

All state changes are appended to the unit/pilot documents in the
shared DB; the client-side managers replay them onto the handles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.sanitizer import InvariantViolation
from repro.core.agent.executor import ExecutionError, make_backend
from repro.core.agent.lrm import make_lrm
from repro.core.description import AgentConfig, ComputePilotDescription
from repro.core.states import PilotState, UnitState
from repro.rms.job import BatchJob
from repro.saga.registry import Site
from repro.sim.engine import Environment, Interrupt


def advance_doc(collection, uid: str, state, now: float, **extra) -> None:
    """Append a state to a document's history (single-writer protocol)."""
    doc = collection.find_one({"_id": uid})
    if doc is None:
        raise KeyError(f"no document {uid}")
    changes = dict(extra)
    changes["state"] = state.value
    changes["history"] = doc["history"] + [(now, state.value)]
    collection.update_one({"_id": uid}, changes)


class Agent:
    """One agent instance, bound to a pilot and a site."""

    def __init__(self, session, pilot_uid: str, site: Site,
                 description: ComputePilotDescription):
        self.session = session
        self.env: Environment = session.env
        self.pilot_uid = pilot_uid
        self.site = site
        self.description = description
        self.config: AgentConfig = description.agent_config
        self.lrm = None
        self.backend = None
        self._unit_procs: List = []
        self._claimed: set = set()
        self._pilot_span = None

    # ------------------------------------------------------------- payload
    def payload(self):
        """The callable handed to the batch system as job payload."""

        def _run(env, batch_job):
            yield from self._run(batch_job)

        return _run

    def _pilots(self):
        return self.session.db.collection("pilots")

    def _units(self):
        return self.session.db.collection("units")

    def _advance_pilot(self, state: PilotState, **extra) -> None:
        advance_doc(self._pilots(), self.pilot_uid, state, self.env.now,
                    **extra)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("pilot", "state", uid=self.pilot_uid,
                     state=state.value,
                     agent_info=extra.get("agent_info"))

    def _advance_unit(self, uid: str, state: UnitState, **extra) -> None:
        advance_doc(self._units(), uid, state, self.env.now, **extra)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("unit", "state", uid=uid, pilot=self.pilot_uid,
                     state=state.value)

    # ----------------------------------------------------------- main loop
    def _run(self, batch_job: BatchJob):
        final_state = PilotState.DONE
        tel = self.env.telemetry
        boot_span = None
        if tel is not None:
            self._pilot_span = tel.tracer.begin(
                self.pilot_uid, cat="pilot",
                track=f"pilot {self.pilot_uid}", lrm=self.config.lrm,
                nodes=self.description.nodes)
            boot_span = tel.tracer.begin(
                "agent.bootstrap", cat="agent", parent=self._pilot_span)
        try:
            self._advance_pilot(PilotState.PENDING_ACTIVE)
            # 1. bootstrap + DB connect
            jitter = self.session.rng.stream(
                f"agent-{self.pilot_uid}")
            yield self.env.timeout(jitter.lognormal_around(
                self.config.bootstrap_seconds, 0.03))
            yield self.env.timeout(self.config.db_connect_seconds)
            yield self.session.db.roundtrip()
            # 2. LRM init (Mode I/II bootstrap happens here)
            self.lrm = make_lrm(self.config.lrm, self.env, self.site,
                                self.config)
            yield from self.lrm.initialize(batch_job)
            self.backend = make_backend(self.lrm, self.env, self.config)
            if tel is not None:
                tel.tracer.end(boot_span, lrm=self.lrm.name,
                               lrm_setup_seconds=self.lrm.setup_seconds)
            # 3. go ACTIVE
            self._advance_pilot(
                PilotState.ACTIVE,
                agent_info={
                    "lrm": self.lrm.name,
                    "lrm_setup_seconds": self.lrm.setup_seconds,
                    "nodes": [n.name for n in self.lrm.nodes],
                    "cores": self.lrm.total_cores,
                })
            # 4. unit intake loop (each pass doubles as the heartbeat
            # the client-side monitor watches, paper Figure 3)
            while True:
                if self._cancel_requested():
                    final_state = PilotState.CANCELED
                    break
                for name in self.backend.reap_dead_nodes():
                    if tel is not None:
                        tel.emit("agent", "node_lost",
                                 pilot=self.pilot_uid, node=name)
                        tel.counter("agent.nodes_lost").inc()
                self._claim_new_units()
                self._pilots().update_one({"_id": self.pilot_uid},
                                          {"heartbeat": self.env.now})
                if tel is not None:
                    in_flight = sum(1 for p in self._unit_procs
                                    if p.is_alive)
                    tel.emit("agent", "heartbeat", pilot=self.pilot_uid,
                             claimed=len(self._claimed),
                             in_flight=in_flight)
                    tel.gauge("agent.inflight_units",
                              pilot=self.pilot_uid).set(in_flight)
                yield self.env.timeout(self.config.db_poll_interval)
        except Interrupt:
            # walltime (RMS) or hard cancel
            final_state = PilotState.DONE
        except GeneratorExit:
            # the simulation is being torn down (process GC'd at the
            # end of a run): no simulated teardown can happen anymore
            raise
        except Exception as exc:
            # bootstrap/LRM failure: the pilot fails, the batch job
            # exits "cleanly" with the error recorded in the document.
            final_state = PilotState.FAILED
            self._pilots().update_one({"_id": self.pilot_uid},
                                      {"agent_error": repr(exc)})
        yield from self._teardown(final_state)

    def _cancel_requested(self) -> bool:
        doc = self._pilots().find_one({"_id": self.pilot_uid})
        return bool(doc and doc.get("cancel_requested"))

    def _claim_new_units(self) -> None:
        for doc in self._units().find({
                "pilot": self.pilot_uid,
                "state": UnitState.UMGR_SCHEDULING.value}):
            if doc["_id"] in self._claimed:
                continue
            self._claimed.add(doc["_id"])
            self._unit_procs.append(self.env.process(
                self._unit_pipeline(doc), name=f"unit-{doc['_id']}"))

    # -------------------------------------------------------- unit pipeline
    def _unit_pipeline(self, doc: Dict):
        uid = doc["_id"]
        desc = doc["description"]
        allocation = None
        tel = self.env.telemetry
        unit_span = None
        phase_box = [None]

        def _phase(name: Optional[str]) -> None:
            """Close the current phase span and open the next one."""
            if tel is None:
                return
            if phase_box[0] is not None:
                tel.tracer.end(phase_box[0])
            phase_box[0] = None if name is None else tel.tracer.begin(
                name, cat="unit.phase", parent=unit_span, track=uid)

        if tel is not None:
            unit_span = tel.tracer.begin(
                uid, cat="unit", parent=self._pilot_span, track=uid,
                pilot=self.pilot_uid, cores=desc.cores)

        started = [False]

        def _on_start() -> None:
            # Idempotent: a YARN container re-attempt fires this again;
            # the state machine forbids EXECUTING -> EXECUTING, so only
            # the first start advances.  Armed transient faults are
            # consumed once per attempt, so ``times=2`` poisons two
            # consecutive container attempts.
            if not started[0]:
                started[0] = True
                self._advance_unit(uid, UnitState.EXECUTING)
                _phase("execute")
            elif tel is not None:
                tel.emit("unit", "reattempt", uid=uid,
                         pilot=self.pilot_uid)
            faults = self.env.faults
            if faults is not None:
                err = faults.take_unit_error(uid)
                if err is not None:
                    raise ExecutionError(err)

        try:
            # stage-in
            self._advance_unit(uid, UnitState.AGENT_STAGING_INPUT)
            _phase("stage_in")
            for path, _nbytes in desc.input_staging:
                if not self.site.scratch.exists(path):
                    raise ExecutionError(f"stage-in missing: {path}")
                yield self.site.scratch.read(path)
            # agent scheduling
            self._advance_unit(uid, UnitState.AGENT_SCHEDULING)
            _phase("schedule")
            t_request = self.env.now
            allocation = yield self.backend.schedule(desc)
            if tel is not None:
                tel.histogram("agent.allocation_latency",
                              backend=self.backend.name).observe(
                    self.env.now - t_request)
            # executing — the EXECUTING transition fires when the task
            # process actually starts (inside the YARN container for
            # the YARN backend), so unit.startup_time measures the full
            # submission-to-execution latency of Figure 5's inset.
            result = yield from self.backend.execute(
                desc, allocation, on_start=_on_start, span=unit_span)
            self.backend.release(allocation)
            allocation = None
            # stage-out
            self._advance_unit(uid, UnitState.AGENT_STAGING_OUTPUT)
            _phase("stage_out")
            for path, nbytes in desc.output_staging:
                if self.site.scratch.exists(path):
                    self.site.scratch.delete(path)
                yield self.site.scratch.create(path, nbytes)
            self._advance_unit(uid, UnitState.DONE,
                               result=result, exit_code=0)
        except Interrupt:
            self._advance_unit(uid, UnitState.CANCELED)
        except ExecutionError as exc:
            self._advance_unit(uid, UnitState.FAILED,
                               stderr=str(exc), exit_code=1)
        except InvariantViolation:
            # A sanitizer finding is a bug in the *simulator*, not the
            # payload: recording it as a unit failure would bury the
            # invariant violation in a FAILED state.  Let it crash.
            raise
        except Exception as exc:  # payload bugs must not kill the agent
            self._advance_unit(uid, UnitState.FAILED,
                               stderr=repr(exc), exit_code=1)
        finally:
            if allocation is not None:
                self.backend.release(allocation)
            _phase(None)
            if tel is not None:
                doc_now = self._units().find_one({"_id": uid})
                tel.tracer.end(unit_span,
                               final_state=doc_now["state"] if doc_now
                               else None)

    # -------------------------------------------------------------- teardown
    def _teardown(self, final_state: PilotState):
        for proc in self._unit_procs:
            if proc.is_alive:
                proc.interrupt(cause="pilot teardown")
        if self.backend is not None:
            yield from self.backend.teardown()
        if self.lrm is not None:
            self.lrm.teardown()
        doc = self._pilots().find_one({"_id": self.pilot_uid})
        if doc and not self._is_final(doc["state"]):
            self._advance_pilot(final_state)
        tel = self.env.telemetry
        if tel is not None and self._pilot_span is not None:
            tel.tracer.end(self._pilot_span, final_state=final_state.value)

    @staticmethod
    def _is_final(state_value: str) -> bool:
        return PilotState(state_value).is_final
