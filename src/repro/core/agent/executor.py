"""Task Spawner + Launch Methods, realized as execution backends.

A backend owns the full EXECUTING phase of a unit: launch-method
overhead, the unit's bulk I/O (charged to *that backend's* storage —
Lustre for plain pilots, node-local disk for YARN/Spark, which is the
mechanism behind Figure 6), the modeled compute time, memory
reservation, and the eager execution of the unit's real Python payload.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.storage import MB
from repro.core.agent.app_master import ReusableAppMaster, run_unit_as_yarn_app
from repro.core.agent.scheduler import (
    ContinuousScheduler,
    SlotAllocation,
    YarnAgentScheduler,
)
from repro.core.description import AgentConfig, ComputeUnitDescription
from repro.sim.engine import Environment, SimulationError


#: Launch-method fixed overheads (seconds): process spawn + env setup.
LAUNCH_OVERHEAD = {
    "fork": 0.2,
    "mpiexec": 0.6,
    "aprun": 0.5,
    "docker": 1.5,          # container create/start
    "spark-submit": 3.0,
}

#: Container image size for the docker launch method (paper §V:
#: "container-based virtualization (based on Docker) is increasingly
#: used ... Support for these emerging infrastructures is being
#: added").  Pulled once per node, then cached.
DOCKER_IMAGE_BYTES = 400 * 1024 ** 2


class ExecutionError(RuntimeError):
    """A unit's execution failed on the backend."""


class ServiceContext:
    """What a long-lived *service* unit sees of its placement.

    Handed to :attr:`ComputeUnitDescription.service` callables once the
    backend has paid the normal launch path; the service generator then
    owns the unit's EXECUTING phase (e.g. a raptor master or worker
    parked on its node for the run's lifetime).
    """

    __slots__ = ("env", "node", "cores")

    def __init__(self, env: Environment, node, cores: int):
        self.env = env
        self.node = node
        self.cores = cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceContext {self.node.name} x{self.cores}>"


def _run_payload(unit_desc: ComputeUnitDescription):
    """Execute the unit's real Python function (eagerly)."""
    if unit_desc.function is None:
        return None
    return unit_desc.function(*unit_desc.args, **unit_desc.kwargs)


def _compute_or_die(env: Environment, node, seconds: float):
    """Race the compute phase against the node's failure event.

    Generator: completes normally when the timeout wins, raises
    :class:`ExecutionError` if the node dies first (fault injection
    kills in-flight work, not just future placements).
    """
    if not node.alive:
        raise ExecutionError(f"node {node.name} is down")
    compute = env.timeout(seconds)
    yield env.any_of([compute, node.failure_event()])
    if not node.alive:
        raise ExecutionError(f"node {node.name} died during execution")


class ForkBackend:
    """Plain HPC execution: cores from the continuous scheduler, bulk
    I/O against the machine's **shared parallel filesystem** (Lustre).
    """

    name = "fork"

    def __init__(self, env: Environment, lrm, config: AgentConfig):
        self.env = env
        self.lrm = lrm
        self.config = config
        self.scheduler = ContinuousScheduler(
            env, lrm.nodes, policy=config.scheduler_policy)
        self.shared_fs = lrm.site.machine.shared_fs
        self._docker_image_cache: set = set()   # node names holding the image

    def schedule(self, unit_desc: ComputeUnitDescription):
        """Event yielding a SlotAllocation for the unit."""
        return self.scheduler.allocate(unit_desc.cores)

    def release(self, allocation: SlotAllocation) -> None:
        self.scheduler.release(allocation)

    def execute(self, unit_desc: ComputeUnitDescription,
                allocation: SlotAllocation, on_start=None, span=None):
        """Run a unit.  Generator returning the payload's result.

        ``on_start`` fires when the task process actually begins (after
        spawner/launch-method overhead) — the Compute-Unit startup
        marker of Figure 5's inset.  ``span`` is the unit's trace span;
        the task gets a child span covering launch through completion.
        """
        method = unit_desc.launch_method or (
            "mpiexec" if len(allocation.assignments) > 1 else "fork")
        if method not in LAUNCH_OVERHEAD:
            raise ExecutionError(f"unknown launch method {method!r}")
        tel = self.env.telemetry
        task_span = None
        if tel is not None:
            task_span = tel.tracer.begin(
                "task", cat="container", parent=span, method=method,
                node=allocation.primary_node.name)
        try:
            yield self.env.timeout(LAUNCH_OVERHEAD[method]
                                   + self.config.spawn_overhead_seconds)
            if method == "docker":
                # containers ship their environment inside the image:
                # pull once per node (cached), skip the Lustre
                # environment load
                image_node = allocation.primary_node
                if image_node.name not in self._docker_image_cache:
                    yield self.env.timeout(
                        self.lrm.site.machine.download_seconds(
                            DOCKER_IMAGE_BYTES))
                    yield image_node.local_disk.write(DOCKER_IMAGE_BYTES)
                    self._docker_image_cache.add(image_node.name)
            elif self.config.task_environment_bytes > 0:
                # interpreter + imports come off the shared filesystem —
                # heavily contended when a task wave starts together
                yield self.shared_fs.read(
                    self.config.task_environment_bytes)
            if on_start is not None:
                on_start()

            node = allocation.primary_node
            if not node.alive:
                raise ExecutionError(f"node {node.name} is down")
            memory = (unit_desc.memory_mb
                      or self.config.default_unit_memory_mb) * MB
            memory = min(memory, node.memory_bytes)
            yield node.memory.get(memory)
            try:
                if unit_desc.service is not None:
                    result = yield from unit_desc.service(ServiceContext(
                        self.env, node, allocation.total_cores))
                    return result
                if unit_desc.input_bytes > 0:
                    if unit_desc.input_tier == "memory":
                        yield node.memory_fs.read(unit_desc.input_bytes)
                    else:
                        yield self.shared_fs.read(unit_desc.input_bytes)
                if unit_desc.cpu_seconds > 0:
                    speedup = allocation.total_cores
                    yield from _compute_or_die(
                        self.env, node, node.compute_seconds(
                            unit_desc.cpu_seconds / speedup))
                result = _run_payload(unit_desc)
                if unit_desc.output_bytes > 0:
                    yield self.shared_fs.write(unit_desc.output_bytes)
                    self.shared_fs.delete(unit_desc.output_bytes)
            finally:
                yield node.memory.put(memory)
        finally:
            if tel is not None:
                tel.tracer.end(task_span)
        return result

    def reap_dead_nodes(self):
        """Retire dead nodes from the core ledger; returns their names."""
        dead = [n for n in self.scheduler.nodes if not n.alive]
        for node in dead:
            self.scheduler.deactivate_node(node)
        return [n.name for n in dead]

    def teardown(self):
        if False:  # pragma: no cover
            yield None
        return


class YarnBackend:
    """YARN execution: units become YARN applications; bulk I/O against
    the container node's **local disk** (§IV-B: "for RADICAL-Pilot-YARN
    the local file system is used").
    """

    name = "yarn"

    def __init__(self, env: Environment, lrm, config: AgentConfig):
        if lrm.yarn is None:
            raise SimulationError("YARN LRM not initialized")
        self.env = env
        self.lrm = lrm
        self.config = config
        self.yarn = lrm.yarn
        self.machine = lrm.site.machine
        self.scheduler = YarnAgentScheduler(
            env, self.yarn.resource_manager)
        self._pool: Optional[ReusableAppMaster] = None
        if config.reuse_application_master:
            self._pool = ReusableAppMaster(env, self.yarn)
            env.process(self._pool.start(), name="rp-am-pool")

    def schedule(self, unit_desc: ComputeUnitDescription):
        memory_mb = (unit_desc.memory_mb
                     or self.config.default_unit_memory_mb)
        return self.scheduler.allocate(unit_desc.cores, memory_mb)

    def release(self, allocation: SlotAllocation) -> None:
        self.scheduler.release(allocation)

    def execute(self, unit_desc: ComputeUnitDescription,
                allocation: SlotAllocation, on_start=None, span=None):
        """Run a unit via the RP Application Master.  Generator.

        ``on_start`` fires inside the YARN container once the wrapper
        script hands control to the unit executable — so the startup
        metric includes the client JVM, the AM allocation and the task
        container launch (the two-phase overhead of Figure 5's inset).
        ``span`` is the unit's trace span; the YARN container becomes a
        child span on the same track.
        """
        memory_mb = (unit_desc.memory_mb
                     or self.config.default_unit_memory_mb)
        box = {}

        def container_payload(env, container):
            # The wrapper script: set up the RP environment, stage, run.
            tel = env.telemetry
            cspan = None
            if tel is not None:
                cspan = tel.tracer.begin(
                    "container", cat="container", parent=span,
                    container_id=container.container_id,
                    node=container.node_name)
            try:
                yield env.timeout(self.config.spawn_overhead_seconds)
                node = self.machine.node_by_name(container.node_name)
                if self.config.task_environment_bytes > 0:
                    # localized environment: read from the node's disk
                    yield node.local_disk.read(
                        self.config.task_environment_bytes)
                if on_start is not None:
                    on_start()
                if unit_desc.service is not None:
                    box["result"] = yield from unit_desc.service(
                        ServiceContext(env, node, unit_desc.cores))
                    return
                if unit_desc.input_bytes > 0:
                    tier = (node.memory_fs
                            if unit_desc.input_tier == "memory"
                            else node.local_disk)
                    yield tier.read(unit_desc.input_bytes)
                if unit_desc.cpu_seconds > 0:
                    yield env.timeout(node.compute_seconds(
                        unit_desc.cpu_seconds / unit_desc.cores))
                box["result"] = _run_payload(unit_desc)
                if unit_desc.output_bytes > 0:
                    yield node.local_disk.write(unit_desc.output_bytes)
                    node.local_disk.delete(unit_desc.output_bytes)
            finally:
                if tel is not None:
                    tel.tracer.end(cspan)

        if self._pool is not None:
            outcome = yield from self._pool.run_unit(
                unit_desc.cores, memory_mb, container_payload)
        else:
            outcome = yield from run_unit_as_yarn_app(
                self.env, self.yarn, unit_desc.name or "cu",
                unit_desc.cores, memory_mb, container_payload)
        if not outcome.ok:
            raise ExecutionError(
                f"YARN execution failed: {outcome.diagnostics}")
        return box.get("result")

    def reap_dead_nodes(self):
        """YARN owns its own liveness: the RM expires lost NMs."""
        return []

    def teardown(self):
        if self._pool is not None:
            yield from self._pool.shutdown()


class SparkBackend:
    """Spark execution: units run in executor task slots via
    ``spark-submit``; bulk I/O against the executor node's local disk.
    """

    name = "spark"

    def __init__(self, env: Environment, lrm, config: AgentConfig):
        if lrm.spark is None:
            raise SimulationError("Spark LRM not initialized")
        self.env = env
        self.lrm = lrm
        self.config = config
        self.spark = lrm.spark
        self.scheduler = ContinuousScheduler(
            env, lrm.nodes, policy=config.scheduler_policy)

    def schedule(self, unit_desc: ComputeUnitDescription):
        return self.scheduler.allocate(unit_desc.cores)

    def release(self, allocation: SlotAllocation) -> None:
        self.scheduler.release(allocation)

    def execute(self, unit_desc: ComputeUnitDescription,
                allocation: SlotAllocation, on_start=None, span=None):
        tel = self.env.telemetry
        task_span = None
        if tel is not None:
            task_span = tel.tracer.begin(
                "task", cat="container", parent=span,
                method="spark-submit", node=allocation.primary_node.name)
        try:
            yield self.env.timeout(LAUNCH_OVERHEAD["spark-submit"]
                                   + self.config.spawn_overhead_seconds)
            node = allocation.primary_node
            if not node.alive:
                raise ExecutionError(f"node {node.name} is down")
            if self.config.task_environment_bytes > 0:
                yield node.local_disk.read(
                    self.config.task_environment_bytes)
            if on_start is not None:
                on_start()
            if unit_desc.service is not None:
                result = yield from unit_desc.service(ServiceContext(
                    self.env, node, allocation.total_cores))
                return result
            if unit_desc.input_bytes > 0:
                tier = (node.memory_fs if unit_desc.input_tier == "memory"
                        else node.local_disk)
                yield tier.read(unit_desc.input_bytes)
            if unit_desc.cpu_seconds > 0:
                yield from _compute_or_die(
                    self.env, node, node.compute_seconds(
                        unit_desc.cpu_seconds / allocation.total_cores))
            result = _run_payload(unit_desc)
            if unit_desc.output_bytes > 0:
                yield node.local_disk.write(unit_desc.output_bytes)
                node.local_disk.delete(unit_desc.output_bytes)
        finally:
            if tel is not None:
                tel.tracer.end(task_span)
        return result

    def reap_dead_nodes(self):
        """Retire dead nodes from the core ledger; returns their names."""
        dead = [n for n in self.scheduler.nodes if not n.alive]
        for node in dead:
            self.scheduler.deactivate_node(node)
        return [n.name for n in dead]

    def teardown(self):
        if False:  # pragma: no cover
            yield None
        return


def make_backend(lrm, env: Environment, config: AgentConfig):
    """Pick the execution backend matching the LRM flavor."""
    if lrm.name in ("yarn", "yarn-connect"):
        return YarnBackend(env, lrm, config)
    if lrm.name == "spark":
        return SparkBackend(env, lrm, config)
    return ForkBackend(env, lrm, config)
