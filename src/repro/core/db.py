"""A MongoDB stand-in: the client<->agent coordination channel.

RADICAL-Pilot coordinates Pilot-/Unit-Managers and agents through a
shared MongoDB instance (paper Figure 3, steps U.2/U.3).  This module
provides the subset RP uses — collections of dict documents with
``insert``/``find``/``update_one`` and an event-based ``watch`` so
simulation processes can block on document changes — plus a modeled
round-trip latency per operation batch.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.sim.engine import Environment, Event


class Collection:
    """One named collection of documents."""

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._docs: Dict[str, Dict[str, Any]] = {}
        self._id_seq = itertools.count(1)
        self._watchers: List[Event] = []

    def insert(self, doc: Dict[str, Any]) -> str:
        """Insert a document, assigning ``_id`` if missing."""
        doc = dict(doc)
        doc.setdefault("_id", f"{self.name}.{next(self._id_seq)}")
        self._docs[doc["_id"]] = doc
        self._notify()
        return doc["_id"]

    def find(self, query: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """All documents matching the (equality-only) query."""
        if query and "_id" in query:
            # Primary-key fast path: ``_id`` is the dict key, so an
            # equality query on it never needs the full scan (the scan
            # is O(collection) and dominates many-unit runs otherwise).
            doc = self._docs.get(query["_id"])
            if doc is None:
                return []
            if all(doc.get(k) == v for k, v in query.items()):
                return [doc]
            return []
        out = []
        for doc in self._docs.values():
            if all(doc.get(k) == v for k, v in (query or {}).items()):
                out.append(doc)
        return out

    def find_one(self, query: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, Any]]:
        matches = self.find(query)
        return matches[0] if matches else None

    def update_one(self, query: Dict[str, Any],
                   changes: Dict[str, Any]) -> bool:
        """Apply ``changes`` ($set semantics) to the first match."""
        doc = self.find_one(query)
        if doc is None:
            return False
        doc.update(changes)
        self._notify()
        return True

    def watch(self) -> Event:
        """Event firing at the next mutation of this collection."""
        event = Event(self.env)
        self._watchers.append(event)
        return event

    def _notify(self) -> None:
        watchers, self._watchers = self._watchers, []
        for event in watchers:
            if not event.triggered:
                event.succeed()

    def __len__(self) -> int:
        return len(self._docs)


class Database:
    """The shared store: named collections + a modeled RTT."""

    def __init__(self, env: Environment, rtt: float = 0.02):
        self.env = env
        self.rtt = rtt
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(self.env, name)
        return self._collections[name]

    def roundtrip(self) -> Event:
        """One client<->DB network round-trip (yield it)."""
        event = Event(self.env)

        def _fire(_):
            event.succeed()
        self.env.timeout(self.rtt).callbacks.append(_fire)
        return event
