"""A MongoDB stand-in: the client<->agent coordination channel.

RADICAL-Pilot coordinates Pilot-/Unit-Managers and agents through a
shared MongoDB instance (paper Figure 3, steps U.2/U.3).  This module
provides the subset RP uses — collections of dict documents with
``insert``/``find``/``update_one`` and an event-based ``watch`` so
simulation processes can block on document changes — plus a modeled
round-trip latency per operation batch.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.engine import Environment, Event

_MISSING = object()  # "no index built yet" (None means unindexable)


class Collection:
    """One named collection of documents.

    Equality queries on non-``_id`` keys are served from lazily built
    secondary indexes (one per queried key set), kept current by
    ``insert``/``update_one``.  Matches come back sorted by insertion
    sequence — the same order the full scan produces — so indexed and
    scanned reads are interchangeable byte-for-byte.
    """

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self._docs: Dict[str, Dict[str, Any]] = {}
        self._id_seq = itertools.count(1)
        self._watchers: List[Event] = []
        self._seq: Dict[str, int] = {}
        self._seq_counter = itertools.count()
        # key-tuple -> value-tuple -> {_id: doc}; None marks a key set
        # with unhashable values (always scanned).
        self._indexes: Dict[Tuple[str, ...],
                            Optional[Dict[Tuple, Dict[str, Dict]]]] = {}

    def insert(self, doc: Dict[str, Any]) -> str:
        """Insert a document, assigning ``_id`` if missing."""
        doc = dict(doc)
        doc.setdefault("_id", f"{self.name}.{next(self._id_seq)}")
        self._docs[doc["_id"]] = doc
        self._seq[doc["_id"]] = next(self._seq_counter)
        for keys, buckets in self._indexes.items():
            if buckets is None:
                continue
            try:
                value = tuple(doc.get(k) for k in keys)
                buckets.setdefault(value, {})[doc["_id"]] = doc
            except TypeError:
                self._indexes[keys] = None
        self._notify()
        return doc["_id"]

    def find(self, query: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
        """All documents matching the (equality-only) query."""
        if query and "_id" in query:
            # Primary-key fast path: ``_id`` is the dict key, so an
            # equality query on it never needs the full scan (the scan
            # is O(collection) and dominates many-unit runs otherwise).
            doc = self._docs.get(query["_id"])
            if doc is None:
                return []
            if all(doc.get(k) == v for k, v in query.items()):
                return [doc]
            return []
        if query:
            keys = tuple(sorted(query))
            buckets = self._indexes.get(keys, _MISSING)
            if buckets is _MISSING:
                buckets = self._build_index(keys)
            if buckets is not None:
                try:
                    value = tuple(query[k] for k in keys)
                    bucket = buckets.get(value)
                except TypeError:
                    bucket = None  # unhashable query value: scan below
                else:
                    if bucket is None:
                        return []
                    seq = self._seq
                    return sorted(bucket.values(),
                                  key=lambda d: seq[d["_id"]])
        out = []
        for doc in self._docs.values():
            if all(doc.get(k) == v for k, v in (query or {}).items()):
                out.append(doc)
        return out

    def _build_index(self, keys: Tuple[str, ...]):
        """Index every document by its values at ``keys`` (or mark the
        key set unindexable if any value is unhashable)."""
        buckets: Dict[Tuple, Dict[str, Dict]] = {}
        try:
            for doc in self._docs.values():
                value = tuple(doc.get(k) for k in keys)
                buckets.setdefault(value, {})[doc["_id"]] = doc
        except TypeError:
            buckets = None
        self._indexes[keys] = buckets
        return buckets

    def find_one(self, query: Optional[Dict[str, Any]] = None) -> Optional[Dict[str, Any]]:
        matches = self.find(query)
        return matches[0] if matches else None

    def update_one(self, query: Dict[str, Any],
                   changes: Dict[str, Any]) -> bool:
        """Apply ``changes`` ($set semantics) to the first match."""
        doc = self.find_one(query)
        if doc is None:
            return False
        for keys, buckets in self._indexes.items():
            if buckets is None or not any(k in changes for k in keys):
                continue
            try:
                old = tuple(doc.get(k) for k in keys)
                new = tuple(changes.get(k, doc.get(k)) for k in keys)
                if new != old:
                    bucket = buckets[old]
                    del bucket[doc["_id"]]
                    if not bucket:
                        del buckets[old]
                    buckets.setdefault(new, {})[doc["_id"]] = doc
            except TypeError:
                self._indexes[keys] = None
        doc.update(changes)
        self._notify()
        return True

    def snapshot_state(self) -> list:
        """All documents in insertion-sequence order (for fingerprints)."""
        return [self._docs[doc_id] for doc_id, _ in
                sorted(self._seq.items(), key=lambda kv: kv[1])]

    def watch(self) -> Event:
        """Event firing at the next mutation of this collection."""
        event = Event(self.env)
        self._watchers.append(event)
        return event

    def _notify(self) -> None:
        watchers, self._watchers = self._watchers, []
        for event in watchers:
            if not event.triggered:
                event.succeed()

    def __len__(self) -> int:
        return len(self._docs)


class Database:
    """The shared store: named collections + a modeled RTT."""

    def __init__(self, env: Environment, rtt: float = 0.02):
        self.env = env
        self.rtt = rtt
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        if name not in self._collections:
            self._collections[name] = Collection(self.env, name)
        return self._collections[name]

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: every collection's documents.

        Documents come back in insertion-sequence order (the canonical
        read order everywhere else in the stack); values are
        canonicalized by the persist layer, not here.
        """
        return {name: col.snapshot_state()
                for name, col in sorted(self._collections.items())}

    def roundtrip(self) -> Event:
        """One client<->DB network round-trip (yield it)."""
        event = Event(self.env)

        def _fire(_):
            event.succeed()
        self.env.timeout(self.rtt).callbacks.append(_fire)
        return event
