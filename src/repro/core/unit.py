"""ComputeUnit: the client-side unit handle."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.description import ComputeUnitDescription
from repro.core.states import UNIT_TRANSITIONS, UnitState, check_transition
from repro.sim.engine import Environment, Event


class ComputeUnit:
    """Handle to a submitted Compute-Unit."""

    def __init__(self, env: Environment, uid: str,
                 description: ComputeUnitDescription):
        self.env = env
        self.uid = uid
        self.description = description
        self.state = UnitState.NEW
        self.history: List[Tuple[float, UnitState]] = [
            (env.now, UnitState.NEW)]
        self.pilot_uid: Optional[str] = None
        self.result: Any = None
        self.exit_code: Optional[int] = None
        self.stderr: str = ""
        self._state_events: Dict[UnitState, Event] = {
            s: Event(env) for s in UnitState}
        self._final_event = Event(env)

    def advance(self, new_state: UnitState) -> None:
        """Apply one state transition (legality-checked)."""
        check_transition(UNIT_TRANSITIONS, self.state, new_state)
        self.state = new_state
        self.history.append((self.env.now, new_state))
        event = self._state_events[new_state]
        if not event.triggered:
            event.succeed(self)
        if new_state.is_final and not self._final_event.triggered:
            self._final_event.succeed(self)

    def wait(self, state: Optional[UnitState] = None) -> Event:
        """Event firing when the unit reaches ``state`` (or any final)."""
        if state is None:
            return self._final_event
        return self._state_events[state]

    def timestamp(self, state: UnitState) -> Optional[float]:
        """When the unit first entered ``state`` (None if never)."""
        for t, s in self.history:
            if s is state:
                return t
        return None

    @property
    def startup_time(self) -> Optional[float]:
        """Submission-to-execution latency (the Figure 5 inset metric)."""
        t_exec = self.timestamp(UnitState.EXECUTING)
        t_new = self.timestamp(UnitState.NEW)
        if t_exec is None or t_new is None:
            return None
        return t_exec - t_new

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ComputeUnit {self.uid} {self.state.value}>"
