"""PilotManager: launches and tracks pilots through SAGA."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.agent.agent import Agent, advance_doc
from repro.core.description import ComputePilotDescription
from repro.core.pilot import ComputePilot
from repro.core.session import Session
from repro.core.states import PilotState
from repro.saga.job import Description as SagaDescription
from repro.saga.job import Service
from repro.sim.engine import Event


class PilotManager:
    """Client-side pilot lifecycle (paper Figure 3, steps P.1-P.2).

    ``submit_pilot`` translates a ComputePilotDescription into a SAGA
    job whose payload is the RADICAL-Pilot-Agent, submits it to the
    target site's batch system, and returns the pilot handle.  A watcher
    process replays DB-side state changes (written by the agent) onto
    the handle.
    """

    def __init__(self, session: Session, heartbeat_timeout: float = 300.0,
                 heartbeat_check_interval: float = 30.0):
        self.session = session
        self.env = session.env
        self.uid = session.next_uid("pmgr")
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_check_interval = heartbeat_check_interval
        self.pilots: Dict[str, ComputePilot] = {}
        self._services: Dict[str, Service] = {}
        self._watcher = self.env.process(self._watch_loop(),
                                         name=f"{self.uid}-watch")
        self._hb_wake: Optional[Event] = None
        self._hb_epoch = self.env.now
        self._hb_monitor = self.env.process(
            self._heartbeat_monitor(), name=f"{self.uid}-hb")
        #: pilot uid -> agent handle, kept so the checkpoint fingerprint
        #: can reach live scheduler free-core state.
        self.agents: Dict[str, object] = {}
        session.register_component(self)

    # ---------------------------------------------------------- submission
    def submit_pilot(self, description: ComputePilotDescription) -> ComputePilot:
        """Submit one pilot; returns its handle immediately."""
        description.validate()
        uid = self.session.next_uid("pilot")
        pilot = ComputePilot(self.env, uid, description)
        self.pilots[uid] = pilot

        col = self.session.db.collection("pilots")
        col.insert({
            "_id": uid,
            "state": PilotState.NEW.value,
            "history": [(self.env.now, PilotState.NEW.value)],
            "resource": description.resource,
            "cancel_requested": False,
        })

        service = self._service(description.resource)
        agent = Agent(self.session, uid, service.site, description)
        self.agents[uid] = agent
        advance_doc(col, uid, PilotState.PENDING_LAUNCH, self.env.now)

        saga_job = service.create_job(SagaDescription(
            executable="radical-pilot-agent",
            arguments=(uid,),
            number_of_nodes=description.nodes,
            wall_time_limit=description.runtime,
            queue=description.queue,
            project=description.project,
            payload=agent.payload()))
        self.env.process(self._launch(uid, saga_job),
                         name=f"launch-{uid}")
        return pilot

    def _service(self, resource: str) -> Service:
        if resource not in self._services:
            self._services[resource] = Service(
                resource, self.session.registry)
        return self._services[resource]

    def _launch(self, uid: str, saga_job):
        col = self.session.db.collection("pilots")
        advance_doc(col, uid, PilotState.LAUNCHING, self.env.now)
        saga_job.run()
        try:
            yield saga_job.wait_started()
        except RuntimeError:
            # canceled or failed before starting
            doc = col.find_one({"_id": uid})
            if doc and not PilotState(doc["state"]).is_final:
                advance_doc(col, uid, PilotState.FAILED, self.env.now)
            return
        # From here the agent payload drives the DB document; the batch
        # job's final state is checked as a safety net.
        batch_job = saga_job.batch_job
        yield batch_job.finished
        doc = col.find_one({"_id": uid})
        if doc and not PilotState(doc["state"]).is_final:
            # agent died without finalizing (e.g. crashed payload)
            advance_doc(col, uid, PilotState.FAILED, self.env.now,
                        fail_reason=batch_job.fail_reason)

    # ------------------------------------------------------------- control
    def cancel_pilot(self, uid: str) -> None:
        """Request pilot cancellation (served at the agent's next poll)."""
        col = self.session.db.collection("pilots")
        col.update_one({"_id": uid}, {"cancel_requested": True})

    def wait_pilot(self, pilot: ComputePilot,
                   state: Optional[PilotState] = None):
        """Event for ``pilot`` reaching ``state`` (default: any final)."""
        return pilot.wait(state)

    def last_heartbeat(self, uid: str):
        """Timestamp of the pilot agent's last heartbeat (None = never)."""
        doc = self.session.db.collection("pilots").find_one({"_id": uid})
        return None if doc is None else doc.get("heartbeat")

    # ------------------------------------------------- heartbeat monitor
    def _heartbeat_monitor(self):
        """Fail ACTIVE pilots whose agent stopped heartbeating.

        The agent writes a heartbeat into its pilot document on every
        main-loop pass; a hung or partitioned agent (as opposed to one
        that exited — the batch-job safety net covers that) is detected
        here and its pilot declared FAILED.

        Event-driven: with no ACTIVE pilot the monitor parks on a wake
        event (fired by :meth:`_sync` when a pilot goes ACTIVE) instead
        of ticking forever — at high session counts the idle ticks used
        to dominate the event heap, and an idle manager no longer keeps
        the simulation alive.  While pilots are ACTIVE the checks run at
        the same phase-aligned instants (``epoch + k*interval``) the
        fixed-interval loop used, so detection times — and therefore
        sweep digests — are unchanged.
        """
        col = self.session.db.collection("pilots")
        interval = self.heartbeat_check_interval
        while True:
            while not any(p.state is PilotState.ACTIVE
                          for p in self.pilots.values()):
                self._hb_wake = Event(self.env)
                yield self._hb_wake
            # Resume ticking on the original grid: the next multiple of
            # ``interval`` strictly after now (an exact-multiple resume
            # would re-check an instant the old loop already covered
            # with a fresh, never-stale heartbeat — a no-op either way).
            k = int((self.env.now - self._hb_epoch) // interval) + 1
            yield self.env.timeout(self._hb_epoch + k * interval
                                   - self.env.now)
            for uid, pilot in self.pilots.items():
                if pilot.state is not PilotState.ACTIVE:
                    continue
                doc = col.find_one({"_id": uid})
                if doc is None:
                    continue
                last = doc.get("heartbeat",
                               pilot.timestamp(PilotState.ACTIVE))
                if last is None:
                    continue
                if self.env.now - last > self.heartbeat_timeout:
                    tel = self.env.telemetry
                    if tel is not None:
                        tel.emit("pilot", "heartbeat_timeout", uid=uid,
                                 last_heartbeat=last,
                                 silent_for=self.env.now - last)
                        tel.counter("pmgr.heartbeat_timeouts").inc()
                    advance_doc(col, uid, PilotState.FAILED, self.env.now,
                                fail_reason="agent heartbeat timeout")

    # ------------------------------------------------------------- watcher
    def _watch_loop(self):
        col = self.session.db.collection("pilots")
        while True:
            change = col.watch()
            self._sync()
            yield change

    def _sync(self) -> None:
        col = self.session.db.collection("pilots")
        for uid, pilot in self.pilots.items():
            doc = col.find_one({"_id": uid})
            if doc is None:
                continue
            for _, state_value in doc["history"][len(pilot.history):]:
                pilot.advance(PilotState(state_value))
                if pilot.state is PilotState.ACTIVE:
                    self._wake_heartbeat_monitor()
            if doc.get("agent_info") and not pilot.agent_info:
                pilot.agent_info = doc["agent_info"]

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: pilot states + agent scheduler cores.

        Reduces each live pilot handle to its deterministic coordinates
        and asks each agent's backend scheduler for its free-core
        summary, so a restored process can prove the allocation state
        replayed identically.
        """
        pilots = {}
        for uid, pilot in sorted(self.pilots.items()):
            entry: dict = {"state": pilot.state.value}
            agent = self.agents.get(uid)
            backend = getattr(agent, "backend", None)
            scheduler = getattr(backend, "scheduler", None)
            if scheduler is not None:
                snap = getattr(scheduler, "snapshot_state", None)
                if snap is not None:
                    entry["scheduler"] = snap()
                else:
                    entry["scheduler"] = {
                        "free_cores": getattr(scheduler, "free_cores",
                                              None)}
            pilots[uid] = entry
        return {"kind": "pilot_manager", "uid": self.uid,
                "pilots": pilots}

    def _wake_heartbeat_monitor(self) -> None:
        """Un-park the heartbeat monitor (a pilot just went ACTIVE)."""
        wake, self._hb_wake = self._hb_wake, None
        if wake is not None and not wake.triggered:
            wake.succeed()
