"""RaptorOverlay: the client-side handle for one master/worker overlay.

``session.raptor(pilot, workers=8)`` builds the overlay on top of an
ACTIVE pilot: one master Compute-Unit plus N worker Compute-Units are
submitted through the **normal** unit path (so they pay the 2-step
allocation the paper measures exactly once), and every subsequent
function task skips that path entirely — it streams to a warm worker
over the interconnect.

The overlay composes with :mod:`repro.faults`: workers are submitted
under an optional :class:`~repro.faults.spec.RestartPolicy`, so a node
crash fails the worker CU, the Unit-Manager resubmits it with backoff,
and the replacement registers a fresh worker with the master while the
master re-dispatches the crashed worker's in-flight tasks elsewhere.
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Sequence

from repro.core.description import ComputeUnitDescription
from repro.core.unit_manager import UnitManager
from repro.raptor.master import RaptorMaster
from repro.raptor.task import RaptorConfig, TaskDescription, TaskFuture
from repro.raptor.worker import worker_service
from repro.saga.url import Url
from repro.sim.engine import Event


class RaptorOverlay:
    """One overlay: a master CU, N worker CUs and a task stream."""

    def __init__(self, session, pilot, workers: int = 4,
                 cores_per_worker: int = 1, master_cores: int = 1,
                 restart_policy=None,
                 config: Optional[RaptorConfig] = None):
        if workers < 1:
            raise ValueError("an overlay needs >= 1 worker")
        self.session = session
        self.env = session.env
        self.pilot = pilot
        self.num_workers = workers
        self.cores_per_worker = cores_per_worker
        self.master_cores = master_cores
        self.config = (config or RaptorConfig()).validate()
        site = session.registry.lookup(
            Url.parse(pilot.description.resource).host)
        self.network = site.machine.network
        self.uid = session.next_uid("raptor")
        self.master = RaptorMaster(self, f"{self.uid}.master")
        self.drain_on_close = True
        self._next_tid = 1
        self._wait_all: List[tuple] = []
        self._started = False
        # Fresh managers so overlay policies never leak into the
        # session's singleton: the master has *no* restart policy (its
        # death is the overlay's death — a documented single point of
        # failure), the workers carry the caller's policy.
        self._master_umgr = UnitManager(session)
        self._worker_umgr = UnitManager(session,
                                        restart_policy=restart_policy)
        self.master_unit = None
        self.worker_units: List = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "RaptorOverlay":
        """Submit the master and worker CUs (idempotent)."""
        if self._started:
            return self
        self._started = True
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("raptor", "overlay_start", overlay=self.uid,
                     workers=self.num_workers,
                     cores_per_worker=self.cores_per_worker)
        self._master_umgr.add_pilots(self.pilot)
        self._worker_umgr.add_pilots(self.pilot)
        self.master_unit = self._master_umgr.submit_units(
            ComputeUnitDescription(
                cores=self.master_cores,
                service=self.master.service,
                name=f"{self.uid}.master"))[0]
        worker_desc = ComputeUnitDescription(
            cores=self.cores_per_worker,
            service=partial(worker_service, self),
            name=f"{self.uid}.worker")
        self.worker_units = self._worker_umgr.submit_units(
            [worker_desc] * self.num_workers)
        return self

    def ready(self, workers: Optional[int] = None) -> Event:
        """Event firing once the master is up and ``workers`` (default:
        all) workers have registered."""
        count = self.num_workers if workers is None else workers
        return self.master.workers_event(count)

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: overlay shape + live master state."""
        return {"kind": "raptor_overlay", "uid": self.uid,
                "workers": self.num_workers,
                "cores_per_worker": self.cores_per_worker,
                "started": self._started,
                "next_tid": self._next_tid,
                "master": self.master.snapshot_state()}

    # ------------------------------------------------------------- tasks
    def submit_tasks(self, descriptions: Sequence[TaskDescription],
                     futures: bool = True) -> Optional[List[TaskFuture]]:
        """Submit a batch of tasks; returns their completion futures.

        ``futures=False`` skips future allocation for very large streams
        (1e5+ tasks) — completion is then observed with :meth:`wait`
        (no-args) and the overlay counters.
        """
        if not self._started:
            raise RuntimeError("overlay not started")
        if self.master.closed:
            raise RuntimeError(f"overlay {self.uid} is closed")
        if isinstance(descriptions, TaskDescription):
            descriptions = [descriptions]
        master = self.master
        batch = []
        handles: Optional[List[TaskFuture]] = [] if futures else None
        for desc in descriptions:
            desc.validate()
            tid = self._next_tid
            self._next_tid += 1
            future = None
            if futures:
                future = TaskFuture(self.env, tid, desc)
                handles.append(future)
            batch.append(master.make_task(tid, desc, future))
        if batch:
            master.submit_batch(batch, self.config.submit_latency)
        return handles

    def wait(self, futures: Optional[Sequence[TaskFuture]] = None) -> Event:
        """Event firing when ``futures`` settle (default: every task
        submitted so far, futures or not)."""
        if futures is not None:
            return self.env.all_of([f.wait() for f in futures])
        event = Event(self.env)
        target = self._next_tid - 1
        if self._settled() >= target:
            event.succeed()
        else:
            self._wait_all.append((target, event))
        return event

    def _settled(self) -> int:
        return self.master.tasks_completed + self.master.tasks_failed

    def _task_settled(self) -> None:
        """Master hook: a task finished; wake satisfied waiters."""
        settled = self._settled()
        still = []
        for target, event in self._wait_all:
            if settled >= target:
                if not event.triggered:
                    event.succeed()
            else:
                still.append((target, event))
        self._wait_all = still

    # ------------------------------------------------------------- teardown
    def close(self, drain: bool = True) -> Event:
        """Shut the overlay down; event fires when every CU is final.

        ``drain=True`` (default) lets queued and running tasks finish
        first; ``drain=False`` fails outstanding futures immediately.
        """
        self.drain_on_close = drain
        self.master.request_close()
        waits = [self._master_umgr.wait_units([self.master_unit])]
        if self.worker_units:
            waits.append(self._worker_umgr.wait_units(self.worker_units))
        return self.env.all_of(waits)

    # ------------------------------------------------------------- inspect
    @property
    def results(self):
        """Result envelopes in completion order (``retain_results``)."""
        return self.master.results

    def stats(self) -> dict:
        """The overlay counters, one canonical dict."""
        master = self.master
        return {
            "overlay": self.uid,
            "workers_registered": master._registered_total,
            "workers_lost": master.workers_lost,
            "tasks_submitted": master.tasks_submitted,
            "tasks_completed": master.tasks_completed,
            "tasks_failed": master.tasks_failed,
            "tasks_retried": master.tasks_retried,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RaptorOverlay {self.uid}: {self.num_workers} workers, "
                f"{self._settled()}/{self._next_tid - 1} settled>")
