"""repro.raptor: master/worker task overlay for many-task workloads.

The paper's Fig. 5 inset shows Compute-Unit startup dominated by the
2-step AM -> container allocation; the pilot literature (arXiv:1512.08194,
arXiv:1501.05041) answers with a master/worker overlay that pays that
cost once and then streams function tasks to warm workers.  This package
is that overlay: one long-lived master CU, N worker CUs, and a task
protocol over the simulated interconnect.

Entry point: :meth:`repro.core.session.Session.raptor` (via
``repro.api``), returning a :class:`RaptorOverlay` handle with
``submit_tasks`` / ``wait`` / ``close``.
"""

from repro.raptor.master import RaptorMaster
from repro.raptor.overlay import RaptorOverlay
from repro.raptor.task import (
    RaptorConfig,
    TaskDescription,
    TaskFuture,
    TaskResult,
)
from repro.raptor.worker import RaptorWorker, WorkerLost, worker_service

__all__ = [
    "RaptorConfig",
    "RaptorMaster",
    "RaptorOverlay",
    "RaptorWorker",
    "TaskDescription",
    "TaskFuture",
    "TaskResult",
    "WorkerLost",
    "worker_service",
]
