"""The raptor task protocol: descriptions, result envelopes, futures.

A raptor *task* is much lighter than a Compute-Unit: a small Python
function call that streams master -> worker as a few-KB message over the
simulated interconnect, executes inside a long-lived worker slot (no
batch-system or YARN allocation on the critical path) and streams its
result envelope back.  :class:`TaskDescription` follows the repo-wide
keyword-validated dataclass convention
(:class:`repro.core.description.Description`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.description import Description
from repro.sim.engine import Environment, Event

#: Default wire size of a serialized task message (bytes).
TASK_WIRE_BYTES = 2048.0
#: Default wire size of a serialized result envelope (bytes).
RESULT_WIRE_BYTES = 1024.0


@dataclass
class RaptorConfig(Description):
    """Tunables of one master/worker overlay.

    The per-task costs here are what the overlay's throughput model is
    made of: a worker pays ``dispatch_overhead_seconds`` per task (the
    function-call dispatch inside the warm worker process) instead of
    the batch/YARN allocation a Compute-Unit pays.
    """

    #: Worker-side per-task dispatch cost (deserialize + call), seconds.
    dispatch_overhead_seconds: float = 0.001
    #: Master -> worker task message size on the wire (bytes).
    task_wire_bytes: float = TASK_WIRE_BYTES
    #: Worker -> master result envelope size on the wire (bytes).
    result_wire_bytes: float = RESULT_WIRE_BYTES
    #: Worker -> master registration message size (bytes).
    register_wire_bytes: float = 512.0
    #: Times a task lost to a worker crash is re-dispatched before its
    #: future resolves with a failed envelope.
    task_retries: int = 3
    #: Keep every :class:`TaskResult` on the master (``results`` list).
    #: Large streams (1e5+ tasks) turn this off and read counters only.
    retain_results: bool = True
    #: Client -> master submission latency per ``submit_tasks`` batch.
    submit_latency: float = 0.02

    def _check(self) -> None:
        self._require(self.dispatch_overhead_seconds >= 0,
                      "dispatch overhead must be non-negative")
        self._require(self.task_wire_bytes >= 0
                      and self.result_wire_bytes >= 0
                      and self.register_wire_bytes >= 0,
                      "wire sizes must be non-negative")
        self._require(self.task_retries >= 0,
                      "task_retries must be non-negative")
        self._require(self.submit_latency >= 0,
                      "submit_latency must be non-negative")


@dataclass
class TaskDescription(Description):
    """One function task for the overlay.

    ``cpu_seconds`` is modeled compute (reference-CPU seconds, divided
    by ``cores`` on the worker's node), ``function`` an optional real
    Python callable executed eagerly on completion of the modeled
    phase; its return value travels back in the result envelope.
    """

    function: Optional[Callable[..., Any]] = None
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    cores: int = 1
    cpu_seconds: float = 0.0
    #: Wire-size overrides; ``None`` uses the overlay's RaptorConfig.
    payload_bytes: Optional[float] = None
    result_bytes: Optional[float] = None
    name: str = ""

    def _check(self) -> None:
        self._require(self.cores >= 1, "task needs >= 1 core")
        self._require(self.cpu_seconds >= 0,
                      "cpu_seconds must be non-negative")
        if self.payload_bytes is not None:
            self._require(self.payload_bytes >= 0,
                          "payload_bytes must be non-negative")
        if self.result_bytes is not None:
            self._require(self.result_bytes >= 0,
                          "result_bytes must be non-negative")


class TaskResult:
    """The result envelope a worker streams back for one task."""

    __slots__ = ("tid", "ok", "result", "error", "worker", "attempts",
                 "submitted_at", "started_at", "finished_at")

    def __init__(self, tid: int, ok: bool, result: Any = None,
                 error: str = "", worker: str = "", attempts: int = 1,
                 submitted_at: float = 0.0,
                 started_at: Optional[float] = None,
                 finished_at: float = 0.0):
        self.tid = tid
        self.ok = ok
        self.result = result
        self.error = error
        self.worker = worker
        self.attempts = attempts
        self.submitted_at = submitted_at
        self.started_at = started_at
        self.finished_at = finished_at

    @property
    def latency(self) -> float:
        """Submission-to-result latency (the overlay's Figure 5 inset)."""
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ok" if self.ok else f"failed({self.error})"
        return f"<TaskResult task.{self.tid} {state}>"


class TaskFuture:
    """Client-side completion handle for one submitted task."""

    __slots__ = ("tid", "description", "_event")

    def __init__(self, env: Environment, tid: int,
                 description: TaskDescription):
        self.tid = tid
        self.description = description
        self._event = Event(env)

    @property
    def done(self) -> bool:
        return self._event.triggered

    def wait(self) -> Event:
        """Event firing with the :class:`TaskResult` envelope."""
        return self._event

    def result(self) -> TaskResult:
        """The settled envelope; raises if the task is still in flight."""
        if not self._event.triggered:
            raise RuntimeError(f"task.{self.tid} is still in flight")
        return self._event.value

    def _resolve(self, envelope: TaskResult) -> None:
        if not self._event.triggered:
            self._event.succeed(envelope)

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else "pending"
        return f"<TaskFuture task.{self.tid} {state}>"
