"""RaptorMaster: the scheduling heart of the task overlay.

One master runs as a long-lived service Compute-Unit — allocated once
through the normal AM/scheduler path — and then multiplexes a stream of
function tasks over its registered workers:

* tasks enter a FIFO queue (client batches arrive after the modeled
  submission latency);
* dispatch scans workers in registration order and places each task on
  the first worker with enough free cores (deterministic, O(workers));
* the task message streams master -> worker over the interconnect, the
  result envelope streams back, and the task's future resolves;
* a worker lost to a node crash gets its in-flight tasks re-dispatched
  (up to ``task_retries`` per task) on surviving workers — composing
  with the Unit-Manager restart policy that brings replacement worker
  CUs back.

Everything the master does is a deterministic function of the event
order, so overlay runs are bitwise-reproducible.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.analysis.sanitizer import InvariantViolation
from repro.raptor.task import TaskResult
from repro.raptor.worker import RaptorWorker, WorkerLost
from repro.sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node


class _Task:
    """Master-side bookkeeping for one submitted task."""

    __slots__ = ("tid", "description", "future", "attempts",
                 "submitted_at", "started_at", "settled")

    def __init__(self, tid: int, description, future,
                 submitted_at: float):
        self.tid = tid
        self.description = description
        self.future = future            # TaskFuture or None (fire-and-count)
        self.attempts = 0
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.settled = False


class RaptorMaster:
    """Master-side state machine of one overlay."""

    def __init__(self, overlay, uid: str):
        self.overlay = overlay
        self.env: Environment = overlay.env
        self.uid = uid
        self.config = overlay.config
        self.node: Optional["Node"] = None
        self.workers: List[RaptorWorker] = []
        self._registered_total = 0
        #: Lazy min-heap of registration indices of workers that may
        #: have free cores.  Dispatch pops in registration order, so the
        #: pick is identical to the old full scan of ``self.workers`` —
        #: but a saturated overlay pays O(1) per failed pick instead of
        #: O(workers), the difference between 27k and 2.6k tasks/s wall
        #: at 2k workers.  Stale entries (worker drained, lost or
        #: retired) are dropped when popped.
        self._free_heap: List[int] = []
        self._by_index: Dict[int, RaptorWorker] = {}
        self._pending: Deque[_Task] = deque()
        self._running: Dict[int, _Task] = {}
        #: Tasks submitted by the client but still riding the modeled
        #: submission latency — the drain loop must wait for them too.
        self._in_transit: Dict[int, _Task] = {}
        #: Result envelopes in completion order (``retain_results``).
        self.results: List[TaskResult] = []
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_failed = 0
        self.tasks_retried = 0
        self.workers_lost = 0
        self.closed = False
        self.failed = False
        self._close_requested = Event(self.env)
        self._ready = Event(self.env)
        self._drained: Optional[Event] = None
        self._idle_waiters: List[Event] = []
        self._worker_count_waiters: List[tuple] = []
        self._span = None

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: queue depths + task counters.

        In-flight task identity is carried by the deterministic tid
        sets; the payloads themselves replay from the scenario.
        """
        return {"kind": "raptor_master", "uid": self.uid,
                "registered_total": self._registered_total,
                "workers": len(self.workers),
                "pending": [t.tid for t in self._pending],
                "running": sorted(self._running),
                "in_transit": sorted(self._in_transit),
                "tasks_submitted": self.tasks_submitted,
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed,
                "tasks_retried": self.tasks_retried,
                "workers_lost": self.workers_lost,
                "closed": self.closed, "failed": self.failed}

    # ------------------------------------------------------------- readiness
    @property
    def ready(self) -> bool:
        return self.node is not None and not self.closed

    def ready_event(self) -> Event:
        """Fires once the master service is placed (or terminally dead)."""
        return self._ready

    def workers_event(self, count: int) -> Event:
        """Fires when ``count`` worker registrations have happened."""
        event = Event(self.env)
        if self._registered_total >= count:
            event.succeed(self._registered_total)
        else:
            self._worker_count_waiters.append((count, event))
        return event

    # ------------------------------------------------------------- service
    def service(self, ctx):
        """The service generator the master Compute-Unit runs."""
        tel = self.env.telemetry
        self.node = ctx.node
        if tel is not None:
            self._span = tel.tracer.begin(
                self.uid, cat="raptor", track=self.uid,
                node=ctx.node.name)
            tel.emit("raptor", "master_ready", master=self.uid,
                     node=ctx.node.name)
        if not self._ready.triggered:
            self._ready.succeed(self)
        self._pump()
        try:
            yield self.env.any_of([self._close_requested,
                                   ctx.node.failure_event()])
            if not ctx.node.alive:
                self._fail(f"master node {ctx.node.name} died")
                from repro.core.agent.executor import ExecutionError
                raise ExecutionError(
                    f"raptor master {self.uid}: node {ctx.node.name} died")
            if self.overlay.drain_on_close:
                while self._pending or self._running or self._in_transit:
                    drained = self._drained = Event(self.env)
                    yield self.env.any_of([drained,
                                           ctx.node.failure_event()])
                    if not ctx.node.alive:
                        self._fail(
                            f"master node {ctx.node.name} died in drain")
                        from repro.core.agent.executor import ExecutionError
                        raise ExecutionError(
                            f"raptor master {self.uid}: node died in drain")
            self.closed = True
            # Unresolved tasks on a no-drain close fail deterministically.
            self._fail_outstanding("overlay closed")
            for worker in list(self.workers):
                yield self.overlay.network.send(
                    ctx.node.name, worker.node.name,
                    self.config.register_wire_bytes)
                worker.shutdown()
        finally:
            if tel is not None:
                tel.tracer.end(self._span,
                               tasks_completed=self.tasks_completed,
                               tasks_failed=self.tasks_failed,
                               workers_lost=self.workers_lost)
        return {"master": self.uid,
                "tasks_completed": self.tasks_completed,
                "tasks_failed": self.tasks_failed}

    def request_close(self) -> None:
        if not self._close_requested.triggered:
            self._close_requested.succeed()

    def _fail(self, reason: str) -> None:
        """Master death: every unresolved task fails, the overlay is done."""
        self.failed = True
        self.closed = True
        self._fail_outstanding(reason)
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("raptor", "master_failed", master=self.uid,
                     reason=reason)

    def _fail_outstanding(self, reason: str) -> None:
        outstanding = (list(self._running.values()) + list(self._pending)
                       + list(self._in_transit.values()))
        self._running.clear()
        self._pending.clear()
        self._in_transit.clear()
        for task in outstanding:
            self._finish(task, TaskResult(
                tid=task.tid, ok=False, error=reason,
                attempts=task.attempts,
                submitted_at=task.submitted_at,
                started_at=task.started_at,
                finished_at=self.env.now))

    # ------------------------------------------------------------- workers
    def register_worker(self, worker: RaptorWorker) -> None:
        if self.closed:
            worker.shutdown()
            return
        self.workers.append(worker)
        worker.reg_index = self._registered_total
        self._by_index[worker.reg_index] = worker
        worker.queued = True
        heappush(self._free_heap, worker.reg_index)
        self._registered_total += 1
        still_waiting = []
        for count, event in self._worker_count_waiters:
            if self._registered_total >= count:
                event.succeed(self._registered_total)
            else:
                still_waiting.append((count, event))
        self._worker_count_waiters = still_waiting
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("raptor", "worker_registered", master=self.uid,
                     worker=worker.uid, node=worker.node.name,
                     cores=worker.cores)
            tel.counter("raptor.workers_registered").inc()
        self._pump()

    def worker_lost(self, worker: RaptorWorker) -> None:
        """A worker's node died: drop it from the rotation.

        Its in-flight tasks are owned by their dispatch processes, which
        observe the same node-death event and requeue themselves — this
        hook only handles membership and telemetry.
        """
        if worker.lost:
            return
        worker.mark_lost()
        worker.detached = True
        if worker in self.workers:
            self.workers.remove(worker)
        self.workers_lost += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("raptor", "worker_lost", master=self.uid,
                     worker=worker.uid, node=worker.node.name,
                     in_flight=len(worker.running))
            tel.counter("raptor.workers_lost").inc()

    def worker_retired(self, worker: RaptorWorker) -> None:
        """Clean shutdown: the worker CU is completing normally."""
        worker.detached = True
        if worker in self.workers:
            self.workers.remove(worker)

    # ------------------------------------------------------------- intake
    def submit_batch(self, batch: List[_Task], latency: float) -> None:
        """A client hands over a batch; it lands on the queue after the
        modeled submission latency.  The master knows about in-transit
        tasks immediately, so a ``close(drain=True)`` issued right after
        submission still drains them."""
        self.tasks_submitted += len(batch)
        tel = self.env.telemetry
        if tel is not None:
            tel.counter("raptor.tasks_submitted").inc(len(batch))
        if self.closed:
            for task in batch:
                self._finish(task, TaskResult(
                    tid=task.tid, ok=False, error="overlay closed",
                    attempts=0, submitted_at=task.submitted_at,
                    finished_at=self.env.now))
            return
        for task in batch:
            self._in_transit[task.tid] = task
        if latency > 0:
            delivery = self.env.timeout(latency)
            delivery.callbacks.append(lambda _ev: self.enqueue(batch))
        else:
            self.enqueue(batch)

    def enqueue(self, tasks: List[_Task]) -> None:
        """A client batch arrives (after the modeled submission latency)."""
        for task in tasks:
            self._in_transit.pop(task.tid, None)
        # Tasks force-settled while in transit (master death, no-drain
        # close) are already resolved; deliver only the live ones.
        live = [task for task in tasks if not task.settled]
        if not live:
            return
        if self.closed:
            # The overlay closed while the batch was in flight.
            for task in live:
                self._finish(task, TaskResult(
                    tid=task.tid, ok=False, error="overlay closed",
                    attempts=0, submitted_at=task.submitted_at,
                    finished_at=self.env.now))
            return
        self._pending.extend(live)
        self._pump()

    def make_task(self, tid: int, description, future) -> _Task:
        return _Task(tid, description, future, self.env.now)

    # ------------------------------------------------------------- dispatch
    def _pump(self) -> None:
        """Place queued tasks on free worker cores (deterministic scan)."""
        if self.node is None or self.closed:
            return
        pending = self._pending
        while pending:
            task = pending[0]
            worker = self._pick_worker(task.description.cores)
            if worker is None:
                return
            pending.popleft()
            worker.free_cores -= min(task.description.cores, worker.cores)
            if worker.free_cores > 0 and not worker.queued:
                worker.queued = True
                heappush(self._free_heap, worker.reg_index)
            worker.running.add(task.tid)
            self._running[task.tid] = task
            self.env.process(self._run_task(task, worker),
                             name=f"{self.uid}-task-{task.tid}")

    def _pick_worker(self, cores: int) -> Optional[RaptorWorker]:
        """First worker in registration order that can take the task.

        A worker is pickable iff ``free_cores >= min(cores,
        worker.cores)``: a task wider than any worker core budget still
        runs, capped at the worker's budget (documented semantics) — it
        just needs the worker fully idle.  The free-heap pops candidates
        in registration order, so the pick matches the old linear scan
        exactly; entries for drained, dead or detached workers are
        dropped, and still-viable candidates that cannot fit *this* task
        are pushed back.
        """
        heap = self._free_heap
        by_index = self._by_index
        skipped = None
        found = None
        while heap:
            index = heappop(heap)
            worker = by_index.get(index)
            if worker is None:
                continue
            worker.queued = False
            if worker.detached:
                del by_index[index]
                continue
            if worker.free_cores <= 0:
                continue
            if worker.alive and worker.free_cores >= min(cores,
                                                         worker.cores):
                found = worker
                break
            # Still attached but currently unpickable (node down but not
            # yet detached, or not enough free cores for *this* task):
            # keep it visible for later picks, as the old scan did.
            if skipped is None:
                skipped = []
            skipped.append(index)
        if skipped is not None:
            for index in skipped:
                by_index[index].queued = True
                heappush(heap, index)
        return found

    def _run_task(self, task: _Task, worker: RaptorWorker):
        """One dispatch attempt: wire out, execute, wire back, settle."""
        task.attempts += 1
        config = self.config
        desc = task.description
        payload = desc.payload_bytes
        if payload is None:
            payload = config.task_wire_bytes
        cores = min(desc.cores, worker.cores)
        try:
            yield self.overlay.network.send(
                self.node.name, worker.node.name, payload)
            task.started_at = self.env.now
            result = yield from worker.execute(desc, cores)
        except WorkerLost:
            self._release(task, worker)
            self._handle_lost_task(task, worker)
            return
        except InvariantViolation:
            # Sanitizer findings are simulator bugs — settling them as
            # a failed TaskResult would swallow the violation.
            raise
        except Exception as exc:  # payload bugs fail the task, not the sim
            self._release(task, worker)
            self._settle(task, TaskResult(
                tid=task.tid, ok=False, error=repr(exc),
                worker=worker.uid, attempts=task.attempts,
                submitted_at=task.submitted_at,
                started_at=task.started_at, finished_at=self.env.now))
            self._pump()
            return
        result_bytes = desc.result_bytes
        if result_bytes is None:
            result_bytes = config.result_wire_bytes
        yield self.overlay.network.send(
            worker.node.name, self.node.name, result_bytes)
        self._release(task, worker)
        worker.tasks_served += 1
        self._settle(task, TaskResult(
            tid=task.tid, ok=True, result=result, worker=worker.uid,
            attempts=task.attempts, submitted_at=task.submitted_at,
            started_at=task.started_at, finished_at=self.env.now))
        self._pump()

    def _release(self, task: _Task, worker: RaptorWorker) -> None:
        worker.free_cores += min(task.description.cores, worker.cores)
        worker.running.discard(task.tid)
        if not worker.detached and worker.alive and not worker.queued:
            worker.queued = True
            heappush(self._free_heap, worker.reg_index)

    def _handle_lost_task(self, task: _Task, worker: RaptorWorker) -> None:
        """Retry or fail a task whose worker died under it."""
        self.worker_lost(worker)
        if self.closed:
            # _fail_outstanding already settled it (or will not: it was
            # removed from _running by _fail_outstanding's clear).
            if task.tid in self._running:
                del self._running[task.tid]
            return
        if task.attempts <= self.config.task_retries:
            self.tasks_retried += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.counter("raptor.tasks_retried").inc()
                tel.emit("raptor", "task_retry", master=self.uid,
                         tid=task.tid, attempt=task.attempts,
                         lost_worker=worker.uid)
            del self._running[task.tid]
            self._pending.append(task)
            self._pump()
        else:
            self._settle(task, TaskResult(
                tid=task.tid, ok=False,
                error=f"lost worker {worker.uid} "
                      f"(attempt {task.attempts})",
                worker=worker.uid, attempts=task.attempts,
                submitted_at=task.submitted_at,
                started_at=task.started_at, finished_at=self.env.now))
            self._pump()

    # ------------------------------------------------------------- settling
    def _settle(self, task: _Task, envelope: TaskResult) -> None:
        self._running.pop(task.tid, None)
        self._finish(task, envelope)

    def _finish(self, task: _Task, envelope: TaskResult) -> None:
        if task.settled:
            # Already force-settled (master death / no-drain close)
            # while its dispatch process was still unwinding.
            return
        task.settled = True
        if envelope.ok:
            self.tasks_completed += 1
        else:
            self.tasks_failed += 1
        if self.config.retain_results:
            self.results.append(envelope)
        tel = self.env.telemetry
        if tel is not None:
            if envelope.ok:
                tel.counter("raptor.tasks_completed").inc()
                tel.histogram("raptor.task_latency").observe(
                    envelope.latency)
            else:
                tel.counter("raptor.tasks_failed").inc()
        if task.future is not None:
            task.future._resolve(envelope)
        self.overlay._task_settled()
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        if self._pending or self._running or self._in_transit:
            return
        if self._drained is not None and not self._drained.triggered:
            self._drained.succeed()
        waiters, self._idle_waiters = self._idle_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def idle_event(self) -> Event:
        """Fires when no task is pending, in transit or running."""
        event = Event(self.env)
        if not self._pending and not self._running and not self._in_transit:
            event.succeed()
        else:
            self._idle_waiters.append(event)
        return event

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RaptorMaster {self.uid}: {len(self.workers)} workers, "
                f"{len(self._pending)} pending, "
                f"{len(self._running)} running>")
