"""RaptorWorker: one long-lived task-serving Compute-Unit.

A worker is born inside a service Compute-Unit (see
:meth:`repro.raptor.overlay.RaptorOverlay` and the ``service`` hook on
:class:`~repro.core.description.ComputeUnitDescription`): the CU pays
the normal allocation path **once**, then the worker parks on its node
and serves a stream of function tasks dispatched by the master over the
interconnect.  Each restart of the worker CU (e.g. under a
:class:`~repro.faults.spec.RestartPolicy` after a node crash) creates a
*fresh* worker that re-registers with the master.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.sim.engine import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node
    from repro.raptor.task import RaptorConfig


class WorkerLost(RuntimeError):
    """The worker's node died while a task was dispatched to it."""


class RaptorWorker:
    """One registered worker: a node, a core budget, and running tasks."""

    def __init__(self, env: Environment, uid: str, node: "Node",
                 cores: int, config: "RaptorConfig"):
        self.env = env
        self.uid = uid
        self.node = node
        self.cores = cores
        self.config = config
        self.free_cores = cores
        #: Task ids currently dispatched to this worker.
        self.running: Set[int] = set()
        self.tasks_served = 0
        self.lost = False
        #: Registration sequence number assigned by the master; orders
        #: the dispatch free-list identically to the registration scan.
        self.reg_index = -1
        #: True once the master dropped this worker (lost or retired);
        #: stale free-list entries for it are discarded lazily.
        self.detached = False
        #: True while an entry for this worker sits in the master's
        #: free-worker heap (prevents duplicate entries).
        self.queued = False
        self._shutdown = Event(env)

    @property
    def alive(self) -> bool:
        return not self.lost and self.node.alive

    # ------------------------------------------------------------ execution
    def execute(self, description, cores: int):
        """Run one task on this worker.  Generator returning the payload
        result; raises :class:`WorkerLost` if the node dies mid-task.

        The cost model is the whole point of the overlay: a fixed
        dispatch overhead plus the modeled compute — no batch-system or
        YARN allocation, no spawner, no environment load.
        """
        node = self.node
        if not node.alive:
            raise WorkerLost(f"worker {self.uid}: node {node.name} is down")
        overhead = self.config.dispatch_overhead_seconds
        if overhead > 0:
            done = self.env.timeout(overhead)
            yield self.env.any_of([done, node.failure_event()])
            if not node.alive:
                raise WorkerLost(
                    f"worker {self.uid}: node {node.name} died in dispatch")
        if description.cpu_seconds > 0:
            compute = self.env.timeout(node.compute_seconds(
                description.cpu_seconds / cores))
            yield self.env.any_of([compute, node.failure_event()])
            if not node.alive:
                raise WorkerLost(
                    f"worker {self.uid}: node {node.name} died mid-task")
        if description.function is None:
            return None
        return description.function(*description.args,
                                    **description.kwargs)

    # ------------------------------------------------------------ lifecycle
    def shutdown(self) -> None:
        """Master-ordered shutdown; the hosting service CU returns."""
        if not self._shutdown.triggered:
            self._shutdown.succeed()

    def shutdown_event(self) -> Event:
        return self._shutdown

    def mark_lost(self) -> None:
        self.lost = True

    def __repr__(self) -> str:  # pragma: no cover
        state = "lost" if self.lost else (
            "alive" if self.node.alive else "node-down")
        return (f"<RaptorWorker {self.uid} on {self.node.name} "
                f"{self.free_cores}/{self.cores} free, {state}>")


def worker_service(overlay, ctx):
    """The service generator a worker Compute-Unit runs.

    Creates a fresh :class:`RaptorWorker` bound to the CU's node,
    registers it with the overlay's master (one message over the
    fabric), then parks until shutdown or node death.  Node death
    raises, failing the CU — composing with the Unit-Manager's
    :class:`~repro.faults.spec.RestartPolicy`, whose resubmission runs
    this service again and registers a *new* worker.
    """
    from repro.core.agent.executor import ExecutionError

    master = overlay.master
    env = ctx.env
    if master.closed:
        # The overlay shut down while this CU was in the queue (e.g. a
        # restart attempt racing close()): nothing to serve.
        return "raptor-worker-stale"
    worker = RaptorWorker(
        env, overlay.session.next_uid("rworker"), ctx.node, ctx.cores,
        overlay.config)
    # Wait for the master to be placed, then register over the fabric.
    yield master.ready_event()
    if master.closed:
        return "raptor-worker-stale"
    yield overlay.network.send(ctx.node.name, master.node.name,
                               overlay.config.register_wire_bytes)
    if not ctx.node.alive:
        raise ExecutionError(
            f"worker node {ctx.node.name} died during registration")
    master.register_worker(worker)
    try:
        yield env.any_of([worker.shutdown_event(),
                          ctx.node.failure_event()])
    finally:
        if not ctx.node.alive:
            master.worker_lost(worker)
    if not ctx.node.alive:
        raise ExecutionError(
            f"worker {worker.uid}: node {ctx.node.name} died")
    master.worker_retired(worker)
    return {"worker": worker.uid, "tasks_served": worker.tasks_served}
