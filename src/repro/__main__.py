"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro figure5              # pilot + CU startup tables
    python -m repro figure6 [--quick]    # the K-Means grid
    python -m repro ablations            # A1-A3
    python -m repro sensitivity          # the Lustre-bandwidth sweep
    python -m repro all [--quick]        # everything above
    python -m repro trace [--output DIR] # one traced K-Means run
    python -m repro sweep figure6 --jobs 4 --output results.json
    python -m repro sweep --list         # list the registered grids
    python -m repro sweep chaos --run-dir runs/c1       # crash-safe
    python -m repro sweep chaos --run-dir runs/c1 --resume
    python -m repro lint [--check]       # determinism linter (simlint)
    python -m repro lint --flow [--check]   # + cross-module taint (SIM10x)
    python -m repro audit-state [--check]   # snapshot-safety audit (SIM11x)
    python -m repro checkpoint bag --store ckpt --at 120
    python -m repro restore ckpt [--until T]

``--quick`` restricts Figure 6 to the smallest and largest scenarios
at 8 and 32 tasks (16 cells instead of 36).

``trace`` runs a single telemetry-enabled K-Means cell and writes
Chrome ``trace_event`` JSON (Perfetto/chrome://tracing), span, event
and metrics files — see :mod:`repro.telemetry`.

``sweep`` runs a cell grid — one of ``figure5``, ``figure6``,
``ablations``, ``sensitivity``, ``chaos`` (fault injection),
``raptor`` (the task-overlay throughput comparison) or ``service``
(the multi-tenant pilot service) — over a process
pool (parallel by default, ``--jobs 1`` for the sequential reference
path) and writes a structured JSON result; ``sweep --list`` (or plain
``sweep``) prints the registered grid names — see
:mod:`repro.experiments.sweeps`.  With ``--run-dir`` the sweep is
crash-safe: the grid's identity is committed up front and every
finished cell is journaled durably, so a killed run resumed with
``--resume`` re-runs only the unfinished cells and produces a
byte-identical aggregate digest; ``--max-cells N`` bounds one
invocation for incremental runs.

``lint`` runs simlint, the determinism linter, over the simulation
sources (wall-clock calls, unseeded RNG, salted ``hash()``, module
globals, unordered iteration, swallowed exceptions) — see
:mod:`repro.analysis.simlint`.  ``--check`` makes new-vs-baseline
findings a non-zero exit for CI.  ``--flow`` adds the import-graph-
aware SIM10x taint pass (:mod:`repro.analysis.simflow`): wall-clock /
global-RNG / salted-hash / process-environment values tracked across
assignments, returns and module boundaries until they reach an
event-schedule, digest, aggregate-row or telemetry sink.

``audit-state`` walks every class reachable from ``Session`` /
``Environment`` / ``PilotService`` and classifies each attribute as
snapshot-safe or hazardous (open handles, live generators, executor
handles, bound callables, module-global backrefs — SIM11x), deriving
the committed ``state-manifest.json`` contract the checkpoint layer
serializes against — see :mod:`repro.analysis.snapshot`.  ``--check``
fails on manifest (= checkpoint-schema) drift or un-baselined hazards;
``--update-manifest`` rewrites the manifest.  Both passes share
``lint``'s suppression and baseline machinery and a ``--graph-cache``
that reuses one import-graph build across CI steps.

``checkpoint`` launches a registered scenario (``checkpoint --list``
names them), optionally advances the clock with ``--at T``, and writes
a crash-safe snapshot into a content-addressed store; ``restore``
rebuilds the session in a fresh process by deterministic replay and
*proves* the state digest matches before exiting 0 — see
:mod:`repro.persist`.

Every verb is declared in the :data:`repro.cli.REGISTRY` command
registry (name, arguments, runner, exit codes); renamed flags keep
their old spellings as deprecation-gated aliases (``--out`` for
``--output`` on ``sweep``/``trace``, ``--update`` for
``--update-manifest`` on ``audit-state``).

``main`` returns the process exit code (0 success, 2 usage errors)
instead of raising ``SystemExit``, so it doubles as the console-script
entry point.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
