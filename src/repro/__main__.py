"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro figure5              # pilot + CU startup tables
    python -m repro figure6 [--quick]    # the K-Means grid
    python -m repro ablations            # A1-A3
    python -m repro sensitivity          # the Lustre-bandwidth sweep
    python -m repro all [--quick]        # everything above
    python -m repro trace [--out DIR]    # one traced K-Means run
    python -m repro sweep figure6 --jobs 4 --out results.json
    python -m repro sweep --list         # list the registered grids
    python -m repro lint [--check]       # determinism linter (simlint)
    python -m repro lint --flow [--check]   # + cross-module taint (SIM10x)
    python -m repro audit-state [--check]   # snapshot-safety audit (SIM11x)

``--quick`` restricts Figure 6 to the smallest and largest scenarios
at 8 and 32 tasks (16 cells instead of 36).

``trace`` runs a single telemetry-enabled K-Means cell and writes
Chrome ``trace_event`` JSON (Perfetto/chrome://tracing), span, event
and metrics files — see :mod:`repro.telemetry`.

``sweep`` runs a cell grid — one of ``figure5``, ``figure6``,
``ablations``, ``sensitivity``, ``chaos`` (fault injection),
``raptor`` (the task-overlay throughput comparison) or ``service``
(the multi-tenant pilot service) — over a process
pool (parallel by default, ``--jobs 1`` for the sequential reference
path) and writes a structured JSON result; ``sweep --list`` (or plain
``sweep``) prints the registered grid names — see
:mod:`repro.experiments.sweeps`.

``lint`` runs simlint, the determinism linter, over the simulation
sources (wall-clock calls, unseeded RNG, salted ``hash()``, module
globals, unordered iteration, swallowed exceptions) — see
:mod:`repro.analysis.simlint`.  ``--check`` makes new-vs-baseline
findings a non-zero exit for CI.  ``--flow`` adds the import-graph-
aware SIM10x taint pass (:mod:`repro.analysis.simflow`): wall-clock /
global-RNG / salted-hash / process-environment values tracked across
assignments, returns and module boundaries until they reach an
event-schedule, digest, aggregate-row or telemetry sink.

``audit-state`` walks every class reachable from ``Session`` /
``Environment`` / ``PilotService`` and classifies each attribute as
snapshot-safe or hazardous (open handles, live generators, executor
handles, bound callables, module-global backrefs — SIM11x), deriving
the committed ``state-manifest.json`` contract the checkpoint layer
serializes against — see :mod:`repro.analysis.snapshot`.  ``--check``
fails on manifest drift or un-baselined hazards; ``--update`` rewrites
the manifest.  Both passes share ``lint``'s suppression and baseline
machinery and a ``--graph-cache`` that reuses one import-graph build
across CI steps.

``main`` returns the process exit code (0 success, 2 usage errors)
instead of raising ``SystemExit``, so it doubles as the console-script
entry point.
"""

from __future__ import annotations

import argparse
import sys


def _figure5() -> None:
    from repro.experiments import (
        run_figure5_pilot_startup,
        run_figure5_unit_startup,
    )
    from repro.experiments.tables import figure5_report
    print(figure5_report(run_figure5_pilot_startup(),
                         run_figure5_unit_startup()))


def _figure6(quick: bool) -> None:
    from repro.experiments import run_figure6
    from repro.experiments.tables import figure6_report
    kwargs = {}
    if quick:
        kwargs = {"scenarios": [(10_000, 5_000), (1_000_000, 50)],
                  "task_counts": [8, 32]}
    print(figure6_report(run_figure6(**kwargs)))


def _ablations() -> None:
    from repro.experiments.ablations import (
        run_am_reuse,
        run_integration_level,
        run_spark_deploy_mode,
    )
    from repro.experiments.tables import format_table
    a1 = run_integration_level()
    print("A1 — YARN integration level (CU startup)")
    print(format_table(["wiring", "CU startup (s)", "WAN round-trips"],
                       [(r.wiring, r.unit_startup, r.wan_roundtrips)
                        for r in a1]))
    a2 = run_spark_deploy_mode()
    print("\nA2 — Spark deployment mode (cluster-ready time)")
    print(format_table(["mode", "cluster ready (s)", "frameworks"],
                       [(r.mode, r.cluster_ready, r.frameworks_started)
                        for r in a2]))
    a3 = run_am_reuse()
    print("\nA3 — Application Master re-use (warm CU startup)")
    print(format_table(["mode", "warm CU startup (s)"],
                       [(r.mode, r.warm_unit_startup) for r in a3]))


def _sensitivity() -> None:
    from repro.experiments.sensitivity import (
        crossover_bandwidth,
        sweep_lustre_bandwidth,
    )
    from repro.experiments.tables import format_table
    rows = sweep_lustre_bandwidth()
    print("S1 — YARN advantage vs job-visible Lustre bandwidth")
    print(format_table(
        ["lustre share (MB/s)", "RP (s)", "RP-YARN (s)", "advantage (%)"],
        [(f"{r.lustre_bw / 1e6:.0f}", r.rp_runtime, r.yarn_runtime,
          r.yarn_advantage * 100) for r in rows]))
    crossover = crossover_bandwidth(rows)
    if crossover is not None:
        print(f"crossover at ~{crossover / 1e6:.0f} MB/s")


def _trace(args: argparse.Namespace) -> int:
    from repro.telemetry.runner import format_report, run_traced_kmeans
    try:
        run = run_traced_kmeans(
            machine=args.machine, flavor=args.flavor, points=args.points,
            clusters=args.clusters, ntasks=args.ntasks,
            iterations=args.iterations, seed=args.seed, out_dir=args.out)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(run))
    return 0 if run.centroids_ok else 1


def _sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweeps import GRIDS, build_cells, run_sweep
    from repro.experiments.tables import format_table
    if args.list or args.grid is None:
        # Discoverability: list every registered grid with its size, so
        # new grids never need a trip through the source.
        print("registered sweep grids:")
        for name in GRIDS:
            cells = build_cells(name, root_seed=args.seed,
                                quick=args.quick)
            print(f"  {name:<12} {len(cells)} cells")
        if args.grid is None and not args.list:
            print("\nusage: python -m repro sweep GRID [--jobs N] "
                  "[--quick] [--out FILE]")
        return 0
    try:
        run = run_sweep(args.grid, root_seed=args.seed, jobs=args.jobs,
                        quick=args.quick)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"sweep {run.grid}: {len(run.results)} cells, "
          f"jobs={run.jobs}, wall {run.wall_seconds:.2f}s, "
          f"digest {run.digest()[:12]}")
    print(format_table(
        ["cell", "wall (s)"],
        [(r["key"], r["wall_seconds"]) for r in run.results]))
    if run.grid == "raptor":
        # The headline comparison: overlay vs. per-unit tasks/sec.
        for result in run.results:
            for row in result["rows"]:
                if "speedup" in row:
                    print(f"{row['ntasks']} tasks: overlay "
                          f"{row['overlay_tasks_per_sec']:.0f} tasks/s "
                          f"vs per-unit YARN "
                          f"{row['per_unit_tasks_per_sec']:.2f} tasks/s "
                          f"-> {row['speedup']:.0f}x")
                elif "identical" in row:
                    state = "identical" if row["identical"] else "DIVERGED"
                    print(f"equivalence ({row['ntasks']} tasks): "
                          f"overlay and per-unit results {state}")
    if args.out:
        import json
        with open(args.out, "w") as fh:
            json.dump(run.report(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


def _lint(args: argparse.Namespace) -> int:
    from repro.analysis.simlint import lint_command
    return lint_command(
        paths=args.paths, output=args.format, check=args.check,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        list_rules=args.list_rules,
        flow=args.flow, graph_cache=args.graph_cache)


def _audit_state(args: argparse.Namespace) -> int:
    from repro.analysis.snapshot import audit_command
    return audit_command(
        paths=args.paths, roots=args.root or None,
        manifest_path=args.manifest, baseline_path=args.baseline,
        output=args.format, check=args.check, update=args.update,
        graph_cache=args.graph_cache)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments on the "
                    "simulated testbed.")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")

    for name in ("figure5", "figure6", "ablations", "sensitivity", "all"):
        p = sub.add_parser(name, help=f"run the {name} experiment(s)")
        if name in ("figure6", "all"):
            p.add_argument("--quick", action="store_true",
                           help="figure6: run a reduced 16-cell grid")

    from repro.experiments.sweeps import GRIDS
    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid over a process pool "
             f"({', '.join(GRIDS)})")
    sweep.add_argument("grid", nargs="?", default=None,
                       choices=list(GRIDS),
                       help="grid to run; omit (or --list) to list the "
                            "registered grids")
    sweep.add_argument("--list", action="store_true",
                       help="list the registered sweep grids and exit")
    sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: all cores; "
                            "1 = sequential reference path)")
    sweep.add_argument("--seed", type=int, default=42,
                       help="root seed; per-cell seeds derive from it")
    sweep.add_argument("--quick", action="store_true",
                       help="figure6/chaos/raptor/service: run a "
                            "reduced grid")
    sweep.add_argument("--out", default=None, metavar="FILE",
                       help="write the structured JSON result here")

    lint = sub.add_parser(
        "lint",
        help="run simlint, the determinism linter, over the sources")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json"], dest="format",
                      help="finding output format")
    lint.add_argument("--check", action="store_true",
                      help="exit 1 when findings differ from the "
                           "baseline (CI mode)")
    lint.add_argument("--baseline", default="simlint-baseline.json",
                      metavar="FILE",
                      help="baseline file of accepted findings")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from this run's "
                           "findings")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the registered rules and exit")
    lint.add_argument("--flow", action="store_true",
                      help="also run the cross-module SIM10x taint "
                           "pass (import-graph-aware)")
    lint.add_argument("--graph-cache", default=None, metavar="FILE",
                      help="cache the import-graph analysis here "
                           "(shared with audit-state in CI)")

    audit = sub.add_parser(
        "audit-state",
        help="audit snapshot state reachable from Session/Environment/"
             "PilotService (SIM11x)")
    audit.add_argument("paths", nargs="*", default=["src/repro"],
                       help="files or directories to analyze "
                            "(default: src/repro)")
    audit.add_argument("--root", action="append", default=[],
                       metavar="DOTTED.Class",
                       help="override the audited root classes "
                            "(repeatable)")
    audit.add_argument("--manifest", default="state-manifest.json",
                       metavar="FILE",
                       help="committed state-manifest contract file")
    audit.add_argument("--baseline", default="simlint-baseline.json",
                       metavar="FILE",
                       help="shared baseline ledger of accepted "
                            "findings")
    audit.add_argument("--format", default="text",
                       choices=["text", "json"], dest="format",
                       help="finding output format")
    audit.add_argument("--check", action="store_true",
                       help="exit 1 on manifest drift or findings "
                            "that differ from the baseline (CI mode)")
    audit.add_argument("--update", action="store_true",
                       help="rewrite the state manifest from this run")
    audit.add_argument("--graph-cache", default=None, metavar="FILE",
                       help="cache the import-graph analysis here "
                            "(shared with lint --flow in CI)")

    trace = sub.add_parser(
        "trace",
        help="run one telemetry-enabled K-Means cell and export traces")
    trace.add_argument("--machine", default="stampede",
                       choices=["stampede", "wrangler"])
    trace.add_argument("--flavor", default="RP-YARN",
                       choices=["RP", "RP-YARN"],
                       help="plain pilot (fork) or Mode I YARN pilot")
    trace.add_argument("--points", type=int, default=10_000)
    trace.add_argument("--clusters", type=int, default=8)
    trace.add_argument("--ntasks", type=int, default=8)
    trace.add_argument("--iterations", type=int, default=2)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--out", default=None, metavar="DIR",
                       help="write trace.json / spans.jsonl / "
                            "events.jsonl / metrics.jsonl here")
    return parser


def main(argv=None) -> int:
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:  # bad args (or --help): report, don't raise
        code = exc.code
        return code if isinstance(code, int) else 2

    if args.command == "lint":
        return _lint(args)
    if args.command == "audit-state":
        return _audit_state(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command in ("figure5", "all"):
        _figure5()
        print()
    if args.command in ("figure6", "all"):
        _figure6(args.quick)
        print()
    if args.command in ("ablations", "all"):
        _ablations()
        print()
    if args.command in ("sensitivity", "all"):
        _sensitivity()
    return 0


if __name__ == "__main__":
    sys.exit(main())
