"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro figure5              # pilot + CU startup tables
    python -m repro figure6 [--quick]    # the K-Means grid
    python -m repro ablations            # A1-A3
    python -m repro sensitivity          # the Lustre-bandwidth sweep
    python -m repro all [--quick]        # everything above

``--quick`` restricts Figure 6 to the smallest and largest scenarios
at 8 and 32 tasks (8 cells instead of 36).
"""

from __future__ import annotations

import argparse
import sys


def _figure5() -> None:
    from repro.experiments import (
        run_figure5_pilot_startup,
        run_figure5_unit_startup,
    )
    from repro.experiments.tables import figure5_report
    print(figure5_report(run_figure5_pilot_startup(),
                         run_figure5_unit_startup()))


def _figure6(quick: bool) -> None:
    from repro.experiments import run_figure6
    from repro.experiments.tables import figure6_report
    kwargs = {}
    if quick:
        kwargs = {"scenarios": [(10_000, 5_000), (1_000_000, 50)],
                  "task_counts": [8, 32]}
    print(figure6_report(run_figure6(**kwargs)))


def _ablations() -> None:
    from repro.experiments.ablations import (
        run_am_reuse,
        run_integration_level,
        run_spark_deploy_mode,
    )
    from repro.experiments.tables import format_table
    a1 = run_integration_level()
    print("A1 — YARN integration level (CU startup)")
    print(format_table(["wiring", "CU startup (s)", "WAN round-trips"],
                       [(r.wiring, r.unit_startup, r.wan_roundtrips)
                        for r in a1]))
    a2 = run_spark_deploy_mode()
    print("\nA2 — Spark deployment mode (cluster-ready time)")
    print(format_table(["mode", "cluster ready (s)", "frameworks"],
                       [(r.mode, r.cluster_ready, r.frameworks_started)
                        for r in a2]))
    a3 = run_am_reuse()
    print("\nA3 — Application Master re-use (warm CU startup)")
    print(format_table(["mode", "warm CU startup (s)"],
                       [(r.mode, r.warm_unit_startup) for r in a3]))


def _sensitivity() -> None:
    from repro.experiments.sensitivity import (
        crossover_bandwidth,
        sweep_lustre_bandwidth,
    )
    from repro.experiments.tables import format_table
    rows = sweep_lustre_bandwidth()
    print("S1 — YARN advantage vs job-visible Lustre bandwidth")
    print(format_table(
        ["lustre share (MB/s)", "RP (s)", "RP-YARN (s)", "advantage (%)"],
        [(f"{r.lustre_bw / 1e6:.0f}", r.rp_runtime, r.yarn_runtime,
          r.yarn_advantage * 100) for r in rows]))
    crossover = crossover_bandwidth(rows)
    if crossover is not None:
        print(f"crossover at ~{crossover / 1e6:.0f} MB/s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments on the "
                    "simulated testbed.")
    parser.add_argument("experiment",
                        choices=["figure5", "figure6", "ablations",
                                 "sensitivity", "all"],
                        help="which experiment to run")
    parser.add_argument("--quick", action="store_true",
                        help="figure6: run a reduced 8-cell grid")
    args = parser.parse_args(argv)

    if args.experiment in ("figure5", "all"):
        _figure5()
        print()
    if args.experiment in ("figure6", "all"):
        _figure6(args.quick)
        print()
    if args.experiment in ("ablations", "all"):
        _ablations()
        print()
    if args.experiment in ("sensitivity", "all"):
        _sensitivity()
    return 0


if __name__ == "__main__":
    sys.exit(main())
