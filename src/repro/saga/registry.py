"""Simulated sites and the registry SAGA URLs resolve against."""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.machine import Machine, MachineSpec
from repro.rms import RmsConfig, make_scheduler
from repro.saga.filesystem import FileCatalog
from repro.sim.engine import Environment


class Site:
    """One simulated resource: machine + batch system + scratch space.

    ``hostname`` is what SAGA URLs refer to (defaults to the machine
    template name, e.g. ``slurm://stampede``).
    """

    def __init__(self, env: Environment, spec: MachineSpec,
                 rms_kind: str = "slurm",
                 rms_config: Optional[RmsConfig] = None,
                 hostname: Optional[str] = None):
        self.env = env
        self.machine = Machine(env, spec)
        self.rms_kind = rms_kind
        self.rms = make_scheduler(rms_kind, env, self.machine, rms_config)
        self.scratch = FileCatalog(env, self.machine.shared_fs,
                                   name=f"{spec.name}-scratch")
        self.hostname = hostname or spec.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Site {self.hostname} ({self.rms_kind})>"


class Registry:
    """Maps hostnames to :class:`Site` objects."""

    def __init__(self):
        self._sites: Dict[str, Site] = {}

    def register(self, site: Site) -> Site:
        self._sites[site.hostname] = site
        return site

    def lookup(self, hostname: str) -> Site:
        try:
            return self._sites[hostname]
        except KeyError:
            raise KeyError(
                f"no registered site {hostname!r}; known: "
                f"{sorted(self._sites)}") from None

    def clear(self) -> None:
        self._sites.clear()

    def __contains__(self, hostname: str) -> bool:
        return hostname in self._sites


_DEFAULT = Registry()


def default_registry() -> Registry:
    """The process-wide registry used when none is passed explicitly."""
    return _DEFAULT
