"""SAGA filesystem: named files over storage volumes, timed copies.

A :class:`FileCatalog` gives a :class:`~repro.cluster.storage.StorageVolume`
a path namespace (the volume itself only accounts bytes).  ``copy_file``
moves a file between catalogs with properly-modeled read, wire and write
costs — the mechanism behind Compute-Unit stage-in/out and the Hadoop
tarball staging of Mode I.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.cluster.storage import StorageVolume
from repro.sim.engine import Environment, Event


class FileCatalog:
    """A path -> size namespace over one storage volume."""

    def __init__(self, env: Environment, volume: StorageVolume,
                 name: str = "catalog"):
        self.env = env
        self.volume = volume
        self.name = name
        self._files: Dict[str, float] = {}

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> float:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(f"{self.name}:{path}") from None

    def list(self, prefix: str = "") -> Iterator[str]:
        """Paths under ``prefix``, sorted."""
        return iter(sorted(p for p in self._files if p.startswith(prefix)))

    def create(self, path: str, nbytes: float) -> Event:
        """Write a new file; completion event after the volume write."""
        if path in self._files:
            raise FileExistsError(f"{self.name}:{path}")
        event = self.volume.write(nbytes)
        self._files[path] = nbytes
        return event

    def touch(self, path: str, nbytes: float) -> None:
        """Register a file without charging I/O (pre-existing data)."""
        self.volume.used += nbytes
        self._files[path] = nbytes

    def read(self, path: str) -> Event:
        """Read the whole file; completion under volume fair-sharing."""
        return self.volume.read(self.size(path))

    def delete(self, path: str) -> None:
        nbytes = self.size(path)
        self.volume.delete(nbytes)
        del self._files[path]

    def __len__(self) -> int:
        return len(self._files)


def copy_file(env: Environment, src: FileCatalog, src_path: str,
              dst: FileCatalog, dst_path: str,
              wire_bw: Optional[float] = None):
    """Copy a file between catalogs.  Returns a process event.

    Same-volume copies pay read+write on the shared pipe; cross-volume
    copies pay the read, an optional wire transfer at ``wire_bw``
    (bytes/s — e.g. the WAN for inter-site staging), and the write.
    Overwrites at the destination are allowed, as with ``saga.filesystem
    .File.copy(..., OVERWRITE)``.
    """
    nbytes = src.size(src_path)

    def _copy():
        yield src.read(src_path)
        if wire_bw is not None and nbytes > 0:
            yield env.timeout(nbytes / wire_bw)
        if dst.exists(dst_path):
            dst.delete(dst_path)
        yield dst.create(dst_path, nbytes)

    return env.process(_copy(), name=f"copy:{src_path}->{dst_path}")
