"""The SAGA job API: Service, Description, Job.

Mirrors radical.saga's shape::

    service = Service("slurm://stampede")
    desc = Description(executable="agent.py", number_of_nodes=2,
                       wall_time_limit=60)
    job = service.create_job(desc)
    job.run()
    yield job.wait()     # simulation processes yield instead of blocking

The URL scheme must match the site's registered batch system — a
``slurm://`` URL against a Torque site raises, as the real adaptor
would fail to find the commands it shells out to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.rms.job import BatchJob, JobDescription, JobState
from repro.saga.registry import Registry, Site, default_registry
from repro.saga.url import Url

#: SAGA job states (string constants, as in saga-python).
NEW = "New"
PENDING = "Pending"
RUNNING = "Running"
DONE = "Done"
FAILED = "Failed"
CANCELED = "Canceled"

_STATE_MAP = {
    JobState.NEW: NEW,
    JobState.PENDING: PENDING,
    JobState.RUNNING: RUNNING,
    JobState.DONE: DONE,
    JobState.FAILED: FAILED,
    JobState.CANCELED: CANCELED,
    JobState.TIMEOUT: FAILED,
}

#: Which RMS kinds each URL scheme may drive.
_SCHEME_TO_RMS = {
    "slurm": {"slurm"},
    "torque": {"torque"},
    "pbs": {"torque"},
    "sge": {"sge"},
    "fork": {"slurm", "torque", "sge"},  # fork runs on whatever login node
}


@dataclass
class Description:
    """SAGA job description (attribute names follow saga-python)."""

    executable: str = "/bin/true"
    arguments: tuple = ()
    number_of_nodes: int = 1
    wall_time_limit: float = 60.0      # minutes, as in SAGA
    queue: str = "normal"
    project: Optional[str] = None
    environment: Dict[str, str] = field(default_factory=dict)
    #: Extension: simulated payload run on the allocation.
    payload: Optional[Callable[..., Any]] = None

    def to_rms(self) -> JobDescription:
        """Translate to the batch system's native description."""
        return JobDescription(
            executable=self.executable,
            arguments=tuple(self.arguments),
            num_nodes=self.number_of_nodes,
            walltime=self.wall_time_limit * 60.0,
            queue=self.queue,
            project=self.project,
            payload=self.payload,
            environment=dict(self.environment),
        )


class Job:
    """Handle to a job created through a SAGA service."""

    def __init__(self, service: "Service", description: Description):
        self.service = service
        self.description = description
        self._batch_job: Optional[BatchJob] = None

    @property
    def id(self) -> Optional[str]:
        if self._batch_job is None:
            return None
        return f"[{self.service.url}]-[{self._batch_job.job_id}]"

    @property
    def state(self) -> str:
        if self._batch_job is None:
            return NEW
        return _STATE_MAP[self._batch_job.state]

    @property
    def batch_job(self) -> Optional[BatchJob]:
        """The underlying RMS job (simulation-level introspection)."""
        return self._batch_job

    def run(self) -> "Job":
        """Submit to the site's batch system."""
        if self._batch_job is not None:
            raise RuntimeError("job already submitted")
        self._batch_job = self.service.site.rms.submit(
            self.description.to_rms())
        return self

    def wait(self):
        """Event that fires when the job reaches a final state."""
        if self._batch_job is None:
            raise RuntimeError("job not yet submitted")
        return self._batch_job.finished

    def wait_started(self):
        """Event that fires when the job starts running."""
        if self._batch_job is None:
            raise RuntimeError("job not yet submitted")
        return self._batch_job.started

    def cancel(self) -> None:
        if self._batch_job is None:
            raise RuntimeError("job not yet submitted")
        self.service.site.rms.cancel(self._batch_job.job_id)


class Service:
    """A SAGA job service bound to one site via its URL."""

    def __init__(self, url: str, registry: Optional[Registry] = None):
        self.url = Url.parse(url)
        self.registry = registry or default_registry()
        self.site: Site = self.registry.lookup(self.url.host)
        allowed = _SCHEME_TO_RMS.get(self.url.scheme)
        if allowed is None:
            raise ValueError(f"unsupported SAGA scheme {self.url.scheme!r}")
        if self.site.rms_kind not in allowed:
            raise ValueError(
                f"adaptor mismatch: {self.url.scheme}:// cannot drive a "
                f"{self.site.rms_kind} site ({self.site.hostname})")
        self.jobs: list[Job] = []

    def create_job(self, description: Description) -> Job:
        job = Job(self, description)
        self.jobs.append(job)
        return job
