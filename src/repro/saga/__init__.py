"""SAGA: a standardized access layer to heterogeneous infrastructure.

A faithful-in-shape reduction of SAGA-Python (radical.saga), the
interoperability layer both BigJob and RADICAL-Pilot build on (paper
§II): a uniform job API whose URL scheme selects a backend *adaptor*
(``slurm://``, ``torque://``, ``sge://``, ``fork://``), plus a small
filesystem API for staging.

Simulated sites (machine + batch system + scratch filesystem) register
with a :class:`Registry`; SAGA URLs resolve against it.
"""

from repro.saga.filesystem import FileCatalog, copy_file
from repro.saga.job import Description, Job, Service
from repro.saga.registry import Registry, Site, default_registry
from repro.saga.url import Url

__all__ = [
    "Description",
    "FileCatalog",
    "Job",
    "Registry",
    "Service",
    "Site",
    "Url",
    "copy_file",
    "default_registry",
]
