"""Minimal SAGA URL parsing: ``scheme://host/path``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Url:
    """A parsed SAGA URL."""

    scheme: str
    host: str
    path: str = "/"

    @classmethod
    def parse(cls, url: str) -> "Url":
        """Parse ``scheme://host/path`` (path optional)."""
        if "://" not in url:
            raise ValueError(f"malformed SAGA URL {url!r} (missing scheme)")
        scheme, _, rest = url.partition("://")
        if not scheme:
            raise ValueError(f"malformed SAGA URL {url!r} (empty scheme)")
        host, slash, path = rest.partition("/")
        if not host:
            raise ValueError(f"malformed SAGA URL {url!r} (empty host)")
        return cls(scheme=scheme.lower(), host=host, path=slash + path or "/")

    def __str__(self) -> str:
        return f"{self.scheme}://{self.host}{self.path}"
