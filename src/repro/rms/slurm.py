"""SLURM dialect of the batch-scheduler engine."""

from __future__ import annotations

from typing import Dict, List

from repro.rms.base import BatchScheduler
from repro.rms.job import BatchJob


def compress_nodelist(names: List[str]) -> str:
    """Render SLURM's compressed hostlist format, e.g. ``c[401-403,410]``.

    Assumes homogeneous ``<prefix><digits>`` names, which our machine
    templates guarantee.
    """
    if not names:
        return ""
    prefix = names[0].rstrip("0123456789")
    if not all(n.startswith(prefix) and n[len(prefix):].isdigit()
               for n in names):
        return ",".join(names)
    width = len(names[0]) - len(prefix)
    numbers = sorted(int(n[len(prefix):]) for n in names)
    ranges = []
    lo = hi = numbers[0]
    for n in numbers[1:]:
        if n == hi + 1:
            hi = n
        else:
            ranges.append((lo, hi))
            lo = hi = n
    ranges.append((lo, hi))
    parts = [f"{lo:0{width}d}" if lo == hi else
             f"{lo:0{width}d}-{hi:0{width}d}" for lo, hi in ranges]
    return f"{prefix}[{','.join(parts)}]"


def expand_nodelist(compressed: str) -> List[str]:
    """Inverse of :func:`compress_nodelist`."""
    if "[" not in compressed:
        return [n for n in compressed.split(",") if n]
    prefix, _, rest = compressed.partition("[")
    body = rest.rstrip("]")
    names = []
    for part in body.split(","):
        if "-" in part:
            lo_s, hi_s = part.split("-")
            width = len(lo_s)
            for n in range(int(lo_s), int(hi_s) + 1):
                names.append(f"{prefix}{n:0{width}d}")
        else:
            names.append(f"{prefix}{part}")
    return names


class SlurmScheduler(BatchScheduler):
    """SLURM: ``sbatch`` submission, ``SLURM_*`` environment export."""

    kind = "slurm"

    def export_environment(self, job: BatchJob) -> Dict[str, str]:
        alloc = job.allocation
        return {
            "SLURM_JOB_ID": job.job_id.split(".")[-1],
            "SLURM_NODELIST": compress_nodelist(alloc.node_names),
            "SLURM_NNODES": str(len(alloc)),
            "SLURM_CPUS_ON_NODE": str(alloc.nodes[0].num_cores),
            "SLURM_JOB_NUM_NODES": str(len(alloc)),
            "SLURM_MEM_PER_NODE": str(
                int(alloc.nodes[0].memory_bytes // (1024 ** 2))),
        }
