"""Batch job descriptions, states and handles."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional


class JobState(enum.Enum):
    """Lifecycle of a batch job.

    Legal transitions::

        NEW -> PENDING -> RUNNING -> {DONE, FAILED, CANCELED, TIMEOUT}
        NEW -> PENDING -> CANCELED
    """

    NEW = "new"
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELED = "canceled"
    TIMEOUT = "timeout"

    @property
    def is_final(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED,
                        JobState.CANCELED, JobState.TIMEOUT)


#: Allowed state transitions, used to assert legality at runtime.
LEGAL_TRANSITIONS = {
    JobState.NEW: {JobState.PENDING, JobState.CANCELED},
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED,
                       JobState.CANCELED, JobState.TIMEOUT},
}


@dataclass
class JobDescription:
    """What a user asks the batch system for (``sbatch``/``qsub`` flags).

    ``payload`` is the simulated executable: a callable
    ``payload(env, job) -> generator`` spawned as a process when the job
    starts.  ``executable``/``arguments`` are carried for SAGA fidelity
    and logging.
    """

    executable: str = "/bin/true"
    arguments: tuple = ()
    num_nodes: int = 1
    walltime: float = 3600.0            # seconds
    queue: str = "normal"
    project: Optional[str] = None
    payload: Optional[Callable[..., Any]] = None
    environment: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >=1, got {self.num_nodes}")
        if self.walltime <= 0:
            raise ValueError(f"walltime must be positive, got {self.walltime}")


class BatchJob:
    """Handle to a submitted job: state, events, allocation, env vars."""

    def __init__(self, env, job_id: str, description: JobDescription):
        self.env = env
        self.job_id = job_id
        self.description = description
        self.state = JobState.NEW
        self.allocation = None           # set on dispatch
        self.env_vars: Dict[str, str] = {}
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.exit_code: Optional[int] = None
        self.fail_reason: Optional[str] = None
        self.started = env.event()       # fires on RUNNING
        self.finished = env.event()      # fires on any final state
        self._history = [(env.now, JobState.NEW)]

    @property
    def history(self):
        """(time, state) pairs in transition order."""
        return tuple(self._history)

    def advance(self, new_state: JobState, reason: Optional[str] = None) -> None:
        """Move to ``new_state``, asserting the transition is legal."""
        legal = LEGAL_TRANSITIONS.get(self.state, set())
        if new_state not in legal:
            raise ValueError(
                f"illegal job transition {self.state.value} -> "
                f"{new_state.value} for {self.job_id}")
        self.state = new_state
        self._history.append((self.env.now, new_state))
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("rms", "job_state", uid=self.job_id,
                     state=new_state.value,
                     nodes=self.description.num_nodes)
        if new_state is JobState.RUNNING:
            self.start_time = self.env.now
            self.started.succeed(self)
        elif new_state.is_final:
            self.end_time = self.env.now
            self.fail_reason = reason
            if not self.started.triggered:
                # canceled while pending: unblock anyone awaiting start
                self.started.fail(RuntimeError(
                    f"job {self.job_id} reached {new_state.value} "
                    "without starting"))
            self.finished.succeed(self)

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent pending, once running."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover
        return f"<BatchJob {self.job_id} {self.state.value}>"
