"""SGE (Sun Grid Engine) dialect of the batch-scheduler engine."""

from __future__ import annotations

from typing import Dict

from repro.rms.base import BatchScheduler
from repro.rms.job import BatchJob


class SgeScheduler(BatchScheduler):
    """SGE: ``qsub`` submission, ``PE_HOSTFILE``-style environment export.

    As with Torque, ``PE_HOSTFILE`` carries the file *content*: one line
    per node in the SGE format ``<host> <slots> <queue> <processors>``.
    """

    kind = "sge"

    def export_environment(self, job: BatchJob) -> Dict[str, str]:
        alloc = job.allocation
        hostfile_lines = [
            f"{node.name} {node.num_cores} {job.description.queue}@"
            f"{node.name} UNDEFINED"
            for node in alloc.nodes
        ]
        return {
            "JOB_ID": job.job_id.split(".")[-1],
            "PE_HOSTFILE": "\n".join(hostfile_lines),
            "NSLOTS": str(alloc.total_cores),
            "NHOSTS": str(len(alloc)),
            "QUEUE": job.description.queue,
        }
