"""Torque/PBS dialect of the batch-scheduler engine."""

from __future__ import annotations

from typing import Dict

from repro.rms.base import BatchScheduler
from repro.rms.job import BatchJob


class TorqueScheduler(BatchScheduler):
    """Torque/PBS: ``qsub`` submission, ``PBS_*`` environment export.

    ``PBS_NODEFILE`` is materialized as a newline-joined string rather
    than a filesystem path (no real filesystem in the simulation); the
    LRM treats the variable's *content* as the file body, with one line
    per core per node as Torque does.
    """

    kind = "torque"

    def export_environment(self, job: BatchJob) -> Dict[str, str]:
        alloc = job.allocation
        nodefile_lines = []
        for node in alloc.nodes:
            nodefile_lines.extend([node.name] * node.num_cores)
        return {
            "PBS_JOBID": job.job_id.split(".")[-1] + ".sim-headnode",
            "PBS_NODEFILE": "\n".join(nodefile_lines),
            "PBS_NUM_NODES": str(len(alloc)),
            "PBS_NUM_PPN": str(alloc.nodes[0].num_cores),
            "PBS_QUEUE": job.description.queue,
        }
