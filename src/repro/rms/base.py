"""The shared batch-scheduler engine.

Node-exclusive FIFO scheduling with aggressive backfill: the head of
the queue waits for enough free nodes; any later job that already fits
may jump ahead (this is how production SLURM behaves with backfill
enabled and no reservations, and it keeps small pilot jobs flowing on a
busy machine).

Timing model per job (all configurable via :class:`RmsConfig`):

* ``submit_latency`` — the qsub/sbatch round-trip.
* ``schedule_interval`` — the scheduler's periodic cycle; jobs only
  start on cycle boundaries.
* ``prolog_seconds`` — per-job node health-check/prolog before the
  payload launches (a real and visible chunk of pilot startup time).
* walltime enforcement — payloads still running at the limit are
  interrupted and the job ends in ``TIMEOUT``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.sanitizer import InvariantViolation
from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.rms.job import BatchJob, JobDescription, JobState
from repro.sim.engine import Environment, Interrupt


@dataclass(frozen=True)
class RmsConfig:
    """Tunable timing/behaviour knobs of a batch system."""

    submit_latency: float = 1.0
    schedule_interval: float = 5.0
    prolog_seconds: float = 8.0
    epilog_seconds: float = 2.0
    backfill: bool = True


class Allocation:
    """The set of nodes a running job owns exclusively."""

    def __init__(self, nodes: List[Node]):
        self.nodes = list(nodes)

    @property
    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    @property
    def total_cores(self) -> int:
        return sum(n.num_cores for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)


class BatchScheduler:
    """Base class for SLURM/Torque/SGE frontends."""

    #: Subclasses override: scheme name used in SAGA URLs and logging.
    kind = "batch"

    def __init__(self, env: Environment, machine: Machine,
                 config: Optional[RmsConfig] = None):
        self.env = env
        self.machine = machine
        self.config = config or RmsConfig()
        self.jobs: Dict[str, BatchJob] = {}
        self._queue: List[BatchJob] = []
        self._free_nodes: List[Node] = list(machine.nodes)
        self._job_counter = itertools.count(1)
        self._payload_procs: Dict[str, object] = {}
        self._kick = env.event()
        env.process(self._scheduler_loop(), name=f"{self.kind}-sched")

    # ------------------------------------------------------------- queries
    @property
    def free_node_count(self) -> int:
        return len(self._free_nodes)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def get_job(self, job_id: str) -> BatchJob:
        return self.jobs[job_id]

    # ---------------------------------------------------------- submission
    def submit(self, description: JobDescription) -> BatchJob:
        """Submit a job; returns its handle immediately (state NEW).

        The job turns PENDING after the configured submit latency, then
        competes for nodes in the next scheduling cycle.
        """
        description.validate()
        if description.num_nodes > len(self.machine.nodes):
            raise ValueError(
                f"job wants {description.num_nodes} nodes, machine "
                f"{self.machine.name} has {len(self.machine.nodes)}")
        job_id = self._format_job_id(next(self._job_counter))
        job = BatchJob(self.env, job_id, description)
        self.jobs[job_id] = job
        self.env.process(self._accept(job), name=f"accept-{job_id}")
        return job

    def cancel(self, job_id: str) -> None:
        """Cancel a pending or running job (scancel/qdel)."""
        job = self.jobs[job_id]
        if job.state.is_final:
            return
        if job.state in (JobState.NEW, JobState.PENDING):
            if job in self._queue:
                self._queue.remove(job)
            # NEW jobs must pass through PENDING to reach CANCELED.
            if job.state is JobState.NEW:
                job.advance(JobState.PENDING)
            job.advance(JobState.CANCELED, reason="canceled by user")
        elif job.state is JobState.RUNNING:
            proc = self._payload_procs.get(job_id)
            if proc is not None and proc.is_alive:
                proc.interrupt(cause="canceled")
            # final state is applied by the runner wrapper

    # ------------------------------------------------------------ internals
    def _format_job_id(self, n: int) -> str:
        return f"{self.kind}.{n}"

    def _accept(self, job: BatchJob):
        yield self.env.timeout(self.config.submit_latency)
        if job.state is not JobState.NEW:  # canceled during submit RTT
            return
        job.advance(JobState.PENDING)
        job.submit_time = self.env.now
        self._queue.append(job)
        self._report_queue()
        self._kick_scheduler()

    def _report_queue(self) -> None:
        """Batch-queue depth and free-node gauges (opt-in telemetry)."""
        tel = self.env.telemetry
        if tel is None:
            return
        tel.gauge("rms.queue_depth", rms=self.kind).set(len(self._queue))
        tel.gauge("rms.free_nodes", rms=self.kind).set(
            len(self._free_nodes))

    def _kick_scheduler(self) -> None:
        if not self._kick.triggered:
            self._kick.succeed()

    def _scheduler_loop(self):
        while True:
            # Wake on either the periodic cycle or an explicit kick.
            kick = self._kick
            yield self.env.any_of([self.env.timeout(
                self.config.schedule_interval), kick])
            if kick.triggered:
                self._kick = self.env.event()
            self._run_cycle()

    def _run_cycle(self) -> None:
        """One scheduling pass: FIFO head first, then backfill."""
        started = True
        while started:
            started = False
            for index, job in enumerate(list(self._queue)):
                fits = job.description.num_nodes <= len(self._free_nodes)
                if fits:
                    self._queue.remove(job)
                    self._dispatch(job)
                    self._report_queue()
                    started = True
                    break
                if index == 0 and not self.config.backfill:
                    return  # strict FIFO: blocked head blocks everyone
                if not self.config.backfill:
                    return

    def _dispatch(self, job: BatchJob) -> None:
        take = job.description.num_nodes
        nodes, self._free_nodes = (self._free_nodes[:take],
                                   self._free_nodes[take:])
        job.allocation = Allocation(nodes)
        job.env_vars = self.export_environment(job)
        job.env_vars.update(job.description.environment)
        self._payload_procs[job.job_id] = None
        self.env.process(self._run(job), name=f"run-{job.job_id}")

    def _run(self, job: BatchJob):
        yield self.env.timeout(self.config.prolog_seconds)
        job.advance(JobState.RUNNING)
        payload = job.description.payload
        outcome_state = JobState.DONE
        reason = None
        if payload is not None:
            proc = self.env.process(
                payload(self.env, job), name=f"payload-{job.job_id}")
            self._payload_procs[job.job_id] = proc
            limit = self.env.timeout(job.description.walltime)
            try:
                result = yield self.env.any_of([proc, limit])
                if proc in result:
                    job.exit_code = 0
                else:
                    # Walltime exceeded: kill the payload.
                    if proc.is_alive:
                        proc.interrupt(cause="walltime")
                        try:
                            yield proc
                        except Interrupt:
                            # The interrupt we just injected, unwinding
                            # back out of the payload.
                            pass
                        except InvariantViolation:
                            # Sanitizer findings must crash the run,
                            # not be folded into the TIMEOUT reason.
                            raise
                        except Exception as exc:
                            # Payload teardown failed on its own; the
                            # outcome is still TIMEOUT but the wreckage
                            # is recorded rather than swallowed.
                            reason = f"payload teardown raised {exc!r}"
                    outcome_state = JobState.TIMEOUT
                    if reason is None:
                        reason = "walltime exceeded"
                    else:
                        reason = f"walltime exceeded; {reason}"
            except Interrupt as exc:
                if exc.cause == "canceled":
                    outcome_state = JobState.CANCELED
                    reason = "canceled by user"
                else:
                    outcome_state = JobState.FAILED
                    reason = repr(exc)
            except InvariantViolation:
                # A sanitizer finding is a simulator bug, not a job
                # outcome; a FAILED job record would swallow it.
                raise
            except Exception as exc:
                outcome_state = JobState.FAILED
                reason = repr(exc)
        yield self.env.timeout(self.config.epilog_seconds)
        self._release(job)
        job.advance(outcome_state, reason=reason)
        self._kick_scheduler()

    def _release(self, job: BatchJob) -> None:
        if job.allocation is not None:
            self._free_nodes.extend(job.allocation.nodes)
            job.allocation_released = True
            self._report_queue()

    # -------------------------------------------------------- RMS dialects
    def export_environment(self, job: BatchJob) -> Dict[str, str]:
        """Per-RMS environment variables visible to the payload.

        Subclasses provide the dialect the RADICAL-Pilot LRM parses.
        """
        raise NotImplementedError
