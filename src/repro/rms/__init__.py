"""HPC resource management systems (batch schedulers).

Discrete-event models of the system-level schedulers the paper's
Pilot-Manager submits placeholder jobs to: SLURM (Stampede), Torque/PBS
and SGE.  All share one engine (:class:`BatchScheduler`): node-exclusive
FIFO scheduling with aggressive backfill, walltime enforcement, and
per-RMS environment-variable export — the variables the RADICAL-Pilot
agent's Local Resource Manager parses to discover its allocation
(``SLURM_NODELIST``, ``PBS_NODEFILE``, ``PE_HOSTFILE``).

A batch *job payload* is a Python generator factory executed as a
simulation process on the allocated nodes; the RADICAL-Pilot agent and
SAGA-Hadoop bootstrap are such payloads.
"""

from repro.rms.base import Allocation, BatchScheduler, RmsConfig
from repro.rms.job import BatchJob, JobDescription, JobState
from repro.rms.sge import SgeScheduler
from repro.rms.slurm import SlurmScheduler
from repro.rms.torque import TorqueScheduler

__all__ = [
    "Allocation",
    "BatchJob",
    "BatchScheduler",
    "JobDescription",
    "JobState",
    "RmsConfig",
    "SgeScheduler",
    "SlurmScheduler",
    "TorqueScheduler",
]

#: Registry mapping SAGA-style scheme names to scheduler classes.
SCHEDULER_TYPES = {
    "slurm": SlurmScheduler,
    "torque": TorqueScheduler,
    "pbs": TorqueScheduler,
    "sge": SgeScheduler,
}


def make_scheduler(kind: str, env, machine, config: RmsConfig = None):
    """Instantiate a batch scheduler of the given kind on a machine."""
    try:
        cls = SCHEDULER_TYPES[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown RMS kind {kind!r}; expected one of "
            f"{sorted(SCHEDULER_TYPES)}") from None
    return cls(env, machine, config or RmsConfig())
