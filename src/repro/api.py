"""repro.api: the single public entry point.

Everything a simulation script needs lives here — the session facade,
managers, description objects, fault injection and the simulation
environment::

    from repro.api import (AgentConfig, ComputePilotDescription,
                           ComputeUnitDescription, Environment,
                           RestartPolicy, Session)

    env = Environment()
    session = Session(env)
    pmgr = session.pilot_manager()
    umgr = session.unit_manager(restart_policy=RestartPolicy())
    session.faults.node_crash(at=120.0, node="c251-101")

The old per-subsystem import paths (``from repro.core import ...``)
keep working behind :class:`DeprecationWarning` aliases; see the
migration table in README.md.
"""

from repro.core.data import (
    ComputeDataService,
    DataUnit,
    DataUnitDescription,
    PilotData,
    PilotDataDescription,
)
from repro.core.db import Database
from repro.core.description import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    Description,
    DescriptionError,
)
from repro.core.pilot import ComputePilot
from repro.core.pilot_manager import PilotManager
from repro.core.session import Session
from repro.core.states import PilotState, UnitState
from repro.core.unit import ComputeUnit
from repro.core.unit_manager import (
    BackfillScheduler,
    PredictiveScheduler,
    RoundRobinScheduler,
    UnitManager,
)
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RestartPolicy,
)
from repro.raptor import (
    RaptorConfig,
    RaptorOverlay,
    TaskDescription,
    TaskFuture,
    TaskResult,
)
from repro.core.states import ServiceState
from repro.experiments.sweeps import Sweep, SweepRun
from repro.persist import (
    CheckpointInfo,
    JournalError,
    PersistError,
    RestoreMismatch,
    SchemaDrift,
    SnapshotStore,
    StoreError,
    SweepJournal,
    checkpoint_session,
    launch,
    restore,
    scenario,
    scenario_names,
    state_digest,
    state_fingerprint,
)
from repro.saga.registry import Registry, Site, default_registry
from repro.service import (
    PilotService,
    ServiceConfig,
    ServiceSession,
    TenantQuota,
    Ticket,
)
from repro.sim.engine import Environment, SimulationError

__all__ = [
    "AgentConfig",
    "BackfillScheduler",
    "CheckpointInfo",
    "ComputeDataService",
    "ComputePilot",
    "ComputePilotDescription",
    "ComputeUnit",
    "ComputeUnitDescription",
    "Database",
    "DataUnit",
    "DataUnitDescription",
    "Description",
    "DescriptionError",
    "Environment",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "JournalError",
    "PersistError",
    "PilotData",
    "PilotDataDescription",
    "PilotManager",
    "PilotService",
    "PilotState",
    "PredictiveScheduler",
    "RaptorConfig",
    "RaptorOverlay",
    "Registry",
    "RestartPolicy",
    "RestoreMismatch",
    "RoundRobinScheduler",
    "SchemaDrift",
    "ServiceConfig",
    "ServiceSession",
    "ServiceState",
    "Session",
    "SimulationError",
    "Site",
    "SnapshotStore",
    "StoreError",
    "Sweep",
    "SweepJournal",
    "SweepRun",
    "TaskDescription",
    "TaskFuture",
    "TaskResult",
    "TenantQuota",
    "Ticket",
    "UnitManager",
    "UnitState",
    "checkpoint_session",
    "default_registry",
    "launch",
    "restore",
    "scenario",
    "scenario_names",
    "state_digest",
    "state_fingerprint",
]
