"""HDFS: a functional Hadoop Distributed File System simulator.

Implements the pieces of HDFS the paper's system exercises:

* :class:`NameNode` — namespace, block map, placement policy (writer-
  local first replica, remaining replicas on distinct random nodes),
  replication monitoring and re-replication after DataNode loss.
* :class:`DataNode` — block storage on a node's local disk volume,
  heartbeats, failure injection.
* :class:`HdfsCluster` — wiring + daemon start/stop with modeled
  startup cost (paid by the Mode I LRM bootstrap).
* :class:`HdfsClient` — ``put``/``read``/``delete``/``block_locations``;
  reads prefer a node-local replica, which is the data-locality signal
  application masters schedule against.

Files may carry a real Python payload (e.g. a NumPy array of K-Means
points) alongside their simulated byte size, so MapReduce jobs compute
real results while I/O time is modeled.
"""

from repro.hdfs.block import Block, BlockReplica
from repro.hdfs.cluster import HdfsCluster
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HdfsClient
from repro.hdfs.namenode import FileMeta, NameNode

__all__ = [
    "Block",
    "BlockReplica",
    "DataNode",
    "FileMeta",
    "HdfsClient",
    "HdfsCluster",
    "NameNode",
]
