"""HdfsClient: the user-facing filesystem API (put/read/locations)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.network import Interconnect
from repro.hdfs.block import Block, BlockReplica
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Environment, SimulationError


class HdfsClient:
    """Client-side HDFS operations with locality-aware reads.

    All bulk operations are process generators: callers ``yield
    env.process(client.put(...))`` or yield them inside their own
    processes.  A client is bound to the node it runs on (``local_node``)
    so reads can prefer node-local replicas, and may be ``None`` for an
    off-cluster client (all traffic remote).
    """

    def __init__(self, env: Environment, namenode: NameNode,
                 network: Interconnect, local_node: Optional[str] = None):
        self.env = env
        self.namenode = namenode
        self.network = network
        self.local_node = local_node

    # ------------------------------------------------------------- writes
    def put(self, path: str, nbytes: float,
            payload_slices: Optional[Sequence[Any]] = None,
            block_size: Optional[float] = None):
        """Write a file of ``nbytes`` (optionally carrying real data).

        ``block_size`` sets a per-file block size (as HDFS allows at
        create time) — used e.g. to lay one logical chunk per block.

        Replicas are written through a pipeline as in HDFS: the client
        sends each block to the first target over the network, which
        stores it and forwards to the next; we model that as a network
        hop per remote replica plus a disk write per replica, blocks
        written sequentially (a single writer stream).
        """
        nn = self.namenode
        blocks = nn.split_into_blocks(path, nbytes, payload_slices,
                                      block_size=block_size)
        for block in blocks:
            targets = nn.choose_targets(writer_node=self.local_node)
            storage_types = nn.replica_storage_types(path, len(targets))
            source = self.local_node or "client"
            writes = []
            for dn, storage_type in zip(targets, storage_types, strict=True):
                if dn.name != source:
                    yield self.network.send(source, dn.name, block.nbytes)
                writes.append(dn.store(block, storage_type))
                source = dn.name  # pipeline forwards from this replica
            for w in writes:
                yield w
            nn.commit_block(block, [dn.name for dn in targets])
            tel = self.env.telemetry
            if tel is not None:
                # Bytes moved = every replica written (pipeline fan-out).
                tel.counter("hdfs.bytes_written").inc(
                    block.nbytes * len(targets))
        nn.commit_file(path, blocks)

    # -------------------------------------------------------------- reads
    def read(self, path: str):
        """Read a whole file, preferring local replicas.

        Blocks served by the same DataNode are fetched as one coalesced
        stream (one disk transfer per storage tier, one network hop for
        everything remote) instead of one read + one hop per block —
        the batched fast path for multi-block files.

        Returns (via process value) the list of block payloads in file
        order (``None`` entries for payload-less blocks).
        """
        nn = self.namenode
        meta = nn.file_meta(path)
        #: DataNode name -> (datanode, [block, ...]) in first-use order.
        by_datanode: dict = {}
        for block in meta.blocks:
            dn = self._pick_replica(block)
            entry = by_datanode.get(dn.name)
            if entry is None:
                entry = by_datanode[dn.name] = (dn, [])
            entry[1].append(block)
        total_bytes = 0.0
        for dn, blocks in by_datanode.values():
            yield dn.read_many([b.block_id for b in blocks])
            nbytes = sum(b.nbytes for b in blocks)
            total_bytes += nbytes
            if self.local_node is not None and dn.name != self.local_node:
                yield self.network.send_many(
                    dn.name, self.local_node, [b.nbytes for b in blocks])
        tel = self.env.telemetry
        if tel is not None and meta.blocks:
            tel.counter("hdfs.bytes_read").inc(total_bytes)
        return [block.payload for block in meta.blocks]

    def read_block(self, block: Block):
        """Read a single block (used by MapReduce input splits)."""
        dn = self._pick_replica(block)
        yield dn.read(block.block_id)
        if self.local_node is not None and dn.name != self.local_node:
            yield self.network.send(dn.name, self.local_node, block.nbytes)
        return block.payload

    def _pick_replica(self, block: Block):
        nn = self.namenode
        holders = [name for name in nn.block_map.get(block.block_id, ())
                   if (dn := nn.datanodes.get(name)) is not None and dn.alive
                   and dn.holds(block.block_id)]
        if not holders:
            raise SimulationError(
                f"no live replica of block {block.block_id} ({block.path})")
        if self.local_node in holders:
            return nn.datanodes[self.local_node]
        return nn.datanodes[holders[0]]

    # ---------------------------------------------------------- metadata
    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def block_locations(self, path: str) -> List[BlockReplica]:
        return self.namenode.block_locations(path)

    def delete(self, path: str) -> None:
        self.namenode.delete_file(path)

    def is_block_local(self, block: Block, node_name: str) -> bool:
        """Whether ``node_name`` holds a live replica of ``block``."""
        nn = self.namenode
        return node_name in nn.block_map.get(block.block_id, ()) and \
            nn.datanodes[node_name].alive and \
            nn.datanodes[node_name].holds(block.block_id)
