"""NameNode: namespace, block map, placement and replication policy."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hdfs.block import Block, BlockReplica
from repro.hdfs.datanode import ARCHIVE, DISK, RAM_DISK, DataNode
from repro.sim.engine import Environment, SimulationError
from repro.sim.rng import RngStream

#: Storage policies (HDFS names) -> replica storage-type layout.
#: The first entry is the first replica's type; the last entry repeats
#: for any further replicas.
STORAGE_POLICIES = {
    "HOT": (DISK,),                      # all replicas on DISK
    "WARM": (DISK, ARCHIVE),             # one hot copy, rest archived
    "COLD": (ARCHIVE,),                  # active archival storage
    "LAZY_PERSIST": (RAM_DISK, DISK),    # memory first, then disk
}


@dataclass
class FileMeta:
    """Namespace entry: ordered blocks of one file."""

    path: str
    blocks: List[Block] = field(default_factory=list)

    @property
    def nbytes(self) -> float:
        return sum(b.nbytes for b in self.blocks)


class NameNode:
    """The HDFS master: namespace + block map + placement decisions.

    Placement follows the default HDFS policy reduced to node level
    (the paper's clusters are single-rack from HDFS's perspective):
    first replica on the writer's node when it runs a DataNode,
    remaining replicas on distinct nodes chosen pseudo-randomly.
    """

    #: Modeled daemon startup cost (JVM + fsimage load), seconds.
    STARTUP_SECONDS = 12.0

    def __init__(self, env: Environment, replication: int = 3,
                 block_size: float = 128 * 1024 ** 2,
                 rng: Optional[RngStream] = None):
        if replication < 1:
            raise SimulationError("replication factor must be >= 1")
        if block_size <= 0:
            raise SimulationError("block size must be positive")
        self.env = env
        self.replication = replication
        self.block_size = float(block_size)
        self.rng = rng
        self.files: Dict[str, FileMeta] = {}
        self.block_map: Dict[int, List[str]] = {}   # block_id -> node names
        self.datanodes: Dict[str, DataNode] = {}
        self._block_ids = itertools.count(1)
        self.running = False
        #: path prefix -> storage policy (longest prefix wins)
        self.storage_policies: Dict[str, str] = {}
        # policy_for() runs once per block write; the prefix scan is
        # memoised per path and flushed when policies change.
        self._policy_cache: Dict[str, str] = {}

    # ------------------------------------------------------------ daemons
    def start(self):
        yield self.env.timeout(self.STARTUP_SECONDS)
        self.running = True

    def stop(self) -> None:
        self.running = False

    def register_datanode(self, datanode: DataNode) -> None:
        self.datanodes[datanode.name] = datanode

    def live_datanodes(self) -> List[DataNode]:
        return [dn for dn in self.datanodes.values() if dn.alive]

    # ---------------------------------------------------------- namespace
    def exists(self, path: str) -> bool:
        return path in self.files

    def file_meta(self, path: str) -> FileMeta:
        try:
            return self.files[path]
        except KeyError:
            raise FileNotFoundError(f"hdfs:{path}") from None

    def list_files(self, prefix: str = "/") -> List[str]:
        return sorted(p for p in self.files if p.startswith(prefix))

    def total_bytes(self) -> float:
        return sum(meta.nbytes for meta in self.files.values())

    # ----------------------------------------------------- storage policy
    def set_storage_policy(self, prefix: str, policy: str) -> None:
        """Attach a storage policy to a namespace subtree.

        Policies follow HDFS heterogeneous storage: HOT (default),
        WARM, COLD (active archival, paper §II) and LAZY_PERSIST.
        """
        if policy not in STORAGE_POLICIES:
            raise SimulationError(
                f"unknown storage policy {policy!r}; known: "
                f"{sorted(STORAGE_POLICIES)}")
        self.storage_policies[prefix] = policy
        self._policy_cache.clear()

    def policy_for(self, path: str) -> str:
        """Effective policy for a path (longest matching prefix)."""
        cached = self._policy_cache.get(path)
        if cached is not None:
            return cached
        best = ""
        policy = "HOT"
        for prefix, pol in self.storage_policies.items():
            if path.startswith(prefix) and len(prefix) > len(best):
                best, policy = prefix, pol
        self._policy_cache[path] = policy
        return policy

    def replica_storage_types(self, path: str, count: int) -> List[str]:
        """Storage type of each of a block's ``count`` replicas."""
        layout = STORAGE_POLICIES[self.policy_for(path)]
        return [layout[min(i, len(layout) - 1)] for i in range(count)]

    # ---------------------------------------------------------- placement
    def split_into_blocks(self, path: str, nbytes: float,
                          payload_slices: Optional[Sequence] = None,
                          block_size: Optional[float] = None) -> List[Block]:
        """Cut a file into blocks (last one ragged).

        ``block_size`` overrides the filesystem default for this file
        (HDFS allows per-file block sizes at create time).
        """
        if self.exists(path):
            raise FileExistsError(f"hdfs:{path}")
        bsize = float(block_size) if block_size else self.block_size
        if bsize <= 0:
            raise SimulationError("block size must be positive")
        blocks: List[Block] = []
        remaining = float(nbytes)
        index = 0
        while remaining > 0 or index == 0:
            size = min(bsize, remaining) if remaining > 0 else 0.0
            payload = None
            if payload_slices is not None and index < len(payload_slices):
                payload = payload_slices[index]
            blocks.append(Block(
                block_id=next(self._block_ids), path=path, index=index,
                nbytes=size, payload=payload))
            remaining -= size
            index += 1
            if remaining <= 0:
                break
        return blocks

    def choose_targets(self, writer_node: Optional[str] = None,
                       count: Optional[int] = None) -> List[DataNode]:
        """Pick DataNodes for a new block's replicas."""
        want = count if count is not None else self.replication
        live = self.live_datanodes()
        if not live:
            raise SimulationError("no live datanodes")
        want = min(want, len(live))
        targets: List[DataNode] = []
        if writer_node is not None:
            for dn in live:
                if dn.name == writer_node:
                    targets.append(dn)
                    break
        others = [dn for dn in live if dn not in targets]
        if self.rng is not None:
            self.rng.shuffle(others)
        targets.extend(others[:want - len(targets)])
        return targets

    def commit_block(self, block: Block, node_names: List[str]) -> None:
        """Record a block's replicas in the block map."""
        self.block_map[block.block_id] = list(node_names)
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.check_namenode(self)

    def commit_file(self, path: str, blocks: List[Block]) -> None:
        self.files[path] = FileMeta(path=path, blocks=list(blocks))
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("hdfs", "file_committed", path=path,
                     nbytes=self.files[path].nbytes, blocks=len(blocks))

    def block_locations(self, path: str) -> List[BlockReplica]:
        """All replicas of all blocks of a file (locality info)."""
        meta = self.file_meta(path)
        out: List[BlockReplica] = []
        for block in meta.blocks:
            for node_name in self.block_map.get(block.block_id, ()):
                out.append(BlockReplica(block=block, node_name=node_name))
        return out

    def delete_file(self, path: str) -> None:
        meta = self.file_meta(path)
        for block in meta.blocks:
            for node_name in self.block_map.pop(block.block_id, ()):
                dn = self.datanodes.get(node_name)
                if dn is not None:
                    dn.drop(block.block_id)
        del self.files[path]
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("hdfs", "file_deleted", path=path)
        sanitizer = self.env.sanitizer
        if sanitizer is not None:
            sanitizer.check_namenode(self)

    # --------------------------------------------------------- replication
    def under_replicated(self) -> List[Block]:
        """Blocks with fewer live replicas than the target factor."""
        # The achievable replica count depends only on the live DN set,
        # so it is computed once, not per block.
        target = min(self.replication, len(self.live_datanodes()))
        missing: List[Block] = []
        for meta in self.files.values():
            for block in meta.blocks:
                live = self._live_replica_nodes(block.block_id)
                if len(live) < target:
                    missing.append(block)
        return missing

    def _live_replica_nodes(self, block_id: int) -> List[str]:
        return [name for name in self.block_map.get(block_id, ())
                if (dn := self.datanodes.get(name)) is not None and dn.alive
                and dn.holds(block_id)]

    def replication_factor_of(self, path: str) -> int:
        """Smallest live replica count over a file's blocks."""
        meta = self.file_meta(path)
        return min((len(self._live_replica_nodes(b.block_id))
                    for b in meta.blocks), default=0)

    def replication_monitor(self, interval: float = 3.0,
                            dn_timeout: float = 10.0):
        """Heartbeat-timeout DataNode failure detection.  Process generator.

        The paper's stack assumes HDFS absorbs node loss; this is the
        NameNode-side loop that makes it true in the simulation: every
        ``interval`` seconds each registered DataNode is checked, one
        that has been unreachable for ``dn_timeout`` seconds is declared
        lost, and its blocks are re-replicated from surviving copies
        (:meth:`handle_datanode_loss`).  MTTR — failure to restored
        replication — lands in the ``hdfs.rereplication_mttr``
        histogram.  Runs until :meth:`stop`; started by
        :class:`~repro.hdfs.cluster.HdfsCluster` when ``auto_heal`` is
        on.
        """
        suspected: Dict[str, float] = {}
        handled: set = set()
        while self.running:
            yield self.env.timeout(interval)
            if not self.running:
                return
            for name in sorted(self.datanodes):
                dn = self.datanodes[name]
                if dn.alive:
                    suspected.pop(name, None)
                    handled.discard(name)
                    continue
                if name in handled:
                    continue
                first_seen = suspected.setdefault(name, self.env.now)
                if self.env.now - first_seen < dn_timeout:
                    continue
                handled.add(name)
                failed_at = dn.failed_at
                if failed_at is None:
                    failed_at = first_seen
                tel = self.env.telemetry
                if tel is not None:
                    tel.emit("hdfs", "datanode_lost", node=name,
                             detected_after=self.env.now - failed_at)
                    tel.counter("hdfs.datanodes_lost").inc()
                yield from self.handle_datanode_loss(name)
                if tel is not None:
                    mttr = self.env.now - failed_at
                    tel.histogram("hdfs.rereplication_mttr").observe(mttr)
                    tel.emit("hdfs", "rereplication_complete", node=name,
                             mttr=mttr)

    def handle_datanode_loss(self, node_name: str):
        """Re-replicate blocks lost with a DataNode.  Process generator.

        Copies each under-replicated block from a surviving replica to
        a fresh target, paying read + write I/O.
        """
        for block in self.under_replicated():
            sources = self._live_replica_nodes(block.block_id)
            if not sources:
                continue  # block irrecoverably lost
            current = set(sources)
            candidates = [dn for dn in self.live_datanodes()
                          if dn.name not in current]
            if not candidates:
                continue
            if self.rng is not None:
                target = self.rng.choice(candidates)
            else:
                target = candidates[0]
            source_dn = self.datanodes[sources[0]]
            yield source_dn.read(block.block_id)
            yield target.store(block)
            self.block_map[block.block_id] = [
                n for n in self.block_map[block.block_id] if n != node_name
            ] + [target.name]
            sanitizer = self.env.sanitizer
            if sanitizer is not None:
                sanitizer.check_namenode(self)
            tel = self.env.telemetry
            if tel is not None:
                tel.counter("hdfs.bytes_rereplicated").inc(block.nbytes)
                tel.emit("hdfs", "rereplicated",
                         block_id=block.block_id, nbytes=block.nbytes,
                         source=source_dn.name, target=target.name,
                         lost_node=node_name)
