"""HDFS blocks and replicas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Default HDFS block size (dfs.blocksize), 128 MB as in Hadoop 2.x.
DEFAULT_BLOCK_SIZE = 128 * 1024 ** 2


@dataclass(frozen=True)
class Block:
    """One block of a file: immutable identity + geometry.

    ``payload`` optionally carries the real data slice backing this
    block (kept out of equality/hash: identity is the block id).
    """

    block_id: int
    path: str
    index: int          # position within the file
    nbytes: float
    payload: Any = field(default=None, compare=False, hash=False)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Block {self.block_id} {self.path}#{self.index}>"


@dataclass(frozen=True)
class BlockReplica:
    """A copy of a block pinned to a DataNode (by node name)."""

    block: Block
    node_name: str
