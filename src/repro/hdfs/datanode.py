"""DataNode: block storage on a compute node's storage tiers.

Implements HDFS heterogeneous storage (paper §II: "the newly added
HDFS heterogeneous storage support is suitable for supporting this
[active archival] use case"): every DataNode exposes three storage
types —

* ``DISK``     — the node's local disk (the default tier);
* ``ARCHIVE``  — a large, slow archival volume (dense spindles);
* ``RAM_DISK`` — the node's memory tier (LAZY_PERSIST writes).

The NameNode's storage *policies* decide which type each replica of a
file lands on.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cluster.node import Node
from repro.cluster.storage import StorageSpec, StorageVolume
from repro.hdfs.block import Block
from repro.sim.engine import Environment, Event, SimulationError

#: Storage types, named as in HDFS.
DISK = "DISK"
ARCHIVE = "ARCHIVE"
RAM_DISK = "RAM_DISK"
STORAGE_TYPES = (DISK, ARCHIVE, RAM_DISK)


class DataNode:
    """Stores block replicas on one node's storage tiers.

    The DataNode owns no namespace — the NameNode tracks which replicas
    live where; the DataNode just moves bytes through its volume pipes
    and answers "do you hold block X".
    """

    #: Modeled daemon startup cost (JVM + block report), seconds.
    STARTUP_SECONDS = 8.0

    def __init__(self, env: Environment, node: Node,
                 archive_spec: Optional[StorageSpec] = None):
        self.env = env
        self.node = node
        self.blocks: Dict[int, Block] = {}
        #: block_id -> storage type holding the replica
        self.block_storage: Dict[int, str] = {}
        self.running = False
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        #: When :meth:`fail` hit (MTTR base for re-replication).
        self.failed_at: Optional[float] = None
        # ARCHIVE: dense, slow spindles — 10x the local capacity at a
        # third of the bandwidth unless specified explicitly.
        local = node.local_disk.spec
        self.archive = StorageVolume(env, archive_spec or StorageSpec(
            name=f"{node.name}-archive",
            aggregate_bw=local.aggregate_bw / 3,
            per_stream_bw=(local.per_stream_bw or local.aggregate_bw) / 3,
            latency=local.latency * 2,
            capacity=local.capacity * 10))

    def volume(self, storage_type: str) -> StorageVolume:
        """The volume backing one storage type."""
        if storage_type == DISK:
            return self.node.local_disk
        if storage_type == ARCHIVE:
            return self.archive
        if storage_type == RAM_DISK:
            return self.node.memory_fs
        raise SimulationError(f"unknown storage type {storage_type!r}")

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def alive(self) -> bool:
        return self.running and self.node.alive

    def start(self):
        """Daemon startup; a process-able generator."""
        yield self.env.timeout(self.STARTUP_SECONDS)
        self.running = True

    def stop(self) -> None:
        self.running = False

    def store(self, block: Block, storage_type: str = DISK) -> Event:
        """Write one replica to the given tier; completion event."""
        if not self.alive:
            raise SimulationError(f"datanode {self.name} is down")
        if block.block_id in self.blocks:
            raise SimulationError(
                f"datanode {self.name} already holds block {block.block_id}")
        volume = self.volume(storage_type)
        self.blocks[block.block_id] = block
        self.block_storage[block.block_id] = storage_type
        self.bytes_written += block.nbytes
        return volume.write(block.nbytes)

    def read(self, block_id: int) -> Event:
        """Read a replica from its tier; completion event."""
        if not self.alive:
            raise SimulationError(f"datanode {self.name} is down")
        block = self.blocks.get(block_id)
        if block is None:
            raise SimulationError(
                f"datanode {self.name} does not hold block {block_id}")
        self.bytes_read += block.nbytes
        return self.volume(self.block_storage[block_id]).read(block.nbytes)

    def read_many(self, block_ids: Iterable[int]) -> Event:
        """Read several co-located replicas as coalesced streams.

        One volume transfer per storage tier holding any of the blocks
        (one latency charge and one event per tier, not per block) —
        the batched path for whole-file reads.
        """
        if not self.alive:
            raise SimulationError(f"datanode {self.name} is down")
        sizes_by_tier: Dict[str, list] = {}
        for block_id in block_ids:
            block = self.blocks.get(block_id)
            if block is None:
                raise SimulationError(
                    f"datanode {self.name} does not hold block {block_id}")
            self.bytes_read += block.nbytes
            sizes_by_tier.setdefault(
                self.block_storage[block_id], []).append(block.nbytes)
        events = [self.volume(tier).read_many(sizes)
                  for tier, sizes in sizes_by_tier.items()]
        if len(events) == 1:
            return events[0]
        return self.env.all_of(events)

    def storage_type_of(self, block_id: int) -> Optional[str]:
        """Which tier holds this replica (None if absent)."""
        return self.block_storage.get(block_id)

    def drop(self, block_id: int) -> None:
        """Delete a replica (metadata + capacity)."""
        block = self.blocks.pop(block_id, None)
        if block is not None:
            storage_type = self.block_storage.pop(block.block_id, DISK)
            self.volume(storage_type).delete(block.nbytes)

    def holds(self, block_id: int) -> bool:
        return block_id in self.blocks

    def fail(self) -> None:
        """Crash the daemon; its replicas are lost.

        Every replica's bytes are released back to the tier volume's
        capacity ledger and the local metadata is cleared — so a later
        ``delete_file`` on the NameNode cannot double-free, and the
        sanitizer's replica/capacity checks stay exact.  Emits the
        telemetry the YARN ``node_failed`` path already has.
        """
        tel = self.env.telemetry
        if tel is not None:
            tel.emit("hdfs", "datanode_failed", node=self.name,
                     blocks=len(self.blocks),
                     nbytes=sum(b.nbytes for b in self.blocks.values()))
            tel.counter("hdfs.datanode.failures").inc()
        for block_id, block in list(self.blocks.items()):
            storage_type = self.block_storage.pop(block_id, DISK)
            self.volume(storage_type).delete(block.nbytes)
        self.blocks.clear()
        self.running = False
        self.failed_at = self.env.now

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DataNode {self.name} blocks={len(self.blocks)}>"
