"""HdfsCluster: wiring and lifecycle of the HDFS daemons.

This is what the Mode I LRM boots on the pilot's allocation: the first
node (the agent's node) runs the NameNode, every node runs a DataNode.
``start()`` models the real startup choreography — NameNode first, then
DataNodes in parallel — whose cost shows up in the paper's Figure 5
Mode I bars.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HdfsClient
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Environment
from repro.sim.rng import RngStream


class HdfsCluster:
    """One HDFS deployment over a set of nodes."""

    def __init__(self, env: Environment, machine: Machine,
                 nodes: List[Node], replication: int = 3,
                 block_size: float = 128 * 1024 ** 2,
                 rng: Optional[RngStream] = None,
                 auto_heal: bool = False, heal_interval: float = 3.0,
                 dn_timeout: float = 10.0):
        self.env = env
        self.machine = machine
        self.nodes = list(nodes)
        # HDFS caps effective replication at the cluster size.
        self.namenode = NameNode(env, replication=min(replication, len(nodes)),
                                 block_size=block_size, rng=rng)
        self.datanodes = [DataNode(env, node) for node in self.nodes]
        for dn in self.datanodes:
            self.namenode.register_datanode(dn)
        self.running = False
        #: Run the NameNode's replication monitor (heartbeat-timeout
        #: DataNode loss detection + re-replication) while the cluster
        #: is up.  Off by default: standalone-HDFS tests drive
        #: :meth:`NameNode.handle_datanode_loss` by hand.
        self.auto_heal = auto_heal
        self.heal_interval = heal_interval
        self.dn_timeout = dn_timeout
        self._monitor = None
        faults = env.faults
        if faults is not None:
            faults.register_hdfs(self)

    @property
    def master_node(self) -> Node:
        """The node running the NameNode (first of the allocation)."""
        return self.nodes[0]

    def start(self):
        """Boot NameNode then all DataNodes in parallel.  Generator."""
        yield self.env.process(self.namenode.start())
        starts = [self.env.process(dn.start()) for dn in self.datanodes]
        yield self.env.all_of(starts)
        self.running = True
        if self.auto_heal:
            self._monitor = self.env.process(
                self.namenode.replication_monitor(
                    self.heal_interval, self.dn_timeout),
                name="hdfs-replication-monitor")

    def stop(self) -> None:
        for dn in self.datanodes:
            dn.stop()
        self.namenode.stop()
        self.running = False

    def client(self, node_name: Optional[str] = None) -> HdfsClient:
        """A client bound to ``node_name`` (None = off-cluster)."""
        return HdfsClient(self.env, self.namenode, self.machine.network,
                          local_node=node_name)

    def datanode(self, node_name: str) -> DataNode:
        for dn in self.datanodes:
            if dn.name == node_name:
                return dn
        raise KeyError(f"no datanode on {node_name}")
