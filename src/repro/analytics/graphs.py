"""Network-science workload: triangle counting (paper §I, ref [12]).

The paper's introduction names network science among the domains that
"need to couple traditional computing with Hadoop/Spark based
analysis", citing Arifuzzaman et al.'s space-efficient parallel
triangle counting.  We implement the canonical distributed algorithm —
degree-ordered edge orientation + wedge join — as a Spark RDD pipeline
and as plain Compute-Units, validated against networkx.

Algorithm (the "node-iterator++" / edge-orientation scheme the cited
paper builds on):

1. orient each undirected edge from the lower-(degree, id) endpoint to
   the higher, producing a DAG — every triangle now has exactly one
   wedge ``a->b, a->c`` with a closing edge ``b->c``;
2. group oriented edges by source to make wedges;
3. join wedge endpoints against the oriented edge set; each hit is one
   triangle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

Edge = Tuple[int, int]


def generate_graph(num_nodes: int, num_edges: int,
                   seed: int = 13) -> List[Edge]:
    """A random simple undirected graph as a deduplicated edge list."""
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    rng = np.random.default_rng(seed)
    edges: Set[Edge] = set()
    while len(edges) < num_edges:
        u, v = rng.integers(0, num_nodes, size=2)
        if u == v:
            continue
        edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return sorted(edges)


def count_triangles_reference(edges: Sequence[Edge]) -> int:
    """Ground truth via networkx."""
    import networkx as nx
    graph = nx.Graph()
    graph.add_edges_from(edges)
    # nx.triangles counts per-node; every triangle is counted 3 times
    return sum(nx.triangles(graph).values()) // 3


def _ranks(edges: Sequence[Edge]) -> Dict[int, Tuple[int, int]]:
    """Total order on vertices by (degree, id)."""
    degree: Dict[int, int] = {}
    for u, v in edges:
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    return {node: (d, node) for node, d in degree.items()}


def _orient(edges: Sequence[Edge]) -> List[Edge]:
    """Orient edges from rank-lower to rank-higher endpoint.

    Every triangle then has exactly one wedge ``a->b, a->c`` whose
    closing edge is oriented ``min_rank(b,c) -> max_rank(b,c)``.
    """
    rank = _ranks(edges)
    return [(u, v) if rank[u] < rank[v] else (v, u) for u, v in edges]


def count_triangles_local(edges: Sequence[Edge]) -> int:
    """Single-process implementation of the same algorithm."""
    rank = _ranks(edges)
    oriented = _orient(edges)
    adjacency: Dict[int, Set[int]] = {}
    for u, v in oriented:
        adjacency.setdefault(u, set()).add(v)
    triangles = 0
    for _u, outs in adjacency.items():
        # pairs ordered by RANK: the closing edge, if present, goes
        # from the rank-lower to the rank-higher target
        outs_list = sorted(outs, key=rank.__getitem__)
        for i, b in enumerate(outs_list):
            closing = adjacency.get(b)
            if not closing:
                continue
            for c in outs_list[i + 1:]:
                if c in closing:
                    triangles += 1
    return triangles


def count_triangles_spark(ctx, edges: Sequence[Edge],
                          num_partitions: int = 4):
    """Distributed triangle count over RDDs.  Generator -> int."""
    rank = _ranks(edges)
    oriented = _orient(edges)
    edge_rdd = ctx.parallelize(oriented, num_partitions)

    # wedges: for each source a with out-edges to b, c (rank(b) <
    # rank(c)), emit the candidate closing edge keyed for the join
    def wedges(group, _rank=rank):
        source, targets = group
        targets = sorted(set(targets), key=_rank.__getitem__)
        return [((b, c), source)
                for i, b in enumerate(targets)
                for c in targets[i + 1:]]

    wedge_rdd = edge_rdd.group_by_key(num_partitions).flat_map(wedges)
    closing_rdd = edge_rdd.map(lambda e: (e, True))
    matched = wedge_rdd.join(closing_rdd, num_partitions)
    count = yield from matched.count()
    return count


def count_triangles_pilot(umgr, edges: Sequence[Edge], ntasks: int = 4,
                          cpu_per_edge: float = 1e-3):
    """Triangle counting as Compute-Units.  Generator -> int.

    Partition oriented edges by source-vertex hash; each unit counts
    the triangles whose wedge source falls in its partition, using the
    full closing-edge set (broadcast-style input).
    """
    from repro.core.description import ComputeUnitDescription

    rank = _ranks(edges)
    oriented = _orient(edges)
    closing: Dict[int, Set[int]] = {}
    for u, v in oriented:
        closing.setdefault(u, set()).add(v)

    def count_partition(partition_index, _nt=ntasks,
                        _closing=closing, _rank=rank):
        count = 0
        for u, outs in _closing.items():
            if u % _nt != partition_index:
                continue
            outs_list = sorted(outs, key=_rank.__getitem__)
            for i, b in enumerate(outs_list):
                closers = _closing.get(b)
                if not closers:
                    continue
                for c in outs_list[i + 1:]:
                    if c in closers:
                        count += 1
        return count

    units = umgr.submit_units([ComputeUnitDescription(
        executable="triangles", name=f"tri-{p}", cores=1,
        cpu_seconds=cpu_per_edge * len(oriented),
        input_bytes=16.0 * len(oriented),
        function=count_partition, args=(p,))
        for p in range(ntasks)])
    yield umgr.wait_units(units)
    failed = [u for u in units if u.state.value != "Done"]
    if failed:
        raise RuntimeError(f"{len(failed)} triangle units failed")
    return sum(u.result for u in units)
