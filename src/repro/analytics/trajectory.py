"""MD trajectory analysis: the paper's future-work workload (§V).

The paper's motivating applications are bio-molecular dynamics
pipelines whose analysis stages (MDAnalysis/CPPTraj-style) need to
scale with the simulation output.  We implement the two canonical
per-frame observables — RMSD against a reference structure and radius
of gyration — plus a pilot-based decomposition that analyzes a
trajectory in chunked Compute-Units, exactly the "simulation stage
feeds analysis stage under one resource layer" pattern the paper
argues for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.description import ComputeUnitDescription


def synthesize_trajectory(num_frames: int, num_atoms: int,
                          seed: int = 7,
                          step_sigma: float = 0.01) -> np.ndarray:
    """A synthetic (frames, atoms, 3) trajectory: harmonic random walk.

    Stands in for real MD output (which we cannot produce without an
    MD engine): atoms jitter around an initial fold with a weak pull
    back, giving RMSD/Rg series with realistic shape.
    """
    if num_frames < 1 or num_atoms < 1:
        raise ValueError("frames and atoms must be >= 1")
    rng = np.random.default_rng(seed)
    initial = rng.uniform(-1.0, 1.0, size=(num_atoms, 3))
    frames = np.empty((num_frames, num_atoms, 3))
    current = initial.copy()
    for f in range(num_frames):
        current = current + rng.normal(0, step_sigma, size=current.shape) \
            - 0.02 * (current - initial)
        frames[f] = current
    return frames


def rmsd_to_reference(frames: np.ndarray,
                      reference: np.ndarray) -> np.ndarray:
    """Per-frame RMSD against a reference structure (no alignment).

    Vectorized over frames: sqrt(mean ||x_i - ref_i||^2).
    """
    delta = frames - reference[None, :, :]
    return np.sqrt((delta ** 2).sum(axis=2).mean(axis=1))


def radius_of_gyration(frames: np.ndarray) -> np.ndarray:
    """Per-frame radius of gyration (uniform masses)."""
    com = frames.mean(axis=1, keepdims=True)
    return np.sqrt(((frames - com) ** 2).sum(axis=2).mean(axis=1))


def run_trajectory_analysis(umgr, trajectory: np.ndarray,
                            reference: Optional[np.ndarray] = None,
                            ntasks: int = 4,
                            bytes_per_frame: Optional[float] = None,
                            cpu_per_frame: float = 0.05):
    """Analyze a trajectory in chunked Compute-Units.  Generator.

    Each unit computes RMSD + Rg for its frame slice (really, with
    NumPy); I/O is modeled as reading the trajectory chunk from the
    pilot's storage backend.  Returns ``(rmsd, rg)`` full series.
    """
    if reference is None:
        reference = trajectory[0]
    if bytes_per_frame is None:
        bytes_per_frame = trajectory.shape[1] * 3 * 8.0
    chunks = np.array_split(trajectory, ntasks)

    def analyze(chunk, ref):
        return (rmsd_to_reference(chunk, ref), radius_of_gyration(chunk))

    descs = []
    for chunk in chunks:
        descs.append(ComputeUnitDescription(
            executable="python", arguments=("traj_analyze.py",),
            name="traj-analyze", cores=1,
            cpu_seconds=cpu_per_frame * len(chunk),
            input_bytes=bytes_per_frame * len(chunk),
            output_bytes=16.0 * len(chunk),
            function=analyze, args=(chunk, reference)))
    units = umgr.submit_units(descs)
    yield umgr.wait_units(units)
    failed = [u for u in units if u.state.value != "Done"]
    if failed:
        raise RuntimeError(f"{len(failed)} analysis units failed")
    rmsd = np.concatenate([u.result[0] for u in units])
    rg = np.concatenate([u.result[1] for u in units])
    return rmsd, rg
