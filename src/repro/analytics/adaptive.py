"""Adaptive sampling: simulation results steering the next simulations.

The paper's motivation (§I): "Often times the data generated needs to
be analyzed so as to determine the next set of simulation
configurations."  This module implements that loop over the pilot:

1. run a batch of "MD" Compute-Units, each sampling a 1-D reaction
   coordinate around a seed position (real NumPy random walks);
2. analyze the pooled samples: histogram coverage of the coordinate;
3. seed the next batch at the least-sampled regions;
4. repeat — coverage of the coordinate space improves monotonically,
   which the driver returns per round so callers (and tests) can check.

This is the textbook adaptive-sampling / Markov-state-model workflow
(e.g. ExTASY, RepEx [paper ref 36]) reduced to one dimension.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.description import ComputeUnitDescription

#: Reaction-coordinate domain sampled by the walkers.
DOMAIN = (0.0, 10.0)


def simulate_walker(seed_position: float, num_steps: int,
                    rng_seed: int, step_sigma: float = 0.15) -> np.ndarray:
    """One 'MD run': a reflected random walk on the coordinate."""
    rng = np.random.default_rng(rng_seed)
    lo, hi = DOMAIN
    position = float(np.clip(seed_position, lo, hi))
    samples = np.empty(num_steps)
    for i in range(num_steps):
        position += rng.normal(0.0, step_sigma)
        position = lo + abs(position - lo)
        position = hi - abs(hi - position)
        samples[i] = position
    return samples


def coverage(samples: np.ndarray, num_bins: int = 50) -> float:
    """Fraction of coordinate bins visited at least once."""
    if len(samples) == 0:
        return 0.0
    hist, _ = np.histogram(samples, bins=num_bins, range=DOMAIN)
    return float((hist > 0).mean())


def pick_seeds(samples: np.ndarray, num_seeds: int,
               num_bins: int = 50) -> List[float]:
    """Seed positions at the centers of the least-sampled bins."""
    hist, edges = np.histogram(samples, bins=num_bins, range=DOMAIN)
    centers = (edges[:-1] + edges[1:]) / 2
    order = np.argsort(hist, kind="stable")
    return [float(centers[i]) for i in order[:num_seeds]]


def run_adaptive_sampling(umgr, rounds: int = 3, walkers: int = 4,
                          steps_per_walker: int = 400,
                          cpu_seconds_per_step: float = 0.5,
                          seed: int = 71,
                          num_bins: int = 50):
    """The full loop over a Unit-Manager.  Generator.

    Returns ``(all_samples, coverage_per_round)``.
    """
    all_samples = np.empty(0)
    coverage_history: List[float] = []
    lo, hi = DOMAIN
    seeds = list(np.linspace(lo + 0.5, lo + 1.5, walkers))  # biased start

    for round_index in range(rounds):
        descs = []
        for w, seed_pos in enumerate(seeds):
            descs.append(ComputeUnitDescription(
                executable="md_walker",
                arguments=(f"--seed-pos={seed_pos:.3f}",),
                name=f"walker-r{round_index}-w{w}",
                cores=1,
                cpu_seconds=cpu_seconds_per_step * steps_per_walker,
                output_bytes=8.0 * steps_per_walker,
                function=simulate_walker,
                args=(seed_pos, steps_per_walker,
                      seed + round_index * 1000 + w)))
        units = umgr.submit_units(descs)
        yield umgr.wait_units(units)
        failed = [u for u in units if u.state.value != "Done"]
        if failed:
            raise RuntimeError(f"{len(failed)} walkers failed")
        round_samples = np.concatenate([u.result for u in units])
        all_samples = np.concatenate([all_samples, round_samples])
        coverage_history.append(coverage(all_samples, num_bins))
        # analysis drives the next round's configurations
        seeds = pick_seeds(all_samples, walkers, num_bins)

    return all_samples, coverage_history
