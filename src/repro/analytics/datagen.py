"""Synthetic data generation for the evaluation workloads."""

from __future__ import annotations

import numpy as np


def generate_points(num_points: int, num_clusters: int, dim: int = 3,
                    seed: int = 42, spread: float = 0.05) -> np.ndarray:
    """Gaussian blobs: ``num_points`` points around ``num_clusters``
    centers on the unit cube.  Deterministic for a given seed.

    The paper's scenarios are 3-dimensional (§IV-B); ``dim`` is
    parameterized for the sweeps.
    """
    if num_points < 1 or num_clusters < 1 or dim < 1:
        raise ValueError("num_points, num_clusters, dim must be >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_clusters, dim))
    assignment = rng.integers(0, num_clusters, size=num_points)
    noise = rng.normal(0.0, spread, size=(num_points, dim))
    return centers[assignment] + noise
