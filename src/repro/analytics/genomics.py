"""Genomics workload: k-mer counting (paper §I; ref [5] ADAM).

The introduction's genomics motivation (DNA sequencing on Spark, the
ADAM formats paper) reduced to its canonical kernel: counting k-mers
over a set of reads — the first stage of most assembly and error-
correction pipelines, and a natural MapReduce.

Implemented over the MapReduce engine (reads stored as HDFS block
payloads) and as a single-process reference.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

import numpy as np

BASES = "ACGT"


def generate_reads(num_reads: int, read_length: int = 100,
                   seed: int = 23) -> List[str]:
    """Synthetic reads: substrings of one random reference genome.

    Drawing reads from a common reference (rather than i.i.d. strings)
    gives the realistic skewed k-mer spectrum.
    """
    if read_length < 1 or num_reads < 1:
        raise ValueError("num_reads and read_length must be >= 1")
    rng = np.random.default_rng(seed)
    genome_len = max(read_length * 4, 1000)
    genome = "".join(rng.choice(list(BASES), size=genome_len))
    reads = []
    for _ in range(num_reads):
        start = int(rng.integers(0, genome_len - read_length + 1))
        reads.append(genome[start:start + read_length])
    return reads


def kmers_of(read: str, k: int) -> List[str]:
    """All k-length substrings of one read."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return [read[i:i + k] for i in range(len(read) - k + 1)]


def count_kmers_reference(reads: Sequence[str], k: int) -> Dict[str, int]:
    """Single-process ground truth."""
    counts: Counter = Counter()
    for read in reads:
        counts.update(kmers_of(read, k))
    return dict(counts)


def count_kmers_mapreduce(env, hdfs, yarn, reads: Sequence[str], k: int,
                          num_blocks: int = 4, num_reducers: int = 2,
                          use_combiner: bool = True):
    """K-mer counting as a MapReduce job.  Generator -> dict.

    Reads are laid out as HDFS block payloads (one slice per block);
    mappers emit (kmer, 1); the combiner collapses duplicates before
    the shuffle — the optimization that makes k-mer counting tractable
    in practice.
    """
    from repro.mapreduce import MapReduceJob, MRJobSpec

    reads = list(reads)
    per = max(1, (len(reads) + num_blocks - 1) // num_blocks)
    slices = [reads[i * per:(i + 1) * per] for i in range(num_blocks)]
    slices = [s for s in slices if s]
    nbytes = float(sum(len(r) for r in reads))
    client = hdfs.client(hdfs.master_node.name)
    if not client.exists("/genomics/reads"):
        yield env.process(client.put(
            "/genomics/reads", nbytes, payload_slices=slices,
            block_size=max(1.0, nbytes / len(slices))))

    spec = MRJobSpec(
        name=f"kmer-count-k{k}",
        input_path="/genomics/reads",
        output_path=f"/genomics/kmers-k{k}",
        mapper=lambda read, _k=k: [(kmer, 1) for kmer in kmers_of(read, _k)],
        combiner=(lambda kmer, ones: [sum(ones)]) if use_combiner else None,
        reducer=lambda kmer, counts: [(kmer, sum(counts))],
        num_reducers=num_reducers,
        bytes_per_pair=float(k + 8))
    job = MapReduceJob(env, spec, hdfs)
    output = yield from job.run_on_yarn(yarn)
    counts: Dict[str, int] = {}
    for rows in output.values():
        for kmer, count in rows:
            counts[kmer] = count
    return counts, job
