"""K-Means: reference implementation + the paper's task decompositions.

All variants implement Lloyd's algorithm with a fixed iteration count
(the paper runs 2 iterations) and identical arithmetic, so centroids
agree bit-for-bit across engines given the same data and initial
centers (deterministic: initial centroids are the first ``k`` points).

The guides' idioms apply: the inner kernel is fully vectorized
(distance matrix via broadcasting, partial sums via ``np.add.at``-free
bincount operations) and avoids copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.description import ComputeUnitDescription


# --------------------------------------------------------------- reference
def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid for every point (vectorized).

    Uses the ||p-c||^2 = ||p||^2 - 2 p.c + ||c||^2 expansion: one GEMM
    instead of a (points x clusters x dim) temporary — the cache-friendly
    formulation the optimization guide prescribes.
    """
    cross = points @ centroids.T                       # (n, k)
    c_norm = (centroids * centroids).sum(axis=1)       # (k,)
    return np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)


def _partial_sums(points: np.ndarray, centroids: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """(per-cluster coordinate sums, per-cluster counts) for one chunk."""
    k = centroids.shape[0]
    labels = _assign(points, centroids)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    sums = np.zeros_like(centroids)
    for d in range(points.shape[1]):
        sums[:, d] = np.bincount(labels, weights=points[:, d], minlength=k)
    return sums, counts


def _update(centroids: np.ndarray, sums: np.ndarray,
            counts: np.ndarray) -> np.ndarray:
    """New centroids; empty clusters keep their previous position."""
    new = centroids.copy()
    nonzero = counts > 0
    new[nonzero] = sums[nonzero] / counts[nonzero, None]
    return new


def kmeans_reference(points: np.ndarray, k: int, iterations: int = 2,
                     initial: Optional[np.ndarray] = None) -> np.ndarray:
    """Ground-truth Lloyd's algorithm (single-process, vectorized)."""
    if k < 1 or iterations < 0:
        raise ValueError("k >= 1 and iterations >= 0 required")
    if len(points) < k:
        raise ValueError("need at least k points")
    centroids = np.array(points[:k], dtype=np.float64) if initial is None \
        else np.array(initial, dtype=np.float64)
    for _ in range(iterations):
        sums, counts = _partial_sums(points, centroids)
        centroids = _update(centroids, sums, counts)
    return centroids


# ------------------------------------------------------------- cost model
@dataclass(frozen=True)
class KMeansCost:
    """Maps scenario size to Compute-Unit resource demands.

    Values are calibrated in :mod:`repro.experiments.calibration` so
    Figure 6 magnitudes come out paper-shaped; the *structure* (compute
    ∝ points x clusters, I/O ∝ points) is what matters.
    """

    #: reference-CPU seconds per point-cluster-dim product (map side).
    cpu_per_pcd: float = 2.2e-8
    #: input bytes per point per iteration (text records, as in the
    #: paper's Hadoop-style K-Means).
    bytes_per_point_in: float = 62.0
    #: shuffle bytes per point (map output: point-to-cluster pairs).
    bytes_per_point_shuffle: float = 24.0
    #: task memory: JVM/base + per-point working set (bytes -> MB).
    base_memory_mb: int = 1400
    memory_bytes_per_point: float = 1300.0

    def map_unit(self, chunk_points: int, k: int, dim: int
                 ) -> Tuple[float, float, float, int]:
        """(cpu_seconds, input_bytes, output_bytes, memory_mb)."""
        cpu = self.cpu_per_pcd * chunk_points * k * dim
        inp = self.bytes_per_point_in * chunk_points
        out = self.bytes_per_point_shuffle * chunk_points
        mem = self.base_memory_mb + int(
            self.memory_bytes_per_point * chunk_points / 2 ** 20)
        return cpu, inp, out, mem

    def reduce_unit(self, total_points: int, ntasks: int, k: int, dim: int
                    ) -> Tuple[float, float, float, int]:
        """(cpu_seconds, input_bytes, output_bytes, memory_mb)."""
        cpu = 2e-9 * total_points * dim
        inp = self.bytes_per_point_shuffle * total_points
        out = 64.0 * k * dim
        return cpu, inp, out, self.base_memory_mb


# --------------------------------------------------- pilot decomposition
def run_kmeans_pilot(umgr, points: np.ndarray, k: int, ntasks: int,
                     iterations: int = 2,
                     cost: Optional[KMeansCost] = None,
                     initial: Optional[np.ndarray] = None,
                     cache_in_memory: bool = False):
    """Run K-Means through a Unit-Manager.  Simulation generator.

    Per iteration: ``ntasks`` map units (real partial sums over chunks,
    with modeled compute and I/O) and one reduce unit (real centroid
    update).  Returns ``(centroids, all_units)``.

    Works identically against plain (fork/Lustre) and YARN pilots —
    that is the paper's point: the application code does not change,
    only the pilot's agent configuration.

    ``cache_in_memory`` models the Tachyon/Spark pattern the paper's
    future work proposes for iterative algorithms (§V): the first
    iteration reads chunks from the backend's storage, later
    iterations serve them from the node's in-memory tier.
    """
    cost = cost or KMeansCost()
    dim = points.shape[1]
    chunks = np.array_split(points, ntasks)
    centroids = np.array(points[:k], dtype=np.float64) if initial is None \
        else np.array(initial, dtype=np.float64)
    all_units = []

    for iteration in range(iterations):
        frozen = centroids.copy()
        tier = ("memory" if cache_in_memory and iteration > 0
                else "default")
        map_descs = []
        for chunk in chunks:
            cpu, inp, out, mem = cost.map_unit(len(chunk), k, dim)
            map_descs.append(ComputeUnitDescription(
                executable="python", arguments=("kmeans_map.py",),
                name="kmeans-map", cores=1, memory_mb=mem,
                cpu_seconds=cpu, input_bytes=inp, output_bytes=out,
                input_tier=tier,
                function=_partial_sums, args=(chunk, frozen)))
        map_units = umgr.submit_units(map_descs)
        all_units.extend(map_units)
        yield umgr.wait_units(map_units)
        failed = [u for u in map_units if u.state.value != "Done"]
        if failed:
            raise RuntimeError(
                f"{len(failed)} map units failed: {failed[0].stderr}")
        partials = [u.result for u in map_units]

        cpu, inp, out, mem = cost.reduce_unit(len(points), ntasks, k, dim)

        def reduce_fn(prev=frozen, parts=tuple(partials)):
            sums = np.sum([p[0] for p in parts], axis=0)
            counts = np.sum([p[1] for p in parts], axis=0)
            return _update(prev, sums, counts)

        reduce_units = umgr.submit_units(ComputeUnitDescription(
            executable="python", arguments=("kmeans_reduce.py",),
            name="kmeans-reduce", cores=1, memory_mb=mem,
            cpu_seconds=cpu, input_bytes=inp, output_bytes=out,
            function=reduce_fn))
        all_units.extend(reduce_units)
        yield umgr.wait_units(reduce_units)
        if reduce_units[0].state.value != "Done":
            raise RuntimeError(
                f"reduce unit failed: {reduce_units[0].stderr}")
        centroids = reduce_units[0].result

    return centroids, all_units


# ----------------------------------------------------- MapReduce variant
def run_kmeans_mapreduce(env, hdfs, yarn, points: np.ndarray, k: int,
                         iterations: int = 2, num_blocks: int = 4,
                         initial: Optional[np.ndarray] = None,
                         cost: Optional[KMeansCost] = None):
    """K-Means as iterated MapReduce jobs over HDFS.  Generator.

    Each iteration is one MR job: mappers emit per-chunk partial sums
    keyed by cluster id fragment (a single reducer merges), with the
    chunk payloads stored as HDFS block payloads.  Returns centroids.
    """
    from repro.mapreduce import MapReduceJob, MRJobSpec

    cost = cost or KMeansCost()
    dim = points.shape[1]
    chunks = np.array_split(points, num_blocks)
    nbytes = cost.bytes_per_point_in * len(points)
    client = hdfs.client(hdfs.master_node.name)
    if not client.exists("/kmeans/points"):
        # one block per chunk, each block's payload being a single
        # "record" (the whole chunk) — so each map task sees one chunk
        yield env.process(client.put(
            "/kmeans/points", nbytes,
            payload_slices=[[chunk] for chunk in chunks],
            block_size=max(1.0, nbytes / num_blocks)))

    centroids = np.array(points[:k], dtype=np.float64) if initial is None \
        else np.array(initial, dtype=np.float64)

    for it in range(iterations):
        frozen = centroids.copy()

        def mapper(chunk, _c=frozen):
            sums, counts = _partial_sums(np.asarray(chunk), _c)
            return [("partial", (sums, counts))]

        def reducer(key, values, _c=frozen):
            sums = np.sum([v[0] for v in values], axis=0)
            counts = np.sum([v[1] for v in values], axis=0)
            return [_update(_c, sums, counts)]

        spec = MRJobSpec(
            name=f"kmeans-it{it}",
            input_path="/kmeans/points",
            output_path=f"/kmeans/out-{it}",
            mapper=mapper, reducer=reducer, num_reducers=1,
            map_cpu_per_record=0.0,
            bytes_per_pair=cost.bytes_per_point_shuffle
            * max(1, len(points) // num_blocks))
        job = MapReduceJob(env, spec, hdfs)
        # NOTE: the mapper receives whole chunks as records (one record
        # per block payload), so per-record CPU is charged via
        # map_cpu_per_record at chunk granularity.
        spec.map_cpu_per_record = cost.cpu_per_pcd * (
            len(points) / num_blocks) * k * dim
        output = yield env.process(job.run_on_yarn(yarn))
        centroids = output[0][0]

    return centroids


# --------------------------------------------------------- Spark variant
def run_kmeans_spark(ctx, points: np.ndarray, k: int,
                     iterations: int = 2, num_partitions: int = 4,
                     initial: Optional[np.ndarray] = None):
    """K-Means over cached Spark RDDs.  Generator returning centroids.

    The memory-centric variant the paper motivates Spark with: the
    point set is cached after the first materialization, so later
    iterations skip the (re)compute of the base partitions.
    """
    dim = points.shape[1]
    chunks = [np.asarray(c) for c in np.array_split(points, num_partitions)]
    rdd = ctx.parallelize(chunks, num_partitions).cache()
    centroids = np.array(points[:k], dtype=np.float64) if initial is None \
        else np.array(initial, dtype=np.float64)

    for _ in range(iterations):
        frozen = centroids.copy()
        partials = yield from (
            rdd.map(lambda chunk, _c=frozen: _partial_sums(chunk, _c))
            .collect())
        sums = np.sum([p[0] for p in partials], axis=0)
        counts = np.sum([p[1] for p in partials], axis=0)
        centroids = _update(frozen, sums, counts)

    return centroids
