"""Application workloads: K-Means (paper §IV-B) and MD trajectory analysis.

K-Means is the paper's evaluation workload.  It is implemented here
three ways, all computing *real* NumPy results validated against a
vectorized reference implementation:

* :func:`run_kmeans_pilot` — the paper's decomposition: per iteration,
  N map Compute-Units (partial sums over point chunks) and one reduce
  Compute-Unit (centroid update), submitted through the Unit-Manager to
  a plain (Lustre-bound) or YARN (local-disk) pilot;
* :func:`run_kmeans_mapreduce` — the same dataflow on the MapReduce
  engine over HDFS;
* :func:`run_kmeans_spark` — Spark RDD version with cached points
  (the memory-centric variant).

:mod:`~repro.analytics.trajectory` covers the future-work workload
(§V): molecular-dynamics trajectory analysis (RMSD, radius of
gyration) over trajectory chunks as Compute-Units.
"""

from repro.analytics.adaptive import (
    coverage,
    pick_seeds,
    run_adaptive_sampling,
    simulate_walker,
)
from repro.analytics.datagen import generate_points
from repro.analytics.genomics import (
    count_kmers_mapreduce,
    count_kmers_reference,
    generate_reads,
)
from repro.analytics.graphs import (
    count_triangles_local,
    count_triangles_pilot,
    count_triangles_reference,
    count_triangles_spark,
    generate_graph,
)
from repro.analytics.repex import (
    RepexResult,
    exchange_probability,
    run_replica_exchange,
)
from repro.analytics.kmeans import (
    KMeansCost,
    kmeans_reference,
    run_kmeans_mapreduce,
    run_kmeans_pilot,
    run_kmeans_spark,
)
from repro.analytics.trajectory import (
    radius_of_gyration,
    rmsd_to_reference,
    run_trajectory_analysis,
    synthesize_trajectory,
)

__all__ = [
    "KMeansCost",
    "count_kmers_mapreduce",
    "count_kmers_reference",
    "count_triangles_local",
    "count_triangles_pilot",
    "count_triangles_reference",
    "count_triangles_spark",
    "coverage",
    "generate_graph",
    "generate_points",
    "generate_reads",
    "RepexResult",
    "exchange_probability",
    "pick_seeds",
    "run_adaptive_sampling",
    "run_replica_exchange",
    "simulate_walker",
    "kmeans_reference",
    "radius_of_gyration",
    "rmsd_to_reference",
    "run_kmeans_mapreduce",
    "run_kmeans_pilot",
    "run_kmeans_spark",
    "run_trajectory_analysis",
    "synthesize_trajectory",
]
