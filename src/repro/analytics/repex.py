"""Replica-exchange sampling (paper ref [36]: RepEx).

The paper grounds the Pilot-Abstraction's HPC track record in RepEx,
"a flexible framework for scalable replica exchange molecular dynamics
simulations".  We implement the synchronous temperature-exchange
pattern over Compute-Units:

* each *replica* samples a 1-D double-well potential with Metropolis
  Monte Carlo at its own temperature (a real NumPy computation — the
  stand-in for an MD engine);
* after every simulation phase, adjacent temperature pairs attempt an
  exchange with the standard criterion
  ``min(1, exp((1/T_i - 1/T_j) (E_i - E_j)))``;
* rounds repeat — the canonical simulation/exchange cadence a pilot
  serves without re-queueing through the batch system.

The double well ``V(x) = (x^2 - 1)^2`` has minima at x = ±1: cold
replicas get trapped in one well; the temperature ladder lets
configurations escape via the hot end, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.description import ComputeUnitDescription


def potential(x: float) -> float:
    """The double-well potential V(x) = (x^2 - 1)^2."""
    return (x * x - 1.0) ** 2


def mc_run(start_x: float, temperature: float, steps: int,
           rng_seed: int, step_size: float = 0.25
           ) -> Tuple[np.ndarray, float, float]:
    """One replica's Metropolis run.

    Returns (samples, final_x, mean_energy).
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    rng = np.random.default_rng(rng_seed)
    x = float(start_x)
    energy = potential(x)
    samples = np.empty(steps)
    energies = np.empty(steps)
    for i in range(steps):
        proposal = x + rng.normal(0.0, step_size)
        e_new = potential(proposal)
        if e_new <= energy or rng.random() < np.exp(
                (energy - e_new) / temperature):
            x, energy = proposal, e_new
        samples[i] = x
        energies[i] = energy
    return samples, x, float(energies.mean())


def exchange_probability(t_i: float, t_j: float,
                         e_i: float, e_j: float) -> float:
    """The replica-exchange Metropolis criterion."""
    delta = (1.0 / t_i - 1.0 / t_j) * (e_i - e_j)
    return float(min(1.0, np.exp(delta)))


@dataclass
class RepexResult:
    """Everything a replica-exchange run produces."""

    temperatures: List[float]
    samples_by_temperature: List[np.ndarray]   # aligned with temperatures
    exchange_attempts: int = 0
    exchanges_accepted: int = 0
    rounds: int = 0

    @property
    def acceptance_ratio(self) -> float:
        if self.exchange_attempts == 0:
            return 0.0
        return self.exchanges_accepted / self.exchange_attempts


def run_replica_exchange(umgr, temperatures: List[float],
                         rounds: int = 4, steps_per_round: int = 400,
                         cpu_seconds_per_step: float = 0.05,
                         seed: int = 33) -> "generator":
    """Synchronous replica exchange over a Unit-Manager.  Generator.

    Each round submits one Compute-Unit per replica (the simulation
    phase runs concurrently on the pilot), then performs the exchange
    phase at the application level — the paper's coupled
    simulation/analysis pattern in its purest form.  Returns a
    :class:`RepexResult`.
    """
    if len(temperatures) < 2:
        raise ValueError("need at least 2 replicas")
    if sorted(temperatures) != list(temperatures):
        raise ValueError("temperatures must be sorted ascending")
    rng = np.random.default_rng(seed)
    positions = [(-1.0 if i % 2 == 0 else 1.0)
                 for i in range(len(temperatures))]
    result = RepexResult(
        temperatures=list(temperatures),
        samples_by_temperature=[np.empty(0) for _ in temperatures])

    for round_index in range(rounds):
        descs = []
        for r, (x0, temp) in enumerate(zip(positions, temperatures, strict=True)):
            descs.append(ComputeUnitDescription(
                executable="repex_replica",
                arguments=(f"--T={temp}", f"--round={round_index}"),
                name=f"replica-r{round_index}-t{r}",
                cores=1,
                cpu_seconds=cpu_seconds_per_step * steps_per_round,
                output_bytes=8.0 * steps_per_round,
                function=mc_run,
                args=(x0, temp, steps_per_round,
                      seed + round_index * 100 + r)))
        units = umgr.submit_units(descs)
        yield umgr.wait_units(units)
        failed = [u for u in units if u.state.value != "Done"]
        if failed:
            raise RuntimeError(f"{len(failed)} replicas failed")

        energies = []
        for r, unit in enumerate(units):
            samples, final_x, mean_energy = unit.result
            result.samples_by_temperature[r] = np.concatenate(
                [result.samples_by_temperature[r], samples])
            positions[r] = final_x
            energies.append(potential(final_x))

        # exchange phase: alternate even/odd adjacent pairs per round
        for i in range(round_index % 2, len(temperatures) - 1, 2):
            result.exchange_attempts += 1
            p = exchange_probability(temperatures[i], temperatures[i + 1],
                                     energies[i], energies[i + 1])
            if rng.random() < p:
                result.exchanges_accepted += 1
                positions[i], positions[i + 1] = (positions[i + 1],
                                                  positions[i])
                energies[i], energies[i + 1] = (energies[i + 1],
                                                energies[i])
        result.rounds += 1

    return result
