"""Spark: a functional standalone-mode Spark simulator.

The paper integrates Spark via its *standalone* deployment (§III-D):
RADICAL-Pilot's LRM boots a Master and per-node Workers, then
applications run against the cluster.  This package provides:

* :class:`SparkMaster` / :class:`SparkWorker` — the standalone cluster
  manager: worker registration, executor allocation per application,
  daemon start/stop costs (paid by the Mode I bootstrap), and
  ``sbin/stop-all.sh``-style shutdown.
* :class:`SparkContext` + :class:`RDD` — a real, lazy RDD engine:
  transformations build a lineage DAG; actions hand it to a DAG
  scheduler that cuts stages at shuffle boundaries and runs one task
  per partition on executor cores, with shuffle bytes charged to local
  disks and the interconnect (Spark's memory-centric caching via
  ``.cache()``).

Results are computed for real (Python data in partitions); time is
simulated.
"""

from repro.spark.cluster import SparkStandaloneCluster
from repro.spark.context import SparkConf, SparkContext
from repro.spark.master import ExecutorInfo, SparkMaster, SparkWorker
from repro.spark.mllib import (
    ColumnStats,
    KMeansModel,
    LinearRegressionModel,
    col_stats,
)
from repro.spark.rdd import RDD
from repro.spark.sql import DataFrame, create_dataframe

__all__ = [
    "ColumnStats",
    "DataFrame",
    "ExecutorInfo",
    "KMeansModel",
    "LinearRegressionModel",
    "RDD",
    "col_stats",
    "create_dataframe",
    "SparkConf",
    "SparkContext",
    "SparkMaster",
    "SparkStandaloneCluster",
    "SparkWorker",
]
