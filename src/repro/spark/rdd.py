"""RDDs: lazy, partitioned, lineage-tracked collections.

Transformations build the DAG; nothing computes until an action.  All
``compute_partition`` methods are simulation generators so they can
charge I/O (shuffle fetches) to the hardware models while producing
real Python records.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


class RDD:
    """Base class: lineage node with ``num_partitions`` partitions.

    RDD ids are allocated by the owning context (session-scoped), not a
    module-global counter, so a fresh context always numbers from 1 —
    what keeps independent sweep cells hermetic no matter what ran
    earlier in the process.
    """

    def __init__(self, ctx, num_partitions: int,
                 parent: Optional["RDD"] = None):
        self.ctx = ctx
        self.rdd_id = ctx.next_rdd_id()
        self.num_partitions = num_partitions
        self.parent = parent
        self._cached = False

    # -------------------------------------------------------- transformations
    def map(self, f: Callable[[Any], Any]) -> "RDD":
        """Element-wise transform (narrow)."""
        return MappedRDD(self, lambda it: [f(x) for x in it])

    def filter(self, f: Callable[[Any], bool]) -> "RDD":
        """Keep elements where ``f`` holds (narrow)."""
        return MappedRDD(self, lambda it: [x for x in it if f(x)])

    def flat_map(self, f: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Map then flatten (narrow)."""
        return MappedRDD(self, lambda it: [y for x in it for y in f(x)])

    def map_partitions(self, f: Callable[[Iterable[Any]], Iterable[Any]]) -> "RDD":
        """Whole-partition transform (narrow)."""
        return MappedRDD(self, f)

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs' partitions (narrow)."""
        return UnionRDD(self, other)

    def reduce_by_key(self, f: Callable[[Any, Any], Any],
                      num_partitions: Optional[int] = None) -> "RDD":
        """Merge values per key with map-side combining (wide)."""
        return ShuffledRDD(self, num_partitions or self.num_partitions,
                           combiner=f)

    def group_by_key(self, num_partitions: Optional[int] = None) -> "RDD":
        """Group values per key (wide)."""
        return ShuffledRDD(self, num_partitions or self.num_partitions,
                           combiner=None)

    def distinct(self) -> "RDD":
        """Deduplicate (wide, via reduce_by_key)."""
        return (self.map(lambda x: (x, None))
                .reduce_by_key(lambda a, b: a)
                .map(lambda kv: kv[0]))

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Bernoulli sample (narrow, deterministic per partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        import numpy as _np

        def sampler(it, _f=fraction, _s=seed):
            records = list(it)
            rng = _np.random.default_rng(_s)
            keep = rng.random(len(records)) < _f
            return [r for r, k in zip(records, keep, strict=True) if k]

        return MappedRDD(self, sampler)

    def cogroup(self, other: "RDD",
                num_partitions: Optional[int] = None) -> "RDD":
        """Group both RDDs by key: (k, (values_self, values_other)).

        Built on tagged union + group_by_key, so it reuses the shuffle
        machinery (wide).
        """
        left = self.map(lambda kv: (kv[0], (0, kv[1])))
        right = other.map(lambda kv: (kv[0], (1, kv[1])))

        def split(kv):
            key, tagged = kv
            mine = [v for tag, v in tagged if tag == 0]
            theirs = [v for tag, v in tagged if tag == 1]
            return (key, (mine, theirs))

        return left.union(right).group_by_key(num_partitions).map(split)

    def join(self, other: "RDD",
             num_partitions: Optional[int] = None) -> "RDD":
        """Inner join on keys: (k, (v_self, v_other)) pairs (wide)."""
        return self.cogroup(other, num_partitions).flat_map(
            lambda kv: [(kv[0], (a, b))
                        for a in kv[1][0] for b in kv[1][1]])

    def sort_by(self, keyfunc: Callable[[Any], Any],
                ascending: bool = True) -> "RDD":
        """Total sort by ``keyfunc``.

        Simplification vs. Spark's range-partitioned sort: everything
        shuffles to a single partition and sorts there (fine at
        simulation scale; documents itself as one wide stage).
        """
        tagged = self.map(lambda x: (keyfunc(x), x)).group_by_key(1)

        def emit(it):
            pairs = list(it)
            pairs.sort(key=lambda kv: kv[0], reverse=not ascending)
            return [x for _, values in pairs for x in values]

        return tagged.map_partitions(emit)

    def cache(self) -> "RDD":
        """Materialize partitions in executor memory after first compute."""
        self._cached = True
        return self

    # --------------------------------------------------------------- actions
    def collect(self):
        """All records.  Generator (drive with ``yield from`` or env.run)."""
        parts = yield from self.ctx.run_job(self)
        out: List[Any] = []
        for part in parts:
            out.extend(part)
        return out

    def count(self):
        """Number of records.  Generator."""
        parts = yield from self.ctx.run_job(self)
        return sum(len(p) for p in parts)

    def reduce(self, f: Callable[[Any, Any], Any]):
        """Fold all records with ``f``.  Generator."""
        records = yield from self.collect()
        if not records:
            raise ValueError("reduce of empty RDD")
        acc = records[0]
        for x in records[1:]:
            acc = f(acc, x)
        return acc

    def take(self, n: int):
        """First ``n`` records.  Generator."""
        records = yield from self.collect()
        return records[:n]

    def aggregate(self, zero: Any, seq_op: Callable[[Any, Any], Any],
                  comb_op: Callable[[Any, Any], Any]):
        """Per-partition fold with ``seq_op``, merged with ``comb_op``.
        Generator."""
        parts = yield from self.ctx.run_job(self)
        merged = zero
        for part in parts:
            acc = zero
            for record in part:
                acc = seq_op(acc, record)
            merged = comb_op(merged, acc)
        return merged

    def count_by_key(self):
        """Dict of key -> occurrence count (pairs RDD).  Generator."""
        pairs = yield from self.collect()
        counts: Dict[Any, int] = {}
        for k, _ in pairs:
            counts[k] = counts.get(k, 0) + 1
        return counts

    # ------------------------------------------------------------- plumbing
    def shuffle_dependencies(self) -> List["ShuffledRDD"]:
        """Direct wide dependencies of this RDD's narrow chain."""
        deps: List[ShuffledRDD] = []
        stack: List[RDD] = [self]
        while stack:
            rdd = stack.pop()
            for parent in rdd.parents():
                if isinstance(parent, ShuffledRDD):
                    deps.append(parent)
                else:
                    stack.append(parent)
        return deps

    def parents(self) -> List["RDD"]:
        return [self.parent] if self.parent is not None else []

    def compute_partition(self, index: int, task_ctx):
        """Produce partition ``index``.  Simulation generator."""
        raise NotImplementedError

    def estimated_record_cpu(self) -> float:
        """Reference-CPU seconds per record for tasks over this RDD."""
        return self.ctx.conf.cpu_seconds_per_record


class ParallelCollectionRDD(RDD):
    """An RDD from an in-memory collection, sliced evenly.

    Slices are *contiguous* (as in Spark), so ``collect`` preserves the
    input order and ``take(n)`` returns the first n elements.
    """

    def __init__(self, ctx, data: List[Any], num_partitions: int):
        super().__init__(ctx, num_partitions)
        base, extra = divmod(len(data), num_partitions)
        self._slices: List[List[Any]] = []
        start = 0
        for i in range(num_partitions):
            size = base + (1 if i < extra else 0)
            self._slices.append(list(data[start:start + size]))
            start += size

    def compute_partition(self, index: int, task_ctx):
        if False:  # pragma: no cover - make this a generator
            yield None
        return list(self._slices[index])


class MappedRDD(RDD):
    """Narrow transform of one parent (map/filter/flatMap/mapPartitions)."""

    def __init__(self, parent: RDD, f: Callable[[Iterable[Any]], Iterable[Any]]):
        super().__init__(parent.ctx, parent.num_partitions, parent=parent)
        self.f = f

    def compute_partition(self, index: int, task_ctx):
        records = yield from self.ctx.materialize(self.parent, index,
                                                  task_ctx)
        out = self.f(records)
        # The built-in transforms produce lists already; only user
        # map_partitions generators need materializing.
        return out if isinstance(out, list) else list(out)


class UnionRDD(RDD):
    """Concatenation: partitions of left followed by partitions of right."""

    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.ctx, left.num_partitions + right.num_partitions)
        self.left = left
        self.right = right

    def parents(self) -> List[RDD]:
        return [self.left, self.right]

    def compute_partition(self, index: int, task_ctx):
        if index < self.left.num_partitions:
            records = yield from self.ctx.materialize(self.left, index,
                                                      task_ctx)
        else:
            records = yield from self.ctx.materialize(
                self.right, index - self.left.num_partitions, task_ctx)
        return records


class HdfsRDD(RDD):
    """An RDD backed by an HDFS file: one partition per block.

    Tasks read their block through a client bound to *their* node, so
    reads are node-local whenever the executor holds a replica — the
    locality story Spark-on-HDFS relies on.
    """

    def __init__(self, ctx, hdfs, path: str):
        meta = hdfs.namenode.file_meta(path)
        super().__init__(ctx, num_partitions=len(meta.blocks))
        self.hdfs = hdfs
        self.path = path
        self.blocks = list(meta.blocks)

    def compute_partition(self, index: int, task_ctx):
        client = self.hdfs.client(task_ctx.node.name)
        payload = yield from client.read_block(self.blocks[index])
        if payload is None:
            return []
        return list(payload)


class ShuffledRDD(RDD):
    """Wide dependency: hash-partitioned by key across the cluster.

    The parent stage's tasks write hash-bucketed map outputs to their
    node's local disk (registered with the context's shuffle manager);
    this RDD's tasks fetch their bucket from every map output, paying
    disk reads and network hops, then merge (with the optional
    ``combiner``, reduce_by_key semantics) or group (group_by_key).
    """

    def __init__(self, parent: RDD, num_partitions: int,
                 combiner: Optional[Callable[[Any, Any], Any]]):
        super().__init__(parent.ctx, num_partitions, parent=parent)
        self.combiner = combiner
        self.shuffle_id = self.rdd_id

    def compute_partition(self, index: int, task_ctx):
        pairs = yield from self.ctx.shuffle_fetch(self, index, task_ctx)
        combine = self.combiner
        if combine is not None:
            merged: Dict[Any, Any] = {}
            get = merged.get
            missing = object()
            for k, v in pairs:
                cur = get(k, missing)
                merged[k] = v if cur is missing else combine(cur, v)
            return list(merged.items())
        groups: Dict[Any, List[Any]] = defaultdict(list)
        for k, v in pairs:
            groups[k].append(v)
        return list(groups.items())
