"""MLlib-lite: distributed learning kernels over the RDD engine.

The paper repeatedly leans on MLlib as the exemplar of Hadoop-side
analytics ("advanced analytic tools, such as MLLib and SparkR", §II)
and notes its HPC lineage ("MLlib relies on HPC BLAS libraries", §V).
This module provides the same shape: models whose *distributed* part
is partial-sum aggregation over RDD partitions and whose *solver* is
dense linear algebra at the driver (NumPy -> BLAS — literally the HPC
code-reuse pattern §V describes).

* :class:`KMeansModel` — Lloyd's algorithm over an RDD of vectors;
  numerically identical to :func:`repro.analytics.kmeans_reference`.
* :class:`LinearRegressionModel` — least squares via distributed
  normal equations (X^T X and X^T y as partition partial sums).
* :func:`col_stats` — column means/variances/min/max in one pass
  (Statistics.colStats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analytics.kmeans import _partial_sums, _update


@dataclass
class KMeansModel:
    """Fitted K-Means: centroids + assignment."""

    centroids: np.ndarray

    def predict(self, vector) -> int:
        """Index of the nearest centroid."""
        delta = self.centroids - np.asarray(vector, dtype=np.float64)
        return int(np.argmin((delta ** 2).sum(axis=1)))

    @classmethod
    def train(cls, rdd, k: int, iterations: int = 5,
              initial: Optional[np.ndarray] = None):
        """Fit over an RDD of vectors.  Generator -> KMeansModel.

        Each iteration is one RDD pass: partitions compute partial
        (sums, counts) against the broadcast centroids; the driver
        merges and updates.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if initial is None:
            head = yield from rdd.take(k)
            if len(head) < k:
                raise ValueError("need at least k vectors")
            centroids = np.array(head, dtype=np.float64)
        else:
            centroids = np.array(initial, dtype=np.float64)

        for _ in range(iterations):
            frozen = centroids.copy()

            def partials(part, _c=frozen):
                records = list(part)
                if not records:
                    return []
                return [_partial_sums(np.asarray(records, dtype=np.float64),
                                      _c)]

            parts = yield from rdd.map_partitions(partials).collect()
            if not parts:
                break
            sums = np.sum([p[0] for p in parts], axis=0)
            counts = np.sum([p[1] for p in parts], axis=0)
            centroids = _update(frozen, sums, counts)
        return cls(centroids=centroids)


@dataclass
class LinearRegressionModel:
    """Fitted least squares: weights (+ intercept as weights[-1])."""

    weights: np.ndarray

    def predict(self, features) -> float:
        x = np.append(np.asarray(features, dtype=np.float64), 1.0)
        return float(x @ self.weights)

    @classmethod
    def train(cls, rdd):
        """Fit over an RDD of ``(features, label)``.  Generator.

        The distributed part accumulates the normal equations
        (X^T X, X^T y) per partition; the dense solve happens at the
        driver through NumPy/BLAS.
        """

        def partials(part):
            rows = list(part)
            if not rows:
                return []
            X = np.array([np.append(np.asarray(f, dtype=np.float64), 1.0)
                          for f, _ in rows])
            y = np.array([label for _, label in rows], dtype=np.float64)
            return [(X.T @ X, X.T @ y)]

        parts = yield from rdd.map_partitions(partials).collect()
        if not parts:
            raise ValueError("cannot fit on an empty RDD")
        xtx = np.sum([p[0] for p in parts], axis=0)
        xty = np.sum([p[1] for p in parts], axis=0)
        weights, *_ = np.linalg.lstsq(xtx, xty, rcond=None)
        return cls(weights=weights)


@dataclass
class ColumnStats:
    """One-pass column statistics (Statistics.colStats)."""

    count: int
    mean: np.ndarray
    variance: np.ndarray
    min: np.ndarray
    max: np.ndarray


def col_stats(rdd):
    """Column statistics over an RDD of vectors.  Generator."""

    def partials(part):
        rows = list(part)
        if not rows:
            return []
        X = np.asarray(rows, dtype=np.float64)
        return [(len(X), X.sum(axis=0), (X ** 2).sum(axis=0),
                 X.min(axis=0), X.max(axis=0))]

    parts = yield from rdd.map_partitions(partials).collect()
    if not parts:
        raise ValueError("colStats of an empty RDD")
    count = sum(p[0] for p in parts)
    total = np.sum([p[1] for p in parts], axis=0)
    total_sq = np.sum([p[2] for p in parts], axis=0)
    mean = total / count
    # unbiased sample variance, as MLlib reports
    variance = (total_sq - count * mean ** 2) / max(1, count - 1)
    return ColumnStats(
        count=count, mean=mean, variance=variance,
        min=np.min([p[3] for p in parts], axis=0),
        max=np.max([p[4] for p in parts], axis=0))
