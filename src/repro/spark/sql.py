"""Spark SQL-lite: DataFrames over the RDD engine.

SAGA-Hadoop's contract (paper §III-A) is that "an application written
for YARN (e.g. MapReduce) or Spark (e.g. PySpark, DataFrame and MLlib
applications) can be executed on HPC resources" — so the Spark
substrate carries a DataFrame layer: named-column rows (dicts) with
the core relational verbs, each compiling down to RDD operations (and
therefore to the same simulated stages, shuffles and I/O).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.spark.rdd import RDD

Row = Dict[str, Any]

#: Aggregations supported by ``group_by(...).agg(...)``.
_AGGREGATES = {
    "sum": lambda values: sum(values),
    "count": lambda values: len(values),
    "avg": lambda values: sum(values) / len(values) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


class GroupedData:
    """The result of ``DataFrame.group_by``: waiting for ``agg``."""

    def __init__(self, df: "DataFrame", key: str):
        self._df = df
        self._key = key

    def agg(self, aggregations: Dict[str, str]) -> "DataFrame":
        """Aggregate columns: ``{"price": "avg", "qty": "sum"}``.

        Output rows carry the group key plus ``<col>_<agg>`` columns.
        """
        for how in aggregations.values():
            if how not in _AGGREGATES:
                raise ValueError(
                    f"unknown aggregate {how!r}; known: "
                    f"{sorted(_AGGREGATES)}")
        key = self._key
        items = tuple(aggregations.items())

        def to_pair(row: Row):
            return (row[key], row)

        def fold(group):
            group_key, rows = group
            out: Row = {key: group_key}
            for column, how in items:
                values = [r[column] for r in rows if column in r]
                out[f"{column}_{how}"] = _AGGREGATES[how](values)
            return out

        rdd = self._df._rdd.map(to_pair).group_by_key().map(fold)
        return DataFrame(rdd)

    def count(self) -> "DataFrame":
        """Rows per group, as ``{key, count}`` rows."""
        key = self._key
        rdd = (self._df._rdd.map(lambda row: (row[key], 1))
               .reduce_by_key(lambda a, b: a + b)
               .map(lambda kv: {key: kv[0], "count": kv[1]}))
        return DataFrame(rdd)


class DataFrame:
    """A lazily-evaluated collection of dict rows."""

    def __init__(self, rdd: RDD):
        self._rdd = rdd

    # -------------------------------------------------------- transforms
    def select(self, *columns: str) -> "DataFrame":
        """Keep only the named columns."""
        cols = tuple(columns)
        return DataFrame(self._rdd.map(
            lambda row: {c: row[c] for c in cols}))

    def where(self, predicate: Callable[[Row], bool]) -> "DataFrame":
        """Keep rows where ``predicate(row)`` holds."""
        return DataFrame(self._rdd.filter(predicate))

    filter = where

    def with_column(self, name: str,
                    fn: Callable[[Row], Any]) -> "DataFrame":
        """Add (or replace) a derived column."""
        return DataFrame(self._rdd.map(
            lambda row: {**row, name: fn(row)}))

    def group_by(self, key: str) -> GroupedData:
        """Group rows by one column's value."""
        return GroupedData(self, key)

    def join(self, other: "DataFrame", on: str) -> "DataFrame":
        """Inner equi-join on one column (wide)."""
        left = self._rdd.map(lambda row: (row[on], row))
        right = other._rdd.map(lambda row: (row[on], row))
        return DataFrame(left.join(right).map(
            lambda kv: {**kv[1][0], **kv[1][1]}))

    def order_by(self, key: str, ascending: bool = True) -> "DataFrame":
        """Total sort by one column."""
        return DataFrame(self._rdd.sort_by(
            lambda row: row[key], ascending=ascending))

    def to_rdd(self) -> RDD:
        return self._rdd

    # ----------------------------------------------------------- actions
    def collect(self):
        """All rows.  Generator."""
        rows = yield from self._rdd.collect()
        return rows

    def count(self):
        """Number of rows.  Generator."""
        n = yield from self._rdd.count()
        return n

    def show(self, n: int = 10):
        """First ``n`` rows rendered as a text table.  Generator."""
        rows = yield from self._rdd.take(n)
        if not rows:
            return "(empty)"
        columns = sorted({c for row in rows for c in row})
        widths = {c: max(len(c), *(len(str(r.get(c, ""))) for r in rows))
                  for c in columns}
        header = " | ".join(c.ljust(widths[c]) for c in columns)
        sep = "-+-".join("-" * widths[c] for c in columns)
        body = [" | ".join(str(r.get(c, "")).rjust(widths[c])
                           for c in columns) for r in rows]
        return "\n".join([header, sep] + body)


def create_dataframe(ctx, rows: Sequence[Row],
                     num_partitions: Optional[int] = None) -> DataFrame:
    """Build a DataFrame from local dict rows."""
    rows = list(rows)
    for row in rows:
        if not isinstance(row, dict):
            raise TypeError(f"rows must be dicts, got {type(row).__name__}")
    return DataFrame(ctx.parallelize(rows, num_partitions))
