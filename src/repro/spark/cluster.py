"""SparkStandaloneCluster: deploy-level wiring of master + workers.

What the RADICAL-Pilot Spark LRM (and SAGA-Hadoop's Spark plugin)
boots on an allocation: the Master on the first node, one Worker per
node, with the modeled daemon startup the Mode I bootstrap pays.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.machine import Machine
from repro.cluster.node import Node
from repro.sim.engine import Environment
from repro.spark.context import SparkConf, SparkContext
from repro.spark.master import SparkMaster, SparkWorker


class SparkStandaloneCluster:
    """One standalone Spark deployment over a set of nodes."""

    def __init__(self, env: Environment, machine: Machine,
                 nodes: List[Node]):
        self.env = env
        self.machine = machine
        self.nodes = list(nodes)
        self.master = SparkMaster(env)
        self.workers = [SparkWorker(env, node) for node in self.nodes]
        for worker in self.workers:
            self.master.register_worker(worker)
        self.running = False

    @property
    def master_node(self) -> Node:
        return self.nodes[0]

    def start(self):
        """Boot the Master, then all Workers in parallel.  Generator."""
        yield self.env.process(self.master.start())
        starts = [self.env.process(w.start()) for w in self.workers]
        yield self.env.all_of(starts)
        self.running = True

    def stop(self) -> None:
        """``sbin/stop-all.sh``."""
        self.master.stop()
        self.running = False

    def context(self, conf: Optional[SparkConf] = None):
        """Create and start a SparkContext.  Generator returning it."""
        ctx = SparkContext(self.env, self.master, conf,
                           network=self.machine.network)
        yield from ctx.start()
        return ctx
