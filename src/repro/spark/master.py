"""Spark standalone cluster manager: Master and Workers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.node import Node
from repro.sim.engine import Environment, SimulationError
from repro.sim.resources import Resource


@dataclass
class ExecutorInfo:
    """One executor granted to an application."""

    executor_id: str
    node: Node
    cores: int
    memory_bytes: float
    #: task-slot gate: capacity == cores
    slots: Resource = None  # type: ignore[assignment]


class SparkWorker:
    """Per-node worker daemon: offers cores+memory, launches executors."""

    #: Daemon startup (JVM), seconds.
    STARTUP_SECONDS = 3.0
    #: Executor launch (JVM + scheduler registration), seconds.
    EXECUTOR_LAUNCH_SECONDS = 4.0

    def __init__(self, env: Environment, node: Node):
        self.env = env
        self.node = node
        self.cores_free = node.num_cores
        self.memory_free = node.memory_bytes
        self.running = False

    @property
    def name(self) -> str:
        return self.node.name

    def start(self):
        yield self.env.timeout(self.STARTUP_SECONDS)
        self.running = True

    def stop(self) -> None:
        self.running = False


class SparkMaster:
    """The standalone Master: tracks workers, grants executors.

    ``request_executors`` implements the default spread-out allocation:
    executors are placed round-robin across workers with free capacity,
    each with ``executor_cores`` cores and ``executor_memory`` bytes.
    """

    #: Daemon startup (JVM), seconds.
    STARTUP_SECONDS = 4.0

    def __init__(self, env: Environment):
        self.env = env
        self.workers: List[SparkWorker] = []
        self.running = False
        self._executor_seq = 0
        self._granted: Dict[str, List[ExecutorInfo]] = {}

    def start(self):
        yield self.env.timeout(self.STARTUP_SECONDS)
        self.running = True

    def stop(self) -> None:
        """``sbin/stop-all.sh``: stop master and all workers."""
        for worker in self.workers:
            worker.stop()
        self.running = False

    def register_worker(self, worker: SparkWorker) -> None:
        self.workers.append(worker)

    @property
    def total_cores(self) -> int:
        return sum(w.node.num_cores for w in self.workers if w.running)

    def request_executors(self, app_id: str, count: int,
                          executor_cores: int, executor_memory: float):
        """Allocate ``count`` executors, spread out.  Generator.

        Returns the granted :class:`ExecutorInfo` list (may be shorter
        than ``count`` if the cluster lacks capacity, as in real Spark).
        """
        if not self.running:
            raise SimulationError("spark master not running")
        granted: List[ExecutorInfo] = []
        live = [w for w in self.workers if w.running]
        idx = 0
        attempts = 0
        while len(granted) < count and attempts < count * max(1, len(live)):
            attempts += 1
            if not live:
                break
            worker = live[idx % len(live)]
            idx += 1
            if (worker.cores_free >= executor_cores
                    and worker.memory_free >= executor_memory):
                worker.cores_free -= executor_cores
                worker.memory_free -= executor_memory
                self._executor_seq += 1
                granted.append(ExecutorInfo(
                    executor_id=f"exec-{self._executor_seq}",
                    node=worker.node, cores=executor_cores,
                    memory_bytes=executor_memory,
                    slots=Resource(self.env, capacity=executor_cores)))
        if granted:
            # Executors launch in parallel on their workers.
            yield self.env.timeout(SparkWorker.EXECUTOR_LAUNCH_SECONDS)
        self._granted.setdefault(app_id, []).extend(granted)
        return granted

    def release_executors(self, app_id: str) -> None:
        """Return an application's executors to the workers."""
        for info in self._granted.pop(app_id, []):
            for worker in self.workers:
                if worker.node is info.node:
                    worker.cores_free += info.cores
                    worker.memory_free += info.memory_bytes
                    break
