"""SparkContext: driver-side entry point and DAG scheduler.

The scheduler cuts the lineage graph at shuffle boundaries: every
:class:`~repro.spark.rdd.ShuffledRDD` dependency becomes a *shuffle map
stage* whose tasks bucket their output by key-hash onto their node's
local disk; the dependent stage fetches those buckets over the
interconnect.  Tasks occupy executor cores (slots) and pay a
configurable CPU cost per record, scaled by node speed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.hashing import stable_hash
from repro.sim.engine import Environment, SimulationError
from repro.spark.master import ExecutorInfo, SparkMaster
from repro.spark.rdd import RDD, ParallelCollectionRDD, ShuffledRDD


@dataclass
class SparkConf:
    """Driver/application configuration (spark-defaults.conf subset)."""

    app_name: str = "app"
    num_executors: int = 2
    executor_cores: int = 2
    executor_memory: float = 4 * 1024 ** 3
    default_parallelism: int = 4
    #: reference-CPU seconds of work per record processed by a task.
    cpu_seconds_per_record: float = 0.0
    #: serialized size of one record/pair on the shuffle wire.
    bytes_per_record: float = 64.0


class TaskContext:
    """What a running task knows: which executor/node it is on."""

    def __init__(self, executor: ExecutorInfo):
        self.executor = executor
        self.node = executor.node


class Broadcast:
    """A read-only value shipped to all executors (``bc.value``)."""

    def __init__(self, value, nbytes: float):
        self.value = value
        self.nbytes = nbytes


class Accumulator:
    """Task-incremented counter, read at the driver (``acc.value``)."""

    def __init__(self, initial=0):
        self.value = initial

    def add(self, amount) -> None:
        self.value = self.value + amount


class SparkContext:
    """Driver: owns executors, the shuffle manager and the RDD cache."""

    def __init__(self, env: Environment, master: SparkMaster,
                 conf: Optional[SparkConf] = None, network=None):
        self.env = env
        self.master = master
        self.conf = conf or SparkConf()
        self.network = network
        self.app_id = f"spark-{id(self) & 0xFFFF:04x}"
        self.executors: List[ExecutorInfo] = []
        #: (shuffle_id) -> list of (node_name, {bucket: [(k, v)]})
        self._shuffle_outputs: Dict[int, List[Tuple[str, Dict[int, list]]]] = {}
        self._cache: Dict[Tuple[int, int], list] = {}
        self._stopped = False
        self._executor_rr = itertools.count()
        #: Session-scoped RDD ids: a fresh context numbers from 1, so
        #: sweep cells stay hermetic (no module-global counter state).
        self._rdd_ids = itertools.count(1)

    def next_rdd_id(self) -> int:
        """Allocate the next RDD id (context-scoped, starts at 1)."""
        return next(self._rdd_ids)

    # ------------------------------------------------------------ lifecycle
    def start(self):
        """Acquire executors from the master.  Generator."""
        granted = yield from self.master.request_executors(
            self.app_id, self.conf.num_executors,
            self.conf.executor_cores, self.conf.executor_memory)
        if not granted:
            raise SimulationError("no executors granted")
        self.executors = granted
        return self

    def stop(self) -> None:
        """Release executors; the context becomes unusable."""
        self.master.release_executors(self.app_id)
        self.executors = []
        self._stopped = True

    # ------------------------------------------------------------ creation
    def parallelize(self, data, num_slices: Optional[int] = None) -> RDD:
        """Distribute a local collection."""
        n = num_slices or self.conf.default_parallelism
        if n < 1:
            raise ValueError("num_slices must be >= 1")
        return ParallelCollectionRDD(self, list(data), n)

    def text_file(self, hdfs, path: str) -> RDD:
        """An RDD over an HDFS file, one partition per block (reads are
        node-local where the executor holds a replica)."""
        from repro.spark.rdd import HdfsRDD
        return HdfsRDD(self, hdfs, path)

    def broadcast(self, value, nbytes: float = 1024.0):
        """Ship a read-only value to every executor node.  Generator.

        Pays one fabric transfer per distinct executor node (torrent-
        style distribution is not modeled); returns a
        :class:`Broadcast` handle whose ``.value`` tasks read locally.
        """
        nodes = {e.node.name for e in self.executors}
        if self.network is not None and len(nodes) > 1:
            source = next(iter(sorted(nodes)))
            sends = [self.network.send(source, target, nbytes)
                     for target in sorted(nodes) if target != source]
            for send in sends:
                yield send
        return Broadcast(value, nbytes)

    def accumulator(self, initial=0):
        """A write-only-from-tasks counter, readable at the driver."""
        return Accumulator(initial)

    # ------------------------------------------------------------ execution
    def run_job(self, rdd: RDD):
        """Run all stages needed for ``rdd``; generator returning the
        list of partition results."""
        if self._stopped or not self.executors:
            raise SimulationError("SparkContext is not started")
        yield from self._ensure_shuffle_deps(rdd)
        results = yield from self._run_stage(rdd)
        return results

    def _ensure_shuffle_deps(self, rdd: RDD):
        if isinstance(rdd, ShuffledRDD):
            # The stage *producing* this RDD is its own map stage.
            if rdd.shuffle_id not in self._shuffle_outputs:
                yield from self._ensure_shuffle_deps(rdd.parent)
                yield from self._run_shuffle_map_stage(rdd)
            return
        for dep in rdd.shuffle_dependencies():
            if dep.shuffle_id in self._shuffle_outputs:
                continue
            # Parent stages of the map stage first (recursion bottoms
            # out at ParallelCollection leaves).
            yield from self._ensure_shuffle_deps(dep.parent)
            yield from self._run_shuffle_map_stage(dep)

    def _pick_executor(self) -> ExecutorInfo:
        return self.executors[next(self._executor_rr) % len(self.executors)]

    def _task(self, body, executor: ExecutorInfo):
        """Wrap a task body with slot acquisition and CPU accounting."""

        def runner():
            with executor.slots.request() as slot:
                yield slot
                records = yield from body(TaskContext(executor))
                cpu = len(records) * self.conf.cpu_seconds_per_record
                if cpu > 0:
                    yield self.env.timeout(
                        executor.node.compute_seconds(
                            cpu / max(1, executor.cores)))
                return records

        return self.env.process(runner())

    def _run_stage(self, rdd: RDD):
        """Result stage: one task per partition of ``rdd``."""
        tasks = []
        for index in range(rdd.num_partitions):
            executor = self._pick_executor()

            def body(task_ctx, _i=index):
                records = yield from self.materialize(rdd, _i, task_ctx)
                return records

            tasks.append(self._task(body, executor))
        yield self.env.all_of(tasks)
        return [t.value for t in tasks]

    def _run_shuffle_map_stage(self, dep: ShuffledRDD):
        """Map side of a shuffle: bucket parent partitions by key-hash."""
        parent = dep.parent
        outputs: List[Tuple[str, Dict[int, list]]] = [None] * parent.num_partitions  # type: ignore[list-item]
        tasks = []
        for index in range(parent.num_partitions):
            executor = self._pick_executor()

            def body(task_ctx, _i=index):
                records = yield from self.materialize(parent, _i, task_ctx)
                # Bucket by stable_hash (not builtin hash: salted per
                # process for strings), memoised per distinct key.
                buckets: Dict[int, list] = {}
                bucket_of: Dict[Any, int] = {}
                n_buckets = dep.num_partitions
                for record in records:
                    if not (isinstance(record, tuple) and len(record) == 2):
                        raise TypeError(
                            f"shuffle needs (key, value) pairs, got "
                            f"{record!r}")
                    k = record[0]
                    b = bucket_of.get(k)
                    if b is None:
                        b = bucket_of[k] = stable_hash(k) % n_buckets
                    bucket = buckets.get(b)
                    if bucket is None:
                        bucket = buckets[b] = []
                    bucket.append(record)
                nbytes = len(records) * self.conf.bytes_per_record
                if nbytes > 0:
                    yield task_ctx.node.local_disk.write(nbytes)
                outputs[_i] = (task_ctx.node.name, buckets)
                return records

            tasks.append(self._task(body, executor))
        yield self.env.all_of(tasks)
        self._shuffle_outputs[dep.shuffle_id] = outputs

    # --------------------------------------------------------- data access
    def materialize(self, rdd: RDD, index: int, task_ctx):
        """Compute (or serve from cache) one partition.  Generator."""
        key = (rdd.rdd_id, index)
        if rdd._cached and key in self._cache:
            return self._cache[key]
        records = yield from rdd.compute_partition(index, task_ctx)
        if rdd._cached:
            self._cache[key] = records
        return records

    def shuffle_fetch(self, dep: ShuffledRDD, reduce_index: int, task_ctx):
        """Fetch one reduce bucket from every map output.  Generator.

        I/O is coalesced per map node: one disk read plus one fabric
        transfer per (map node -> reduce node) pair, however many map
        tasks ran there.  Pair order is by map-partition index —
        identical to a per-map-task fetch — so downstream merge and
        group results don't depend on the batching.
        """
        outputs = self._shuffle_outputs.get(dep.shuffle_id)
        if outputs is None:
            raise SimulationError(
                f"shuffle {dep.shuffle_id} has no map outputs (stage "
                "ordering bug)")
        bytes_per_record = self.conf.bytes_per_record
        #: map node -> per-map-task chunk sizes, first-seen order.
        chunks_by_node: Dict[str, List[float]] = {}
        pairs: list = []
        for node_name, buckets in outputs:
            chunk = buckets.get(reduce_index, [])
            if chunk:
                chunks_by_node.setdefault(node_name, []).append(
                    len(chunk) * bytes_per_record)
                pairs.extend(chunk)
        dst = task_ctx.node.name
        for node_name, sizes in chunks_by_node.items():
            # read from the map node's disk, then cross the wire
            yield self._node_by_name(node_name).local_disk.read_many(sizes)
            if self.network is not None:
                yield self.network.send_many(node_name, dst, sizes)
        return pairs

    def _node_by_name(self, name: str):
        for executor in self.executors:
            if executor.node.name == name:
                return executor.node
        for worker in self.master.workers:
            if worker.node.name == name:
                return worker.node
        raise KeyError(f"unknown node {name}")
