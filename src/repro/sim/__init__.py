"""Discrete-event simulation kernel.

A small, SimPy-flavoured event engine that underpins every substrate in
this reproduction: batch schedulers, YARN/HDFS daemons, Spark executors
and the RADICAL-Pilot agent are all *processes* — Python generators that
yield events — driven by a single :class:`Environment` with a simulated
clock.

The kernel is deliberately minimal but complete:

* :class:`Environment` — event loop, simulated clock, process spawning.
* :class:`Event` / :class:`Timeout` / :class:`Process` / :class:`AnyOf` /
  :class:`AllOf` — the awaitable primitives.
* :class:`Resource` — counted capacity with FIFO queuing (cores, job
  slots).
* :class:`Level` — continuous quantity with put/get (memory pools,
  bandwidth tokens).
* :class:`Store` — FIFO object queue (message channels between daemons).
* :class:`Interrupt` — cooperative cancellation of a blocked process.

All timing in the reproduction is expressed in *simulated seconds*; real
computation embedded in tasks executes eagerly while the clock advances
only by modeled durations, which is what lets the Figure 5/6 harnesses
produce deterministic, paper-shaped results on any hardware.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Level, Resource, Store
from repro.sim.rng import RngStream, SeedSequenceRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Level",
    "Process",
    "Resource",
    "RngStream",
    "SeedSequenceRegistry",
    "SimulationError",
    "Store",
    "Timeout",
]
