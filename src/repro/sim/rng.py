"""Seeded, named random-number streams.

Every stochastic component of the simulation (scheduler jitter, daemon
startup variance, network noise) draws from its own named stream derived
from a single root seed, so adding a new consumer never perturbs the
draws of existing ones — the standard trick for reproducible parallel
simulations.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`."""

    def __init__(self, seed: int, name: str):
        self.name = name
        self._gen = np.random.default_rng(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on [low, high)."""
        return float(self._gen.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        """One normal draw."""
        return float(self._gen.normal(mean, std))

    def lognormal_around(self, center: float, spread: float = 0.05) -> float:
        """A positive draw centered at ``center`` with relative ``spread``.

        Used for service-time jitter: multiplicative noise keeps values
        positive and the median at ``center``.
        """
        if center <= 0:
            return max(center, 0.0)
        return float(center * self._gen.lognormal(0.0, spread))

    def exponential(self, mean: float) -> float:
        """One exponential draw with the given mean."""
        return float(self._gen.exponential(mean))

    def integers(self, low: int, high: int) -> int:
        """One integer draw on [low, high)."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(seq)

    def state_dict(self) -> dict:
        """The underlying bit generator's state (JSON-serializable)."""
        return self._gen.bit_generator.state

    def set_state(self, state: dict) -> None:
        """Restore a state previously captured by :meth:`state_dict`."""
        self._gen.bit_generator.state = state


class SeedSequenceRegistry:
    """Derives independent :class:`RngStream` objects from one root seed.

    Stream seeds are ``crc32(name) ^ root`` folded through NumPy's
    ``SeedSequence`` spawning-free scheme; identical (root, name) pairs
    always produce identical streams.
    """

    def __init__(self, root_seed: int = 42):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the (cached) stream for ``name``."""
        if name not in self._streams:
            derived = (zlib.crc32(name.encode("utf-8")) ^ self.root_seed) & 0xFFFFFFFF
            self._streams[name] = RngStream(derived, name)
        return self._streams[name]

    def snapshot_state(self) -> dict:
        """Every materialized stream's exact generator state.

        Captures *position*, not just seed: a checkpoint taken mid-run
        must record how far each stream has advanced so a restored
        session draws the same remaining sequence.
        """
        return {"root_seed": self.root_seed,
                "streams": {name: stream.state_dict()
                            for name, stream in
                            sorted(self._streams.items())}}

    def restore_state(self, state: dict) -> None:
        """Re-materialize streams at the positions in ``state``."""
        for name, gen_state in state.get("streams", {}).items():
            self.stream(name).set_state(gen_state)
