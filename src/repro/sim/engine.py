"""Event loop, events and processes for the simulation kernel.

The design follows the classic process-interaction style: a *process* is
a Python generator that yields :class:`Event` objects; the environment
resumes the generator when the yielded event fires.  Events fire in
``(time, priority, sequence)`` order, giving a deterministic total order
for simultaneous events — crucial for reproducible benchmarks.

A process may also yield a bare ``float``/``int`` to sleep that many
simulated seconds: the kernel schedules a slot-based :class:`_Sleep`
entry instead of a :class:`Timeout` event, which skips two object
allocations per sleep.  ``yield delay`` is behaviourally identical to
``yield env.timeout(delay)`` (same firing time, priority and sequence
ordering); it is the preferred form on hot paths.
"""

from __future__ import annotations

import os
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, Optional

#: Event priorities.  Lower values fire first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for illegal kernel usage (double trigger, negative delay...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A condition that may fire once, carrying an optional value.

    Processes wait on events by ``yield``-ing them.  An event is either
    *pending*, *triggered* (scheduled to fire) or *processed* (callbacks
    ran).  Failing an event propagates the exception into every waiting
    process.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_triggered")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._processed = False
        self._triggered = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event carries an exception."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception, for failed events)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule this event to fire with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule this event to fire by raising ``exception`` in waiters."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, PRIORITY_NORMAL)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


def _make_wake() -> "Event":
    """The shared, pre-processed wake event handed to slot-sleep resumes.

    Never scheduled and never mutated: processes resumed from a
    :class:`_Sleep` only read ``_ok``/``_value`` from it.
    """
    wake = Event.__new__(Event)
    wake.env = None
    wake.callbacks = None
    wake._value = None
    wake._ok = True
    wake._processed = True
    wake._triggered = True
    return wake


_WAKE = _make_wake()


class _Sleep:
    """Heap slot for a bare-number yield: resumes its process directly.

    Yielding a plain ``float``/``int`` from a process is the slot-based
    fast path for pure sleeps: no :class:`Event`, no callbacks list, no
    :class:`Timeout` — just one tuple on the event queue holding this
    slot.  At leadership-class sizes (10k nodes, 1M units) sleeps
    dominate the event mix, so shaving the two object allocations and
    the callback indirection per sleep is a first-order win.

    ``proc`` is cleared by :meth:`Process.interrupt` so a stale slot
    never resumes an interrupted process a second time.
    """

    __slots__ = ("proc",)

    def __init__(self, proc: "Process"):
        self.proc = proc

    def _run_callbacks(self) -> None:
        proc = self.proc
        if proc is not None:
            proc._target = None
            proc._resume(_WAKE)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        # Timeouts dominate the event mix of every workload, so the
        # base-class __init__ is inlined and the event goes onto the
        # queue pre-triggered in one shot.
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._triggered = True
        self.delay = delay
        env._schedule(self, PRIORITY_NORMAL, delay)


class Initialize(Event):
    """Internal: first resumption of a freshly-spawned process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        env._schedule(self, PRIORITY_URGENT)


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The process's value is the generator's return value; an uncaught
    exception fails the process event (and escapes to the environment if
    nobody is waiting on it).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        # The live frame IS the process-interaction model; a checkpoint
        # replays processes from the event log instead of serializing it.
        self._generator = generator  # simlint: disable=SIM112
        #: What the process is suspended on: an Event, a _Sleep slot
        #: (bare-number yield), or None while running / finished.
        self._target: Optional[object] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True until the underlying generator has finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self._triggered:
            raise SimulationError(f"{self.name} already terminated")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._triggered = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, PRIORITY_URGENT)
        # Detach from whatever we were waiting on, so the original event
        # does not resume us a second time.
        target = self._target
        if target is not None:
            if type(target) is _Sleep:
                target.proc = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - already detached
                    pass
            self._target = None

    def _resume(self, event: Event) -> None:
        env = self.env
        generator = self._generator
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The exception escapes into the generator.
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                if not self.callbacks:
                    # Nobody is waiting: crash the simulation loudly
                    # rather than losing the error.
                    env._crash(exc, self)
                    return
                self._triggered = True
                self._ok = False
                self._value = exc
                env._schedule(self, PRIORITY_NORMAL)
                return

            if not isinstance(next_event, Event):
                if type(next_event) is float or type(next_event) is int:
                    # Slot-based sleep: schedule one lightweight heap
                    # slot and suspend — no Event/Timeout allocation.
                    # Scheduling at the same point a Timeout would have
                    # been pushed keeps (time, priority, seq) ordering
                    # identical to ``yield env.timeout(delay)``.
                    if next_event < 0:
                        env._active_process = None
                        env._crash(SimulationError(
                            f"negative delay {next_event}"), self)
                        return
                    slot = _Sleep(self)
                    env._schedule(slot, PRIORITY_NORMAL, next_event)
                    self._target = slot
                    env._active_process = None
                    return
                env._active_process = None
                env._crash(
                    SimulationError(
                        f"process {self.name!r} yielded {next_event!r}, "
                        "expected an Event or a number"),
                    self)
                return
            if next_event.callbacks is None:
                # Already processed: resume immediately with its value.
                event = next_event
                continue
            next_event.callbacks.append(self._resume)
            self._target = next_event
            env._active_process = None
            return


class Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self._events if e.processed}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(Condition):
    """Fires when the first of the given events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation environment: clock + event queue + process spawner.

    ``telemetry`` is the optional observability hub
    (:func:`repro.telemetry.install` sets it); the class-level ``None``
    default keeps the disabled-path cost of every instrumentation hook
    to a single attribute load and branch.
    """

    #: Set by :func:`repro.telemetry.install`; ``None`` = disabled.
    telemetry = None
    #: Set by :meth:`repro.analysis.sanitizer.SimSanitizer.install`;
    #: ``None`` = disabled.  Instrumented components pay one attribute
    #: load and a branch when off, exactly like telemetry.
    sanitizer = None
    #: Set by :meth:`repro.faults.injector.FaultInjector.install`;
    #: ``None`` = no fault injection.  Clusters register themselves as
    #: fault targets when installed; the agent pipeline consults it for
    #: injected transient unit errors.  Same opt-in hub pattern as
    #: ``telemetry``/``sanitizer``.
    faults = None

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._steps = 0
        self._active_process: Optional[Process] = None
        self._crashed: Optional[BaseException] = None
        # One switch for the whole stack: REPRO_SANITIZE=1 arms the
        # runtime invariant checkers on every environment.  The import
        # is lazy and only attempted when the variable is set at all,
        # so the common path costs a single dict lookup.
        if os.environ.get("REPRO_SANITIZE"):
            from repro.analysis.sanitizer import (
                SimSanitizer,
                sanitize_enabled,
            )
            if sanitize_enabled():
                SimSanitizer.install(self)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Total events processed so far (the replay barrier coordinate).

        Deterministic simulations process the same event sequence every
        run, so ``(now, steps, seq)`` uniquely identifies a point in the
        execution — :mod:`repro.persist` checkpoints record it and
        :meth:`replay_to` drives a fresh environment back to it.
        """
        return self._steps

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- primitives -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``generator`` as a process; returns its process event."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any constituent fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all constituents have fired."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        _heappush(self._queue,
                  (self._now + delay, priority, self._seq, event))

    def _crash(self, exc: BaseException, process: Optional[Process]) -> None:
        self._crashed = exc
        exc.args = (f"unhandled error in process "
                    f"{process.name if process else '?'}: {exc}",)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = _heappop(self._queue)
        self._steps += 1
        event._run_callbacks()
        if self._crashed is not None:
            exc, self._crashed = self._crashed, None
            raise exc

    def replay_to(self, steps: int, now: Optional[float] = None) -> None:
        """Process events until exactly ``steps`` total have run.

        The restore half of a checkpoint barrier: a deterministic
        simulation replayed from its initial state passes through the
        same event sequence, so stopping after the recorded step count
        reproduces the checkpointed engine state exactly — including
        same-timestamp events that a time-based ``run(until=...)``
        could not split.

        ``now`` re-applies the barrier's clock position: a
        ``run(until=T)`` parks the clock at ``T`` even when no event
        fires there, which replaying events alone cannot reproduce.
        """
        if steps < self._steps:
            raise SimulationError(
                f"cannot replay backwards: at step {self._steps}, "
                f"asked for {steps}")
        while self._steps < steps:
            if not self._queue:
                raise SimulationError(
                    f"event queue exhausted at step {self._steps} "
                    f"before reaching replay barrier {steps}")
            self.step()
        if now is not None and now != self._now:
            if now < self._now or (self._queue and now > self.peek()):
                raise SimulationError(
                    f"barrier clock {now} is unreachable from now="
                    f"{self._now} (next event at {self.peek()}); the "
                    f"replay diverged from the checkpointed run")
            self._now = now

    def snapshot_state(self) -> dict:
        """Canonical, JSON-able summary of the engine state.

        Live :class:`Event`/:class:`Process` objects cannot cross a
        process boundary, so the summary reduces each queue entry to
        its deterministic coordinates ``(time, priority, seq, kind,
        name)`` — enough for a restored environment to prove, by
        digest, that replay reconstructed an identical heap.
        """
        entries = []
        for time_, priority, seq, event in sorted(
                self._queue, key=lambda e: e[:3]):
            if type(event) is _Sleep:
                kind = "_Sleep"
                name = event.proc.name if event.proc is not None else None
            else:
                kind = type(event).__name__
                name = getattr(event, "name", None)
            entries.append([time_, priority, seq, kind, name])
        return {"now": self._now, "seq": self._seq,
                "steps": self._steps, "queue": entries}

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        the clock reaches it), or an :class:`Event` (run until it fires,
        returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} lies in the past (now={self._now})")

        # The stepping loop is inlined (rather than calling self.step())
        # and specialised per stop condition: the per-event overhead here
        # bounds the throughput of every simulation in the repo.
        queue = self._queue
        pop = _heappop
        steps = self._steps
        try:
            if stop_event is None and stop_time == float("inf"):
                while queue:
                    self._now, _, _, event = pop(queue)
                    steps += 1
                    event._run_callbacks()
                    if self._crashed is not None:
                        exc, self._crashed = self._crashed, None
                        raise exc
            elif stop_event is not None:
                while queue and not stop_event._processed:
                    self._now, _, _, event = pop(queue)
                    steps += 1
                    event._run_callbacks()
                    if self._crashed is not None:
                        exc, self._crashed = self._crashed, None
                        raise exc
            else:
                while queue:
                    if queue[0][0] > stop_time:
                        self._now = stop_time
                        break
                    self._now, _, _, event = pop(queue)
                    steps += 1
                    event._run_callbacks()
                    if self._crashed is not None:
                        exc, self._crashed = self._crashed, None
                        raise exc
        finally:
            self._steps = steps

        if stop_event is not None:
            if not stop_event.processed:
                if until is not None and stop_event is until and not self._queue:
                    raise SimulationError(
                        "event queue empty but 'until' event never fired")
            if stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
        elif until is not None and self._now < stop_time and not self._queue:
            # Queue exhausted before the requested horizon: the clock
            # still advances to it, matching SimPy semantics.
            self._now = stop_time
        return None
