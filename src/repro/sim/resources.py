"""Shared-resource primitives for the simulation kernel.

Three classics:

* :class:`Resource` — N identical slots with FIFO queuing (CPU cores,
  scheduler job slots).  Requests are events; release returns the slot.
* :class:`Level` — a continuous quantity between 0 and ``capacity``
  (memory pools, disk space).  ``get``/``put`` block until satisfiable.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects, the
  message channel between simulated daemons.

All wait queues are strictly FIFO, which keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.sim.engine import Environment, Event, SimulationError


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # slot held
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (used on interrupt)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` identical slots, granted FIFO."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: list[Request] = []
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim one slot; the returned event fires when granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.append(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot.  Releasing an ungranted request cancels it."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            self._cancel(request)

    def _cancel(self, request: Request) -> None:
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            req = self._waiting.popleft()
            if req.triggered:  # interrupted waiter; skip
                continue
            self._users.append(req)
            req.succeed()


class Level:
    """A continuous quantity with blocking ``get``/``put``.

    ``get`` requests are served FIFO; a large request at the queue head
    blocks smaller ones behind it (no overtaking), which models fair
    bandwidth/memory allocation.
    """

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def get(self, amount: float) -> Event:
        """Take ``amount`` out; fires when available."""
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._drain()
        return event

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._drain()
        return event

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    if not event.triggered:
                        self._level += amount
                        event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._getters.popleft()
                    if not event.triggered:
                        self._level -= amount
                        event.succeed()
                    progress = True


class Store:
    """FIFO object queue; ``get`` blocks on empty, ``put`` on full."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Append ``item``; fires when there is room."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._drain()
        return event

    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> Event:
        """Pop the oldest item (optionally the oldest matching ``filt``)."""
        event = Event(self.env)
        self._getters.append((event, filt))
        self._drain()
        return event

    def _drain(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                if not event.triggered:
                    self.items.append(item)
                    event.succeed()
                progress = True
            # Serve getters; a filter getter that matches nothing stays
            # queued but must not block non-filter getters behind it.
            missing = object()
            pending: deque[tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
            while self._getters:
                event, filt = self._getters.popleft()
                if event.triggered:
                    progress = True
                    continue
                found: Any = missing
                if filt is None:
                    if self.items:
                        found = self.items.popleft()
                else:
                    for candidate in self.items:
                        if filt(candidate):
                            found = candidate
                            self.items.remove(candidate)
                            break
                if found is not missing:
                    event.succeed(found)
                    progress = True
                else:
                    pending.append((event, filt))
            self._getters = pending
