"""End-to-end: a Mode I K-Means run emits the expected telemetry."""

import json

import pytest

from repro.__main__ import main
from repro.telemetry.runner import run_traced_kmeans

POINTS = 1600
NTASKS = 8
ITERATIONS = 2


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    out = tmp_path_factory.mktemp("trace")
    run = run_traced_kmeans(machine="stampede", flavor="RP-YARN",
                            points=POINTS, clusters=4, ntasks=NTASKS,
                            iterations=ITERATIONS, out_dir=str(out))
    return run, out


def test_run_validates_and_writes_artifacts(traced):
    run, out = traced
    assert run.centroids_ok
    assert run.nodes == 1 and run.lrm_setup > 0       # Mode I setup paid
    for name in ("trace", "spans", "events", "metrics"):
        assert (out / {"trace": "trace.json"}.get(name, f"{name}.jsonl")
                ).exists()


def test_span_hierarchy_pilot_unit_container(traced):
    run, out = traced
    spans = [json.loads(line)
             for line in (out / "spans.jsonl").read_text().splitlines()
             if line.strip()]
    by_id = {s["sid"]: s for s in spans}
    by_cat = {}
    for s in spans:
        by_cat.setdefault(s["cat"], []).append(s)

    # One pilot; 2 map waves + reduce per iteration = ntasks+1 units/iter.
    assert len(by_cat["pilot"]) == 1
    n_units = (NTASKS + 1) * ITERATIONS
    assert len(by_cat["unit"]) == n_units
    assert len(by_cat["container"]) == n_units

    pilot = by_cat["pilot"][0]
    for unit in by_cat["unit"]:
        assert unit["parent"] == pilot["sid"]
        assert unit["end"] is not None
        assert unit["args"]["final_state"] == "Done"
    for container in by_cat["container"]:
        parent = by_id[container["parent"]]
        assert parent["cat"] == "unit"
        # Containers live on their unit's track and within its interval.
        assert container["track"] == parent["track"]
        assert parent["start"] <= container["start"]
        assert container["end"] <= parent["end"]
    # The agent bootstrap span nests under the pilot too.
    boots = by_cat["agent"]
    assert boots and all(b["parent"] == pilot["sid"] for b in boots)
    # Every unit went through the four pipeline phases.
    phase_names = {p["name"] for p in by_cat["unit.phase"]}
    assert phase_names == {"stage_in", "schedule", "execute", "stage_out"}
    assert len(by_cat["unit.phase"]) == 4 * n_units


def test_chrome_trace_artifact_is_valid(traced):
    run, out = traced
    doc = json.loads((out / "trace.json").read_text())
    events = doc["traceEvents"]
    assert {e["ph"] for e in events} <= {"X", "M", "i"}
    xs = [e for e in events if e["ph"] == "X"]
    assert all(e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 1
               for e in xs)
    cats = {e["cat"] for e in xs}
    assert {"pilot", "unit", "container"} <= cats


def test_metrics_artifact_has_required_series(traced):
    run, out = traced
    rows = [json.loads(line)
            for line in (out / "metrics.jsonl").read_text().splitlines()
            if line.strip()]
    names = {r["metric"] for r in rows}
    assert "agent.scheduler.queue_depth" in names
    assert "agent.allocation_latency" in names
    assert "yarn.container.allocation_latency" in names
    assert "agent.executor.occupancy" in names
    occupancy = [r for r in rows
                 if r["metric"] == "agent.executor.occupancy"]
    assert any(r["value"] > 0 for r in occupancy)
    latency = [r for r in rows
               if r["metric"] == "yarn.container.allocation_latency"]
    assert sum(r["count"] for r in latency) >= (NTASKS + 1) * ITERATIONS


def test_profiler_bridge_feeds_phase_means(traced):
    run, _ = traced
    assert set(run.phase_means) == {"queue", "stage_in", "schedule",
                                    "execute", "stage_out"}
    assert all(v is not None for v in run.phase_means.values())
    assert run.peak_concurrency >= 1


def test_trace_cli_smoke(tmp_path, capsys):
    out = tmp_path / "cli"
    code = main(["trace", "--points", "800", "--clusters", "4",
                 "--ntasks", "8", "--flavor", "RP",
                 "--output", str(out)])
    assert code == 0
    text = capsys.readouterr().out
    assert "centroids valid    True" in text
    assert (out / "trace.json").exists()
    doc = json.loads((out / "trace.json").read_text())
    assert any(e.get("cat") == "unit" for e in doc["traceEvents"])
