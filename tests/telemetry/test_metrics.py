"""Metrics registry: counters, gauges, time-bucketed histograms."""

import json

import pytest

from repro.sim import Environment
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def registry(env):
    return MetricsRegistry(env)


def _at(env, t, fn):
    """Run ``fn`` at simulated time ``t``."""
    def proc():
        yield env.timeout(t - env.now)
        fn()
    env.process(proc())
    env.run()


def test_counter_monotonic(registry, env):
    c = registry.counter("hdfs.bytes_written")
    c.inc(100)
    _at(env, 5.0, lambda: c.inc(50))
    assert c.total == 150
    assert c.samples == [(0.0, 100), (5.0, 50)]
    with pytest.raises(ValueError):
        c.inc(-1)
    rows = list(c.rows())
    assert rows[-1]["total"] == 150 and rows[-1]["t"] == 5.0


def test_gauge_same_instant_overwrite_and_time_weighted_mean(registry, env):
    g = registry.gauge("queue_depth")
    g.set(3)
    g.set(5)                      # same instant: one sample survives
    assert g.samples == [(0.0, 5.0)]
    _at(env, 10.0, lambda: g.set(1))
    _at(env, 20.0, lambda: g.set(0))
    # 5 for 10s, 1 for 10s, 0 after: mean over [0, 20] = 3.0
    assert g.time_weighted_mean(until=20.0) == pytest.approx(3.0)
    assert g.max() == 5.0
    assert g.value == 0.0


def test_histogram_value_bucketing(registry):
    h = registry.histogram("latency", bounds=(1.0, 5.0, 10.0))
    for v in (0.2, 0.9, 1.0, 4.0, 7.5, 100.0):
        h.observe(v)
    # bisect_left: bound values land in their own bucket (le semantics).
    assert h.bucket_counts() == [3, 1, 1, 1]
    assert h.count == 6
    assert h.mean == pytest.approx(sum((0.2, 0.9, 1.0, 4.0, 7.5, 100.0)) / 6)
    assert h.min == 0.2 and h.max == 100.0
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 100.0


def test_histogram_percentiles(registry):
    h = registry.histogram("latency", bounds=(1.0, 5.0, 10.0))
    assert h.quantile(0.5) is None          # empty histogram
    assert h.percentiles((50, 95)) == {50: None, 95: None}
    for v in (0.5,) * 90 + (7.0,) * 9 + (100.0,):
        h.observe(v)
    pcts = h.percentiles((50, 95, 99, 100))
    # bucket-upper-bound semantics: the reported value is the smallest
    # bound covering the requested rank
    assert pcts[50] == 1.0
    assert pcts[95] == 10.0
    assert pcts[99] == 10.0                 # 99th sample is 7.0 -> <= 10
    assert pcts[100] == 100.0               # overflow bucket -> max
    assert h.percentiles([50]) == {50: 1.0}


def test_histogram_quantile_edge_cases(registry):
    h = registry.histogram("latency", bounds=(1.0, 5.0, 10.0))
    # Empty histogram: every quantile is None, including the extremes.
    assert h.quantile(0.0) is None
    assert h.quantile(1.0) is None
    # Out-of-range q is a usage error, not a silent clamp.
    with pytest.raises(ValueError):
        h.quantile(-0.01)
    with pytest.raises(ValueError):
        h.quantile(1.01)
    # q=0 reports the first *populated* bucket's bound: samples in the
    # 5.0 bucket must not surface the empty 1.0 bucket's bound.
    h.observe(3.0)
    assert h.quantile(0.0) == 5.0
    assert h.quantile(1.0) == 5.0


def test_histogram_single_bucket_and_overflow(registry):
    h = registry.histogram("latency", bounds=(2.0,))
    for v in (0.5, 1.0, 2.0):
        h.observe(v)
    assert h.quantile(0.0) == 2.0
    assert h.quantile(0.5) == 2.0
    assert h.quantile(1.0) == 2.0
    # Overflow samples land past the last bound: the answer is max.
    h.observe(9.0)
    assert h.quantile(1.0) == 9.0
    assert h.percentiles((0, 100)) == {0: 2.0, 100: 9.0}


def test_harness_percentile_helpers(env):
    from benchmarks._harness import percentile_keys, percentile_results
    registry = MetricsRegistry(env)
    h = registry.histogram("lat", bounds=(1.0, 10.0))
    assert percentile_keys("submit") == ("submit_p50", "submit_p95",
                                         "submit_p99")
    # empty histogram -> 0.0 placeholders, never None in result rows
    assert percentile_results("submit", h) == {
        "submit_p50": 0.0, "submit_p95": 0.0, "submit_p99": 0.0}
    for v in (0.5, 0.6, 20.0):
        h.observe(v)
    out = percentile_results("submit", h)
    assert out["submit_p50"] == 1.0 and out["submit_p99"] == 20.0


def test_histogram_time_windows(registry, env):
    h = registry.histogram("latency", bounds=(1.0,), window_seconds=60.0)
    h.observe(0.5)                               # window 0
    _at(env, 61.0, lambda: h.observe(2.0))       # window 1
    _at(env, 119.0, lambda: h.observe(0.1))      # window 1
    assert sorted(h.windows) == [0, 1]
    assert h.windows[0] == [1, 0]
    assert h.windows[1] == [1, 1]
    rows = list(h.rows())
    assert rows[0]["t0"] == 0.0 and rows[0]["t1"] == 60.0
    assert rows[1]["t0"] == 60.0 and rows[1]["sum"] == pytest.approx(2.1)


def test_registry_keying_and_kind_mismatch(registry):
    a = registry.counter("x", backend="fork")
    b = registry.counter("x", backend="yarn")
    assert a is not b
    assert registry.counter("x", backend="fork") is a
    assert len(registry.find("x")) == 2
    with pytest.raises(TypeError):
        registry.gauge("x", backend="fork")


def test_jsonl_export(registry):
    registry.counter("c").inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h", bounds=(1.0,)).observe(0.5)
    rows = [json.loads(line) for line in registry.to_jsonl().splitlines()]
    kinds = {r["metric"]: r["type"] for r in rows}
    assert kinds == {"c": "counter", "g": "gauge", "h": "histogram"}


def test_histogram_validation(registry):
    with pytest.raises(ValueError):
        registry.histogram("bad", bounds=())
    with pytest.raises(ValueError):
        registry.histogram("bad2", window_seconds=0)
    with pytest.raises(ValueError):
        registry.histogram("ok", bounds=(1.0,)).quantile(1.5)


def test_counter_sample_resolution_batches_increments(env):
    registry = MetricsRegistry(env, sample_resolution=1.0)
    c = registry.counter("batched")
    _at(env, 0.1, lambda: c.inc(1))
    _at(env, 0.5, lambda: c.inc(2))   # merges into the 0.1 sample
    _at(env, 2.0, lambda: c.inc(4))   # new window
    assert c.total == 7
    assert c.samples == [(0.1, 3.0), (2.0, 4.0)]
    rows = list(c.rows())
    assert rows[-1]["total"] == 7


def test_gauge_sample_resolution_coalesces(env):
    registry = MetricsRegistry(env, sample_resolution=1.0)
    g = registry.gauge("batched")
    _at(env, 0.1, lambda: g.set(5))
    _at(env, 0.6, lambda: g.set(9))   # same window: last write wins
    _at(env, 3.0, lambda: g.set(2))
    assert g.samples == [(0.6, 9.0), (3.0, 2.0)]
    assert g.value == 2.0


def test_sample_resolution_none_keeps_every_sample(env):
    registry = MetricsRegistry(env)
    c = registry.counter("exact")
    _at(env, 0.1, lambda: c.inc(1))
    _at(env, 0.2, lambda: c.inc(1))
    assert len(c.samples) == 2


def test_sample_resolution_validation(env):
    with pytest.raises(ValueError):
        MetricsRegistry(env, sample_resolution=0)
